"""Command-line interface.

Profile a mini-language workload file (or a named built-in workload)
under Scalene or any baseline profiler, lint it for performance
anti-patterns, or disassemble it::

    python -m repro profile app.py --mode full --html profile.html
    python -m repro profile --workload pprint --profiler cProfile
    python -m repro lint app.py --profile
    python -m repro lint app.py --fail-on high
    python -m repro crossflow --workload chatty
    python -m repro dis app.py
    python -m repro list

or run the continuous-profiling service (:mod:`repro.serve`)::

    python -m repro serve --port 8000 --workers 4 --store ./profiles
    python -m repro serve --shards 3 --port 8000 --store ./profiles
    python -m repro submit --workload pprint --url http://127.0.0.1:8000
    python -m repro profiles --url http://127.0.0.1:8000
    python -m repro profiles --url http://127.0.0.1:8000 --merge ID1 ID2
    python -m repro profiles --url http://127.0.0.1:8000 --diff ID1 ID2
    python -m repro loadgen --url http://127.0.0.1:8000 --jobs 1000

With ``--shards N`` the serve command boots the scale-out plane
(DESIGN.md §12): N sharded daemons behind a consistent-hash router and
one async batching gateway; ``loadgen`` measures its submission
throughput and accept-latency percentiles.

or chaos-test the service's self-healing (:mod:`repro.faults`) — a
seeded, replayable fault schedule (worker crashes, torn store writes,
signal/clock/allocator faults) driven through a live daemon::

    python -m repro chaos --seed 1
    python -m repro chaos --seed 1 --jobs 8 --torn-writes 2 --json
    python -m repro chaos --shards 3 --seed 1   # shard kill + failover

Mirrors ``scalene yourprogram.py``: the CLI builds a simulated process,
attaches the profiler, runs, and renders the report. ``lint --profile``
triangulates the static findings with a Scalene run, ranking them by
measured cost and suppressing the ones on insignificant lines.
"""

from __future__ import annotations

import argparse
import json as json_module
import sys
from pathlib import Path

from repro.baselines import make_profiler, profiler_names
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries
from repro.runtime.process import SimProcess
from repro.ui import write_html, write_json
from repro.workloads import get_workload, workload_names

SCALENE_MODES = {"cpu", "cpu+gpu", "full"}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Scalene-reproduction profiler CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("profile", help="profile a workload")
    run.add_argument("file", nargs="?", help="mini-language source file")
    run.add_argument("--workload", help="a named built-in workload instead of a file")
    run.add_argument("--scale", type=float, default=1.0, help="workload scale (built-ins)")
    run.add_argument("--mode", default="full", help="Scalene mode: cpu | cpu+gpu | full")
    run.add_argument(
        "--profiler",
        default="scalene",
        help="'scalene' (default) or any baseline profiler name",
    )
    run.add_argument("--json", metavar="PATH", help="also write the JSON profile")
    run.add_argument("--html", metavar="PATH", help="also write the HTML profile")

    lint = sub.add_parser("lint", help="static performance lints for a workload")
    lint.add_argument("file", nargs="?", help="mini-language source file")
    lint.add_argument("--workload", help="a named built-in workload instead of a file")
    lint.add_argument("--scale", type=float, default=1.0, help="workload scale (built-ins)")
    lint.add_argument(
        "--profile",
        action="store_true",
        help="run the program under Scalene and triangulate findings with measured cost",
    )
    lint.add_argument(
        "--min-percent",
        type=float,
        default=None,
        help="suppression threshold for --profile (default 1.0, the paper's §5 cutoff)",
    )
    lint.add_argument("--json", metavar="PATH", help="also write findings as JSON")
    lint.add_argument(
        "--fail-on",
        choices=("low", "medium", "high"),
        help="exit nonzero when any finding is at or above this severity (CI gate)",
    )

    crossflow = sub.add_parser(
        "crossflow",
        help="native-boundary cross-flow analysis: boundary lints × measured crossings",
    )
    crossflow.add_argument("file", nargs="?", help="mini-language source file")
    crossflow.add_argument("--workload", help="a named built-in workload instead of a file")
    crossflow.add_argument("--scale", type=float, default=1.0, help="workload scale (built-ins)")
    crossflow.add_argument("--json", metavar="PATH", help="also write findings as JSON")

    dis = sub.add_parser("dis", help="disassemble a workload with CFG block boundaries")
    dis.add_argument("file", nargs="?", help="mini-language source file")
    dis.add_argument("--workload", help="a named built-in workload instead of a file")
    dis.add_argument("--scale", type=float, default=1.0, help="workload scale (built-ins)")
    dis.add_argument(
        "--tier",
        action="store_true",
        help="run the workload first, then annotate hot sites and compiled"
        " trace regions (JIT tier state)",
    )

    sub.add_parser("list", help="list workloads and profilers")

    serve = sub.add_parser("serve", help="run the continuous-profiling daemon")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8000,
                       help="bind port (0 picks an ephemeral port)")
    serve.add_argument("--workers", type=int, default=2,
                       help="profiling worker processes")
    serve.add_argument("--store", default="./profile-store",
                       help="profile store directory")
    serve.add_argument("--shards", type=int, default=0,
                       help="boot N sharded daemons behind a batching "
                       "gateway instead of one daemon (0 = single daemon)")
    serve.add_argument("--wal", default=None,
                       help="gateway write-ahead-log directory (sharded mode "
                       "only; default: <store>/gateway-wal; 'none' disables "
                       "durability)")

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a gateway/daemon with a job-submission burst and "
        "report throughput + accept-latency percentiles",
    )
    loadgen.add_argument("--url", default="http://127.0.0.1:8000",
                         help="gateway (or daemon) URL")
    loadgen.add_argument("--jobs", type=int, default=1000,
                         help="jobs to submit")
    loadgen.add_argument("--concurrency", type=int, default=8,
                         help="concurrent submitter connections")
    loadgen.add_argument("--scale", type=float, default=0.02,
                         help="workload scale per job")
    loadgen.add_argument("--workloads", default=None,
                         help="comma-separated workload names to cycle")
    loadgen.add_argument("--json", action="store_true",
                         help="print the full report as JSON")
    loadgen.add_argument("--submit-keys", action="store_true",
                         help="attach idempotency keys so submissions can be "
                         "safely resubmitted through a gateway restart")
    loadgen.add_argument("--retry-window", type=float, default=30.0,
                         help="seconds keyed submitters keep retrying through "
                         "a gateway outage (with --submit-keys)")
    loadgen.add_argument("--kill-gateway-at", type=int, default=None,
                         metavar="N",
                         help="SIGKILL --gateway-pid after N accepted jobs "
                         "(implies --submit-keys)")
    loadgen.add_argument("--gateway-pid", type=int, default=None,
                         help="pid to SIGKILL for --kill-gateway-at")
    loadgen.add_argument("--reshard-at", type=int, default=None, metavar="N",
                         help="POST /reshard after N accepted jobs "
                         "(implies --submit-keys)")
    loadgen.add_argument("--reshard-action", default="add",
                         choices=("add", "remove"),
                         help="reshard action for --reshard-at")
    loadgen.add_argument("--reshard-shard", default=None,
                         help="shard name to remove (with "
                         "--reshard-action remove)")

    submit = sub.add_parser("submit", help="submit a profiling job to a daemon")
    submit.add_argument("--url", default="http://127.0.0.1:8000", help="daemon URL")
    submit.add_argument("--workload", required=True, help="workload name (see 'list')")
    submit.add_argument("--profiler", default="scalene",
                        help="'scalene' or a baseline profiler name")
    submit.add_argument("--mode", default="full", help="Scalene mode for the job")
    submit.add_argument("--scale", type=float, default=1.0, help="workload scale")
    submit.add_argument("--no-wait", action="store_true",
                        help="return the job id immediately instead of polling")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="seconds to wait for completion")

    profiles = sub.add_parser("profiles", help="query a daemon's profile store")
    profiles.add_argument("--url", default="http://127.0.0.1:8000", help="daemon URL")
    profiles.add_argument("--workload", help="filter the listing by workload")
    profiles.add_argument("--id", help="fetch one profile and render it as text")
    profiles.add_argument("--json", action="store_true",
                          help="with --id: print the raw JSON payload instead")
    profiles.add_argument("--merge", nargs="+", metavar="ID",
                          help="merge two or more stored profiles")
    profiles.add_argument("--diff", nargs=2, metavar=("BEFORE", "AFTER"),
                          help="diff two stored profiles")
    profiles.add_argument("--trend", action="store_true",
                          help="time-ordered headline numbers (honours --workload)")

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection run against a live daemon (self-healing check)",
    )
    chaos.add_argument("--seed", type=int, default=0, help="chaos schedule seed")
    chaos.add_argument("--jobs", type=int, default=8, help="concurrent jobs")
    chaos.add_argument("--workers", type=int, default=2, help="worker processes")
    chaos.add_argument("--store", default=None,
                       help="store directory (default: a temp dir, removed after)")
    chaos.add_argument("--exit-crashers", type=int, default=2,
                       help="jobs whose worker hard-exits on attempt 1")
    chaos.add_argument("--exception-crashers", type=int, default=2,
                       help="jobs whose worker raises on attempt 1")
    chaos.add_argument("--torn-writes", type=int, default=2,
                       help="store writes to tear before healing")
    chaos.add_argument("--drop-rate", type=float, default=0.1,
                       help="per-expiry timer-signal drop probability")
    chaos.add_argument("--json", action="store_true",
                       help="print the full report as JSON")
    chaos.add_argument("--shards", type=int, default=0,
                       help="run the shard-kill chaos instead: N shards "
                       "behind a gateway, one killed mid-run (0 = classic)")
    chaos.add_argument("--gateway-kill", action="store_true",
                       help="with --shards: kill -9 the WAL-backed gateway "
                       "mid-burst and prove recovery loses nothing")
    chaos.add_argument("--reshard", action="store_true",
                       help="with --shards: grow the ring by one shard "
                       "under load and prove every key migrates")
    return parser


def _make_process(args):
    if args.workload:
        return get_workload(args.workload).make_process(args.scale)
    if not args.file:
        raise SystemExit(f"{args.command}: provide a source file or --workload NAME")
    source = Path(args.file).read_text(encoding="utf-8")
    process = SimProcess(source, filename=Path(args.file).name)
    install_standard_libraries(process)
    return process


def _cmd_profile(args) -> int:
    process = _make_process(args)
    if args.profiler == "scalene":
        if args.mode not in SCALENE_MODES:
            raise SystemExit(f"unknown mode {args.mode!r}; use one of {sorted(SCALENE_MODES)}")
        scalene = Scalene(process, mode=args.mode)
        scalene.start()
        process.run()
        profile = scalene.stop()
        print(profile.render_text())
        if args.json:
            print(f"wrote {write_json(profile, args.json)}")
        if args.html:
            print(f"wrote {write_html(profile, args.html)}")
        return 0

    profiler = make_profiler(args.profiler, process)
    profiler.start()
    process.run()
    report = profiler.stop()
    print(f"profiler: {report.profiler} ({report.total_samples} events/samples)")
    for (file, line), seconds in sorted(report.line_times.items()):
        print(f"  {file}:{line:<5} {seconds:9.3f} s")
    for (file, fn), seconds in sorted(
        report.function_times.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {fn:<24} {seconds:9.3f} s")
    for (file, line), mb in sorted(report.line_memory_mb.items()):
        print(f"  {file}:{line:<5} {mb:9.1f} MB")
    if report.peak_memory_mb is not None:
        print(f"  peak memory: {report.peak_memory_mb:.1f} MB")
    if report.log_bytes:
        print(f"  log output:  {report.log_bytes} bytes")
    return 0


def _lint_gate(findings, fail_on) -> int:
    """CI gate: nonzero exit when findings reach the --fail-on severity."""
    if not fail_on:
        return 0
    from repro.staticcheck import DETECTOR_SEVERITY, SEVERITY_RANK

    threshold = SEVERITY_RANK[fail_on]
    over = [
        f
        for f in findings
        if SEVERITY_RANK[DETECTOR_SEVERITY.get(f.detector, "low")] >= threshold
    ]
    if over:
        print(
            f"fail-on {fail_on}: {len(over)} finding(s) at or above threshold",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.triangulate import DEFAULT_MIN_PERCENT, attach_lint, triangulate
    from repro.staticcheck import lint_code

    process = _make_process(args)
    findings = lint_code(process.code, filename=process.filename)

    if args.profile:
        min_percent = DEFAULT_MIN_PERCENT if args.min_percent is None else args.min_percent
        scalene = Scalene(process, mode="full")
        scalene.start()
        process.run()
        profile = scalene.stop()
        triangulated = triangulate(findings, profile, min_percent=min_percent)
        attach_lint(profile, triangulated)
        print(profile.render_text())
        if args.json:
            payload = [t.to_dict() for t in triangulated]
            Path(args.json).write_text(json_module.dumps(payload, indent=2), encoding="utf-8")
            print(f"wrote {args.json}")
        return _lint_gate(findings, args.fail_on)

    if not findings:
        print(f"{process.filename}: no performance lints")
    for finding in findings:
        print(str(finding))
    if args.json:
        payload = [
            {
                "detector": f.detector,
                "filename": f.filename,
                "lineno": f.lineno,
                "function": f.function,
                "message": f.message,
                "suggestion": f.suggestion,
            }
            for f in findings
        ]
        Path(args.json).write_text(json_module.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    return _lint_gate(findings, args.fail_on)


def _cmd_crossflow(args) -> int:
    from repro.analysis.crossflow import analyze_crossflow

    process = _make_process(args)
    source, filename = process.source, process.filename
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()
    findings = analyze_crossflow(
        source, profile, filename, recorder=process.crossings
    )
    print(profile.render_text())
    if not findings:
        print(f"{filename}: no cross-flow findings")
    if args.json:
        payload = [f.to_dict() for f in findings]
        Path(args.json).write_text(json_module.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    return 0


def _cmd_dis(args) -> int:
    from repro.interp.disassembler import disassemble, iter_code_objects

    process = _make_process(args)
    if args.tier:
        process.run()
    listings = [
        disassemble(code_object, show_blocks=True, show_tier=args.tier)
        for code_object in iter_code_objects(process.code)
    ]
    print("\n\n".join(listings))
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import ProfileDaemon

    if args.shards:
        return _cmd_serve_shards(args)
    daemon = ProfileDaemon(
        args.store, workers=args.workers, host=args.host, port=args.port
    )
    daemon.start()
    print(f"repro serve: listening on {daemon.url} "
          f"({args.workers} workers, store: {args.store})", flush=True)
    daemon.serve_forever()
    return 0


def _cmd_serve_shards(args) -> int:
    """The scale-out plane: N shard daemons + router + batching gateway."""
    import os
    import time
    from pathlib import Path

    from repro.serve import ServeFrontend, ShardPlane

    plane = ShardPlane(args.store, shards=args.shards, workers=args.workers)
    router = plane.start()
    wal = None if args.wal == "none" else (
        args.wal or str(Path(args.store) / "gateway-wal")
    )
    gateway = ServeFrontend(
        router, host=args.host, port=args.port, wal=wal, plane=plane
    )
    gateway.start()
    print(f"repro serve: gateway on {gateway.url} pid {os.getpid()} "
          f"({args.shards} shards x {args.workers} workers, "
          f"store: {args.store}, wal: {wal or 'off'})", flush=True)
    for name, url in sorted(plane.urls().items()):
        print(f"  {name}: {url}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        gateway.stop()
        plane.stop()
    return 0


def _cmd_loadgen(args) -> int:
    from repro.serve import run_load
    from repro.serve.loadgen import DEFAULT_WORKLOADS

    workloads = (
        tuple(w.strip() for w in args.workloads.split(",") if w.strip())
        if args.workloads
        else DEFAULT_WORKLOADS
    )
    if args.kill_gateway_at is not None and args.gateway_pid is None:
        raise SystemExit("loadgen: --kill-gateway-at requires --gateway-pid")
    report = run_load(
        args.url,
        jobs=args.jobs,
        concurrency=args.concurrency,
        workloads=workloads,
        scale=args.scale,
        submit_keys=args.submit_keys,
        retry_window_s=args.retry_window,
        kill_at=args.kill_gateway_at,
        kill_pid=args.gateway_pid,
        reshard_at=args.reshard_at,
        reshard_action=args.reshard_action,
        reshard_shard=args.reshard_shard,
    )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(
            f"loadgen: {report.submitted}/{args.jobs} submitted "
            f"({report.errors} errors) in {report.elapsed_s:.2f}s — "
            f"{report.submissions_per_s:,.0f} submissions/s"
        )
        print(
            f"  accept latency ms: p50 {report.latency_p50_ms:.2f}  "
            f"p90 {report.latency_p90_ms:.2f}  p99 {report.latency_p99_ms:.2f}  "
            f"max {report.latency_max_ms:.2f}"
        )
        if report.resubmissions or report.deduped:
            print(f"  chaos: {report.resubmissions} resubmissions, "
                  f"{report.deduped} deduped, "
                  f"gateway killed: {report.killed_gateway}, "
                  f"resharded: {report.resharded}")
    return 0 if report.errors == 0 else 1


def _cmd_submit(args) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.url)
    job = client.submit(
        args.workload, profiler=args.profiler, mode=args.mode, scale=args.scale
    )
    print(f"submitted {job['id']} ({args.workload} under {args.profiler})")
    if args.no_wait:
        return 0
    job = client.wait(job["id"], timeout=args.timeout)
    print(f"{job['id']}: {job['status']} -> profile {job['profile_id']}")
    return 0


def _cmd_profiles(args) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.url)
    if args.merge:
        merged = client.merge(args.merge)
        print(f"merged {len(args.merge)} profiles -> {merged['id']}")
        return 0
    if args.diff:
        diff = client.diff(args.diff[0], args.diff[1])
        print(json_module.dumps(diff, indent=2))
        return 0
    if args.id:
        if args.json:
            print(json_module.dumps(client.profile(args.id)["profile"], indent=2))
        else:
            print(client.profile_data(args.id).render_text())
        return 0
    if args.trend:
        trend = client.trend(workload=args.workload or "")
        print(json_module.dumps(trend, indent=2))
        return 0
    entries = client.profiles(workload=args.workload or "")
    if not entries:
        print("no stored profiles")
        return 0
    for e in entries:
        merged = f" merged({len(e['parents'])})" if e["parents"] else ""
        print(
            f"{e['id'][:12]}  {e['workload'] or '-':<16} {e['profiler']:<10} "
            f"{e['mode']:<10} {e['elapsed_s']:8.3f}s  {e['peak_mb']:8.1f}MB"
            f"{merged}"
        )
    return 0


def _cmd_chaos(args) -> int:
    import contextlib
    import tempfile

    from repro.faults import (
        run_chaos,
        run_gateway_chaos,
        run_reshard_chaos,
        run_shard_chaos,
    )

    with contextlib.ExitStack() as stack:
        store_root = args.store or stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-chaos-")
        )
        if args.gateway_kill or args.reshard:
            if not args.shards:
                raise SystemExit(
                    "chaos: --gateway-kill/--reshard need --shards N"
                )
            runner = run_gateway_chaos if args.gateway_kill else run_reshard_chaos
            report = runner(
                args.seed,
                root=store_root,
                shards=args.shards,
                jobs=args.jobs,
                workers=args.workers,
            )
            if args.json:
                print(json_module.dumps(report.to_dict(), indent=2))
            else:
                print(report.summary())
            return 0 if report.ok else 1
        if args.shards:
            report = run_shard_chaos(
                args.seed,
                root=store_root,
                shards=args.shards,
                jobs=args.jobs,
                workers=args.workers,
            )
            if args.json:
                print(json_module.dumps(report.to_dict(), indent=2))
            else:
                print(report.summary())
            return 0 if report.ok else 1
        report = run_chaos(
            args.seed,
            store_root=store_root,
            jobs=args.jobs,
            workers=args.workers,
            exit_crashers=args.exit_crashers,
            exception_crashers=args.exception_crashers,
            torn_writes=args.torn_writes,
            signal_drop_rate=args.drop_rate,
        )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_list() -> int:
    print("workloads:")
    for name in workload_names():
        print(f"  {name}")
    print("profilers: scalene (modes: cpu, cpu+gpu, full)")
    for name in profiler_names():
        print(f"  {name}")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "crossflow":
            return _cmd_crossflow(args)
        if args.command == "dis":
            return _cmd_dis(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "loadgen":
            return _cmd_loadgen(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "profiles":
            return _cmd_profiles(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        return _cmd_profile(args)
    except BrokenPipeError:
        # Output piped to a pager/head that exited early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
