"""Simulated NVIDIA-style GPU device and NVML-like query interface."""

from repro.gpu.device import GpuDevice, GpuKernel, NvmlQuery

__all__ = ["GpuDevice", "GpuKernel", "NvmlQuery"]
