"""A simulated GPU device (paper §4).

Scalene's GPU profiler needs exactly two quantities at each CPU sample:
current **utilization** and current **memory consumption**, ideally
accounted *per process ID* (NVML per-PID accounting). The simulated device
provides both via :class:`NvmlQuery`.

Kernels are launched by the simulated native libraries (``simtorch``); a
kernel occupies the device for a wall-time interval. Utilization over a
query window is the busy fraction of that window. When per-PID accounting
is disabled the device reports aggregates across all tenants, including an
optional synthetic background tenant — reproducing the accuracy hazard the
paper notes for shared GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import GpuError
from repro.units import GiB


@dataclass
class GpuKernel:
    """One kernel execution interval on the device."""

    pid: int
    start: float
    end: float
    name: str = "kernel"


@dataclass
class _DeviceBuffer:
    pid: int
    nbytes: int
    address: int


class GpuDevice:
    """Single simulated GPU with busy-interval utilization accounting."""

    def __init__(self, memory_total: int = 8 * GiB, *, utilization_window: float = 0.5) -> None:
        self.memory_total = memory_total
        self.utilization_window = utilization_window
        self._kernels: List[GpuKernel] = []
        self._buffers: Dict[int, _DeviceBuffer] = {}
        self._next_address = 0x10_0000_0000
        self._memory_by_pid: Dict[int, int] = {}
        #: Whether NVML per-process accounting mode is enabled on the device.
        self.per_pid_accounting = False
        # Lifetime stats.
        self.kernels_launched = 0
        self.busy_seconds_total = 0.0

    # -- configuration ---------------------------------------------------------

    def enable_per_pid_accounting(self) -> None:
        """Enable per-PID accounting (requires root on real hardware; the
        simulation just flips the mode, as Scalene does after offering)."""
        self.per_pid_accounting = True

    # -- kernels ---------------------------------------------------------

    def launch_kernel(self, pid: int, start: float, duration: float, name: str = "kernel") -> GpuKernel:
        """Record a kernel occupying the device for ``[start, start+duration)``."""
        if duration < 0:
            raise GpuError(f"negative kernel duration {duration}")
        kernel = GpuKernel(pid=pid, start=start, end=start + duration, name=name)
        self._kernels.append(kernel)
        self.kernels_launched += 1
        self.busy_seconds_total += duration
        return kernel

    # -- memory ---------------------------------------------------------

    def alloc(self, pid: int, nbytes: int) -> int:
        """Allocate device memory on behalf of ``pid``; returns an address."""
        if nbytes < 0:
            raise GpuError(f"negative GPU allocation {nbytes}")
        if self.memory_used() + nbytes > self.memory_total:
            raise GpuError(
                f"GPU out of memory: requested {nbytes}, "
                f"used {self.memory_used()}/{self.memory_total}"
            )
        address = self._next_address
        self._next_address += max(nbytes, 256)
        self._buffers[address] = _DeviceBuffer(pid=pid, nbytes=nbytes, address=address)
        self._memory_by_pid[pid] = self._memory_by_pid.get(pid, 0) + nbytes
        return address

    def free(self, address: int) -> None:
        buffer = self._buffers.pop(address, None)
        if buffer is None:
            raise GpuError(f"free of unknown device address {address:#x}")
        self._memory_by_pid[buffer.pid] -= buffer.nbytes

    def memory_used(self, pid: int | None = None) -> int:
        """Device memory in use, either for one PID or device-wide."""
        if pid is None:
            return sum(self._memory_by_pid.values())
        return self._memory_by_pid.get(pid, 0)

    # -- utilization ---------------------------------------------------------

    def utilization(self, now: float, pid: int | None = None, window: float | None = None) -> float:
        """Busy fraction of the trailing ``window`` ending at ``now``.

        With ``pid`` given, counts only that process's kernels (per-PID
        accounting); otherwise counts all tenants.
        """
        window = window if window is not None else self.utilization_window
        if window <= 0:
            raise GpuError(f"non-positive utilization window {window}")
        window_start = max(now - window, 0.0)
        busy = 0.0
        for kernel in reversed(self._kernels):
            if kernel.end <= window_start:
                # Kernels are appended in start order; once one ends before
                # the window we can stop scanning (ends are monotone enough
                # for single-stream devices).
                break
            if pid is not None and kernel.pid != pid:
                continue
            overlap = min(kernel.end, now) - max(kernel.start, window_start)
            if overlap > 0:
                busy += overlap
        return min(busy / window, 1.0)

    def prune(self, before: float) -> None:
        """Drop kernel history ending before ``before`` (bounds memory)."""
        self._kernels = [k for k in self._kernels if k.end >= before]


@dataclass
class NvmlQuery:
    """NVML-style read-only query facade bound to one device.

    ``snapshot(now, pid)`` returns (utilization, memory_bytes) with
    per-PID granularity when the device has per-PID accounting enabled,
    otherwise device-wide aggregates (the less accurate shared mode).
    """

    device: GpuDevice
    background_pid: int = field(default=-1)

    def snapshot(self, now: float, pid: int) -> Tuple[float, int]:
        if self.device.per_pid_accounting:
            return (
                self.device.utilization(now, pid=pid),
                self.device.memory_used(pid),
            )
        return (self.device.utilization(now), self.device.memory_used())

    @property
    def has_per_pid_accounting(self) -> bool:
        return self.device.per_pid_accounting
