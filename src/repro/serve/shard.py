"""The shard plane: N profile daemons behind one consistent-hash router.

:class:`ShardPlane` boots ``shards`` :class:`~repro.serve.daemon.ProfileDaemon`
instances in one process — each with its own worker pool, its own store
partition (``<root>/shard-00``, ``shard-01``, …), and an ephemeral port —
and wires them to a shared :class:`~repro.serve.router.ShardRouter`:

* **Placement** — a job or query for ``(workload, config_hash)`` routes
  to the key's primary shard (first distinct ring owner);
* **Replication** — each daemon, on accepting a profile, synchronously
  POSTs it to the key's replica shard (second distinct owner) via
  ``/replicate``; content addressing makes the copy idempotent and the
  replica never re-replicates, so the plane holds every profile exactly
  twice (once per owner) without write amplification loops;
* **Failover** — when a shard is marked down, the router answers reads
  from the replica with ``degraded=True``; accepted jobs re-dispatch
  (see :mod:`repro.serve.frontend`).

The plane is also the chaos surface: :meth:`kill` stops a shard's
daemon mid-run exactly like a process death (its HTTP socket closes,
in-flight work is cancelled), and :meth:`revive` boots a fresh daemon
over the same store partition — recovery replays the store into the
streaming sketches, so a revived shard answers correctly immediately.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ServeError
from repro.serve.daemon import ProfileDaemon
from repro.serve.healing import CircuitBreaker, RetryPolicy
from repro.serve.router import ShardRouter
from repro.serve.store import ProfileStore


def shard_name(index: int) -> str:
    return f"shard-{index:02d}"


class ShardPlane:
    """Owns the daemons and the router of one scale-out deployment."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        shards: int = 3,
        workers: int = 1,
        job_timeout_s: float = 120.0,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        vnodes: int = 64,
    ) -> None:
        if shards < 1:
            raise ServeError(f"a shard plane needs >= 1 shard, got {shards}")
        self.root = Path(root)
        self.shard_count = shards
        self.workers = workers
        self.job_timeout_s = job_timeout_s
        self.retry = retry
        self.breaker_threshold = breaker_threshold
        self.vnodes = vnodes
        self.daemons: Dict[str, ProfileDaemon] = {}
        self.router: Optional[ShardRouter] = None
        self._started = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> ShardRouter:
        """Boot every shard, then wire the shared router; returns it."""
        if self._started:
            raise ServeError("shard plane already started")
        self._started = True
        names = [shard_name(i) for i in range(self.shard_count)]
        for name in names:
            self.daemons[name] = self._boot(name)
        self.router = ShardRouter(
            {name: self.daemons[name].url for name in names}, vnodes=self.vnodes
        )
        for daemon in self.daemons.values():
            daemon.router = self.router
        return self.router

    def _boot(self, name: str) -> ProfileDaemon:
        daemon = ProfileDaemon(
            ProfileStore(self.root / name),
            workers=self.workers,
            port=0,
            job_timeout_s=self.job_timeout_s,
            retry=self.retry if self.retry is not None else RetryPolicy(),
            breaker=CircuitBreaker(self.breaker_threshold),
            shard_name=name,
            router=self.router,  # None during initial boot; set in start()
        )
        daemon.start()
        return daemon

    def stop(self) -> None:
        errors = []
        for name, daemon in self.daemons.items():
            try:
                daemon.stop()
            except ServeError as exc:
                errors.append(f"{name}: {exc}")
        self._started = False
        if errors:
            raise ServeError("shard plane stop failures: " + "; ".join(errors))

    # -- elasticity (live resharding) -----------------------------------

    def add_shard(self) -> str:
        """Boot one more daemon and register its URL with the router.

        The new shard is **not** a ring member yet: the caller (the
        gateway's reshard driver) installs it via
        ``router.begin_epoch`` so data migration brackets the ownership
        change. Names never recycle — the next index after the highest
        ever used — so a removed shard's store partition is never
        silently adopted by a newcomer.
        """
        if not self._started or self.router is None:
            raise ServeError("start the shard plane before resharding it")
        indices = [
            int(name.split("-", 1)[1])
            for name in self.daemons
            if name.startswith("shard-")
        ]
        name = shard_name(max(indices, default=-1) + 1)
        daemon = self._boot(name)
        self.daemons[name] = daemon
        self.router.urls[name] = daemon.url
        return name

    def remove_shard(self, name: str) -> None:
        """Decommission a shard that has already left every live ring.

        Stops its daemon (cutting off any not-yet-finished jobs — the
        gateway ledger re-dispatches them) and forgets its URL. The
        store partition stays on disk; a later ``add_shard`` never
        reuses the name, so it is inert.
        """
        daemon = self._daemon(name)
        if self.router is not None:
            self.router.forget(name)  # raises while still a ring member
        daemon.stop()
        del self.daemons[name]

    # -- chaos ----------------------------------------------------------

    def kill(self, name: str) -> None:
        """Stop a shard's daemon abruptly and mark it down on the router.

        Models a shard host dying: its socket closes, queued and
        in-flight jobs are cut off. Reads for its keys fail over to
        replicas; accepted-but-unfinished jobs are the front-end
        ledger's problem (re-dispatch), not the store's.
        """
        daemon = self._daemon(name)
        daemon.stop()
        if self.router is not None:
            self.router.mark_down(name)

    def revive(self, name: str) -> ProfileDaemon:
        """Boot a fresh daemon over the killed shard's store partition.

        The store recovers (tmp sweep, index heal) and the streaming
        sketches resume from ``sketches.json`` — or rebuild from the
        store — so the shard rejoins with correct aggregates. A new
        ephemeral port means the router's URL table is updated in place.
        """
        old = self._daemon(name)
        if old._started:
            raise ServeError(f"shard {name} is still running; kill it first")
        daemon = ProfileDaemon(
            ProfileStore(self.root / name),
            workers=self.workers,
            port=0,
            job_timeout_s=self.job_timeout_s,
            retry=self.retry if self.retry is not None else RetryPolicy(),
            breaker=CircuitBreaker(self.breaker_threshold),
            shard_name=name,
            router=self.router,
        )
        daemon.start()
        self.daemons[name] = daemon
        if self.router is not None:
            self.router.urls[name] = daemon.url
            self.router.mark_up(name)
        return daemon

    # -- introspection --------------------------------------------------

    def _daemon(self, name: str) -> ProfileDaemon:
        daemon = self.daemons.get(name)
        if daemon is None:
            raise ServeError(f"unknown shard {name!r}")
        return daemon

    def urls(self) -> Dict[str, str]:
        return {name: d.url for name, d in self.daemons.items()}

    def health(self) -> Dict[str, Dict]:
        """Per-shard health of the live daemons (killed shards excluded)."""
        report = {}
        for name, daemon in self.daemons.items():
            if self.router is not None and self.router.is_down(name):
                continue
            report[name] = daemon.health()
        return report

    def profile_count(self) -> int:
        """Profiles across all partitions (replicas double-count by design)."""
        return sum(len(d.store) for d in self.daemons.values())
