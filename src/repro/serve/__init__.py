"""Continuous-profiling service: store, aggregate, and serve profiles.

Single-run profiles are ephemeral; this package is what makes them
compound (the Scaler/datacenter-profiling observation — value grows when
profiles persist, merge across runs and processes, and stay queryable):

* :mod:`repro.serve.store` — a versioned, content-addressed on-disk
  profile store with an index keyed by
  ``(workload, profiler, config hash, git tree hash)``;
* :mod:`repro.serve.aggregate` — cross-run merging (via
  :func:`repro.core.profile_data.merge_profiles`), trends, and
  regression detection (via :mod:`repro.analysis.diffing`);
* :mod:`repro.serve.jobs` — the profiling-job model and the worker-side
  job executor;
* :mod:`repro.serve.daemon` — ``python -m repro serve``: a
  multiprocessing worker pool fed from a job queue behind a
  stdlib-``http.server`` JSON API;
* :mod:`repro.serve.client` — the urllib client used by
  ``python -m repro submit`` / ``repro profiles``.
"""

from repro.serve.aggregate import diff_stored, find_regressions, merge_stored, trend
from repro.serve.client import ServeClient
from repro.serve.daemon import ProfileDaemon
from repro.serve.jobs import Job, execute_job
from repro.serve.store import ProfileStore, config_hash, git_tree_hash

__all__ = [
    "ProfileDaemon",
    "ProfileStore",
    "ServeClient",
    "Job",
    "config_hash",
    "diff_stored",
    "execute_job",
    "find_regressions",
    "git_tree_hash",
    "merge_stored",
    "trend",
]
