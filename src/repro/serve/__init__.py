"""Continuous-profiling service: store, aggregate, and serve profiles.

Single-run profiles are ephemeral; this package is what makes them
compound (the Scaler/datacenter-profiling observation — value grows when
profiles persist, merge across runs and processes, and stay queryable):

* :mod:`repro.serve.store` — a versioned, content-addressed on-disk
  profile store with an index keyed by
  ``(workload, profiler, config hash, git tree hash)``;
* :mod:`repro.serve.aggregate` — cross-run merging (via
  :func:`repro.core.profile_data.merge_profiles`), trends, and
  regression detection (via :mod:`repro.analysis.diffing`);
* :mod:`repro.serve.jobs` — the profiling-job model and the worker-side
  job executor;
* :mod:`repro.serve.daemon` — ``python -m repro serve``: a
  multiprocessing worker pool fed from a job queue behind a
  stdlib-``http.server`` JSON API;
* :mod:`repro.serve.client` — the urllib client used by
  ``python -m repro submit`` / ``repro profiles``.

The scale-out plane (``python -m repro serve --shards N``, DESIGN.md
§12) layers on top:

* :mod:`repro.serve.streaming` — bounded streaming aggregation
  (mergeable running statistics + weighted reservoir samples per line
  key) so ``/trend`` and ``/sketch`` answer in O(window), not
  O(history);
* :mod:`repro.serve.router` — consistent-hash placement of
  ``(workload, config_hash)`` keys over N shards with per-key
  read-replica failover;
* :mod:`repro.serve.shard` — boots the shard daemons and wires
  synchronous idempotent replication between them;
* :mod:`repro.serve.frontend` — the selectors-based async gateway:
  batched job submission, a durable acceptance ledger with re-dispatch
  on shard death, and chunked fan-out reads;
* :mod:`repro.serve.loadgen` — the submission load generator behind
  ``python -m repro loadgen`` and ``benchmarks/bench_serve_scale.py``.

The durable control plane (DESIGN.md §13) hardens the gateway itself:

* :mod:`repro.serve.wal` — the fsync'd, checksummed write-ahead log
  behind the gateway ledger: every accepted job survives ``kill -9``
  and is re-dispatched on restart, with checkpoint + truncate
  compaction bounding the log;
* ring epochs in :mod:`repro.serve.router` plus the gateway's
  ``POST /reshard`` endpoint add/remove shards at runtime, migrating
  keys in the background while reads are served from old-or-new owners.
"""

from repro.serve.aggregate import diff_stored, find_regressions, merge_stored, trend
from repro.serve.client import ServeClient
from repro.serve.daemon import ProfileDaemon
from repro.serve.frontend import ServeFrontend
from repro.serve.jobs import Job, execute_job
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.router import HashRing, ShardRouter, shard_key
from repro.serve.shard import ShardPlane
from repro.serve.store import ProfileStore, config_hash, git_tree_hash
from repro.serve.wal import WriteAheadLog
from repro.serve.streaming import (
    KeySketch,
    ReservoirSample,
    RunningStats,
    StreamingAggregator,
)

__all__ = [
    "HashRing",
    "Job",
    "KeySketch",
    "LoadReport",
    "ProfileDaemon",
    "ProfileStore",
    "ReservoirSample",
    "RunningStats",
    "ServeClient",
    "ServeFrontend",
    "ShardPlane",
    "ShardRouter",
    "StreamingAggregator",
    "WriteAheadLog",
    "config_hash",
    "diff_stored",
    "execute_job",
    "find_regressions",
    "git_tree_hash",
    "merge_stored",
    "run_load",
    "shard_key",
    "trend",
]
