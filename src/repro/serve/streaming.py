"""Streaming aggregation: bounded sketches over unbounded profile history.

The serve plane's original aggregation endpoints (``/trend``, ``/merge``,
``find_regressions``) replayed stored history — O(history) reads per
request, which cannot serve a store holding millions of profiles. This
module is the bounded replacement, the same shape real Scalene uses to
keep its own statistics bounded (``RunningStats`` + reservoir sampling in
``scalene_statistics.py``):

* :class:`RunningStats` — exact count/mean/variance/min/max maintained
  incrementally (Welford) and **mergeable** (Chan et al. parallel
  update), so per-shard statistics combine into the global answer
  without revisiting any sample;
* :class:`ReservoirSample` — a fixed-capacity uniform sample of an
  unbounded stream, with a weight-preserving merge (each retained value
  still represents ``seen / capacity`` of its stream) and a seeded RNG
  so runs replay;
* :class:`LineSketch` — one profile line across runs: running stats of
  its per-run CPU share and peak footprint, a reservoir of per-run CPU
  shares, **plus exact summed absolute quantities** (CPU seconds,
  allocation MB) so the sketch-derived merged percentages recombine
  exactly the way :func:`repro.core.profile_data.merge_profiles` does;
* :class:`KeySketch` — everything the serve plane needs to answer
  ``/trend`` for one index key ``(workload, profiler, config_hash)``:
  headline running stats, a bounded window of recent trend points, and
  the per-line table of :class:`LineSketch` es;
* :class:`StreamingAggregator` — the daemon-side registry of key
  sketches, updated on every ingest (O(lines) per stored profile,
  O(window) per query) and persisted as one JSON blob next to the store.

Every sketch serializes (``to_dict`` / ``from_dict``) and merges; all
merges are associative and commutative up to float rounding (property-
tested in ``tests/test_streaming_properties.py``). Merged profiles carry
their sketch payload in the schema-v6 ``sketch`` field, so a consumer of
a merged profile can read per-line run-to-run variance without the
constituent profiles.
"""

from __future__ import annotations

import math
import random
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ServeError

#: Default reservoir capacity (per line key). Big enough for stable
#: quantiles, small enough that a million-run history stays ~KBs.
RESERVOIR_CAPACITY = 64

#: Default bound on the recent-points window a KeySketch keeps for
#: ``/trend`` answers and consecutive-run regression detection.
TREND_WINDOW = 128

#: Default bound on distinct line keys tracked per index key. Profiles
#: are already filtered to their significant lines (≤300), so the union
#: across runs of one workload is naturally small; the cap is a backstop
#: against adversarial histories, counted in ``lines_dropped``.
MAX_LINE_KEYS = 4096


class RunningStats:
    """Exact streaming count/mean/variance/min/max (Welford, mergeable).

    ``push`` is O(1); ``merge`` combines two disjoint streams using the
    parallel-variance update, so the result is independent of how the
    stream was partitioned (associativity/commutativity up to float
    rounding — the property the cross-shard aggregation relies on).
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def push(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def variance(self) -> float:
        """Population variance of the stream (0 while count < 2)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    @property
    def peak(self) -> float:
        """The stream maximum (0 for an empty stream, for reporting)."""
        return self.max if self.count else 0.0

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Fold ``other`` in (in place); returns self for chaining."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self._m2,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunningStats":
        stats = cls()
        stats.count = int(payload["count"])
        stats.mean = float(payload["mean"])
        stats._m2 = float(payload["m2"])
        if stats.count:
            stats.min = float(payload["min"])
            stats.max = float(payload["max"])
        return stats


class ReservoirSample:
    """Fixed-capacity uniform sample of an unbounded stream (Algorithm R).

    ``seen`` counts every offered value, so each retained value carries
    weight ``seen / len(values)`` — the invariant the merge preserves:
    merging two reservoirs draws from their union with per-stream
    probability proportional to each stream's ``seen``, and the merged
    ``seen`` is the sum. The RNG is seeded (per line key, by the owner)
    so a replayed ingest sequence reproduces the same sample.
    """

    __slots__ = ("capacity", "seen", "values", "_rng")

    def __init__(self, capacity: int = RESERVOIR_CAPACITY, *, seed: int = 0) -> None:
        if capacity < 1:
            raise ServeError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seen = 0
        self.values: List[float] = []
        self._rng = random.Random(seed)

    def push(self, value: float) -> None:
        self.seen += 1
        if len(self.values) < self.capacity:
            self.values.append(value)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self.values[slot] = value

    def merge(self, other: "ReservoirSample") -> "ReservoirSample":
        """Fold ``other`` in (in place), preserving sample weights.

        Each merged slot is drawn from self's pool with probability
        ``self.seen / (self.seen + other.seen)``, else from other's —
        i.e. the merged reservoir is a uniform draw from the union
        stream without replaying it.
        """
        if other.seen == 0:
            return self
        if self.seen == 0:
            self.seen = other.seen
            self.values = list(other.values)
            return self
        total = self.seen + other.seen
        mine, theirs = list(self.values), list(other.values)
        merged: List[float] = []
        want = min(self.capacity, len(mine) + len(theirs))
        while len(merged) < want:
            take_self = bool(mine) and (
                not theirs or self._rng.random() < self.seen / total
            )
            pool = mine if take_self else theirs
            merged.append(pool.pop(self._rng.randrange(len(pool))))
        self.values = merged
        self.seen = total
        return self

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the sample (0 for an empty one)."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def to_dict(self) -> Dict:
        return {
            "capacity": self.capacity,
            "seen": self.seen,
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, payload: Dict, *, seed: int = 0) -> "ReservoirSample":
        sample = cls(int(payload["capacity"]), seed=seed)
        sample.seen = int(payload["seen"])
        sample.values = [float(v) for v in payload["values"]]
        return sample


def _line_seed(filename: str, lineno: int) -> int:
    """Deterministic reservoir seed per line key (stable across runs)."""
    return (hash((filename, lineno)) ^ 0x5EED) & 0x7FFFFFFF


@dataclass
class LineSketch:
    """One source line across runs: exact sums + distributional sketch.

    The exact fields (``python_s``/``native_s``/``system_s``/
    ``malloc_mb``) are the same absolute quantities
    :func:`~repro.core.profile_data.merge_profiles` recombines, so the
    sketch-derived merged CPU share —
    ``100 * (python_s+native_s+system_s) / total_cpu_s`` — equals the
    exact-merge answer up to float rounding. The running stats and the
    reservoir add what the exact merge cannot say: how the line behaved
    *per run* (mean ± stddev, peak, quantiles) with O(1) memory.
    """

    filename: str
    lineno: int
    function: str = ""
    python_s: float = 0.0
    native_s: float = 0.0
    system_s: float = 0.0
    malloc_mb: float = 0.0
    peak_mb: float = 0.0
    cpu_percent: RunningStats = field(default_factory=RunningStats)
    peak_stats: RunningStats = field(default_factory=RunningStats)
    cpu_reservoir: Optional[ReservoirSample] = None

    def __post_init__(self) -> None:
        if self.cpu_reservoir is None:
            self.cpu_reservoir = ReservoirSample(
                seed=_line_seed(self.filename, self.lineno)
            )

    @property
    def total_s(self) -> float:
        return self.python_s + self.native_s + self.system_s

    def push(self, line, profile_total_cpu_s: float, profile_alloc_mb: float) -> None:
        """Fold one run's :class:`~repro.core.profile_data.LineReport` in."""
        self.function = self.function or line.function
        seconds = (
            lambda pct: pct / 100.0 * profile_total_cpu_s
        )
        self.python_s += seconds(line.cpu_python_percent)
        self.native_s += seconds(line.cpu_native_percent)
        self.system_s += seconds(line.cpu_system_percent)
        self.malloc_mb += line.mem_activity_percent / 100.0 * profile_alloc_mb
        self.peak_mb = max(self.peak_mb, line.mem_peak_mb)
        self.cpu_percent.push(line.cpu_total_percent)
        self.peak_stats.push(line.mem_peak_mb)
        self.cpu_reservoir.push(line.cpu_total_percent)

    def merge(self, other: "LineSketch") -> "LineSketch":
        self.function = self.function or other.function
        self.python_s += other.python_s
        self.native_s += other.native_s
        self.system_s += other.system_s
        self.malloc_mb += other.malloc_mb
        self.peak_mb = max(self.peak_mb, other.peak_mb)
        self.cpu_percent.merge(other.cpu_percent)
        self.peak_stats.merge(other.peak_stats)
        self.cpu_reservoir.merge(other.cpu_reservoir)
        return self

    def to_dict(self) -> Dict:
        return {
            "filename": self.filename,
            "lineno": self.lineno,
            "function": self.function,
            "python_s": self.python_s,
            "native_s": self.native_s,
            "system_s": self.system_s,
            "malloc_mb": self.malloc_mb,
            "peak_mb": self.peak_mb,
            "cpu_percent": self.cpu_percent.to_dict(),
            "peak_stats": self.peak_stats.to_dict(),
            "cpu_reservoir": self.cpu_reservoir.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "LineSketch":
        filename = payload["filename"]
        lineno = int(payload["lineno"])
        return cls(
            filename=filename,
            lineno=lineno,
            function=payload.get("function", ""),
            python_s=float(payload["python_s"]),
            native_s=float(payload["native_s"]),
            system_s=float(payload["system_s"]),
            malloc_mb=float(payload["malloc_mb"]),
            peak_mb=float(payload["peak_mb"]),
            cpu_percent=RunningStats.from_dict(payload["cpu_percent"]),
            peak_stats=RunningStats.from_dict(payload["peak_stats"]),
            cpu_reservoir=ReservoirSample.from_dict(
                payload["cpu_reservoir"], seed=_line_seed(filename, lineno)
            ),
        )


class KeySketch:
    """Bounded streaming state for one index key.

    Ingest is O(profile lines); every query — trend points, regression
    flags, sketch-merged per-line shares — is O(window + line keys),
    independent of how many profiles the key has ever stored.
    """

    def __init__(
        self,
        *,
        window: int = TREND_WINDOW,
        max_line_keys: int = MAX_LINE_KEYS,
    ) -> None:
        self.window = window
        self.max_line_keys = max_line_keys
        self.runs = 0
        self.total_cpu_s = 0.0
        self.total_alloc_mb = 0.0
        self.elapsed = RunningStats()
        self.peak_mb = RunningStats()
        self.cpu_samples = RunningStats()
        self.lines: "OrderedDict[Tuple[str, int], LineSketch]" = OrderedDict()
        self.lines_dropped = 0
        #: Recent trend points (headline dicts), newest last.
        self.recent: deque = deque(maxlen=window)

    # -- ingest ---------------------------------------------------------

    def ingest(self, entry: Dict, profile) -> None:
        """Fold one stored profile in (``entry`` is its index entry)."""
        total_cpu = (
            profile.cpu_python_time
            + profile.cpu_native_time
            + profile.cpu_system_time
        )
        self.runs += 1
        self.total_cpu_s += total_cpu
        self.total_alloc_mb += profile.total_alloc_mb
        self.elapsed.push(profile.elapsed)
        self.peak_mb.push(profile.peak_footprint_mb)
        self.cpu_samples.push(profile.cpu_samples)
        for line in profile.lines:
            key = (line.filename, line.lineno)
            sketch = self.lines.get(key)
            if sketch is None:
                if len(self.lines) >= self.max_line_keys:
                    self.lines_dropped += 1
                    continue
                sketch = self.lines[key] = LineSketch(
                    filename=line.filename, lineno=line.lineno
                )
            sketch.push(line, total_cpu, profile.total_alloc_mb)
        self.recent.append(
            {
                "id": entry.get("id", ""),
                "workload": entry.get("workload", ""),
                "created_at": entry.get("created_at", 0.0),
                "elapsed_s": profile.elapsed,
                "peak_mb": profile.peak_footprint_mb,
                "cpu_samples": profile.cpu_samples,
                "mem_samples": profile.mem_samples,
                "degraded": profile.degraded,
            }
        )

    # -- queries --------------------------------------------------------

    def summary(self) -> Dict:
        """Headline streaming statistics (the O(1) ``/trend`` answer)."""
        return {
            "runs": self.runs,
            "elapsed_s": {
                "mean": self.elapsed.mean,
                "stddev": self.elapsed.stddev,
                "min": self.elapsed.min if self.elapsed.count else 0.0,
                "max": self.elapsed.peak,
            },
            "peak_mb": {
                "mean": self.peak_mb.mean,
                "stddev": self.peak_mb.stddev,
                "max": self.peak_mb.peak,
            },
            "cpu_samples_mean": self.cpu_samples.mean,
            "total_cpu_s": self.total_cpu_s,
            "lines_tracked": len(self.lines),
            "lines_dropped": self.lines_dropped,
            "window": len(self.recent),
        }

    def trend_points(self, limit: int = 0, offset: int = 0) -> List[Dict]:
        """The bounded recent window, oldest first (paginated)."""
        points = list(self.recent)
        if offset:
            points = points[offset:] if offset < len(points) else []
        if limit:
            points = points[:limit]
        return points

    def line_table(self, top: int = 0) -> List[Dict]:
        """Sketch-merged per-line rows, hottest first.

        ``cpu_percent`` recombines the exact summed seconds against the
        key's total CPU — the same formula the exact merge uses — so it
        matches ``merge_profiles`` of the full history up to rounding.
        """
        rows = []
        for sketch in self.lines.values():
            share = (
                100.0 * sketch.total_s / self.total_cpu_s
                if self.total_cpu_s > 0
                else 0.0
            )
            rows.append(
                {
                    "filename": sketch.filename,
                    "lineno": sketch.lineno,
                    "function": sketch.function,
                    "cpu_percent": share,
                    "cpu_percent_per_run": {
                        "mean": sketch.cpu_percent.mean,
                        "stddev": sketch.cpu_percent.stddev,
                        "p50": sketch.cpu_reservoir.quantile(0.5),
                        "p90": sketch.cpu_reservoir.quantile(0.9),
                        "runs": sketch.cpu_percent.count,
                    },
                    "peak_mb": sketch.peak_mb,
                    "malloc_mb": sketch.malloc_mb,
                }
            )
        rows.sort(key=lambda r: -r["cpu_percent"])
        return rows[:top] if top else rows

    def regressions(
        self, *, elapsed_factor: float = 1.2, peak_factor: float = 1.2
    ) -> List[Dict]:
        """Consecutive-run regressions inside the bounded window."""
        flags: List[Dict] = []
        points = list(self.recent)
        for prev, curr in zip(points, points[1:]):
            reasons = []
            if (
                prev["elapsed_s"] > 0
                and curr["elapsed_s"] > elapsed_factor * prev["elapsed_s"]
            ):
                reasons.append(
                    f"elapsed {prev['elapsed_s']:.3f}s -> {curr['elapsed_s']:.3f}s"
                )
            if (
                prev["peak_mb"] > 0
                and curr["peak_mb"] > peak_factor * prev["peak_mb"]
            ):
                reasons.append(
                    f"peak {prev['peak_mb']:.1f}MB -> {curr['peak_mb']:.1f}MB"
                )
            if reasons:
                flags.append(
                    {
                        "before": prev["id"],
                        "after": curr["id"],
                        "workload": curr["workload"],
                        "reasons": reasons,
                    }
                )
        return flags

    # -- merge / serialization ------------------------------------------

    def merge(self, other: "KeySketch") -> "KeySketch":
        """Fold another shard's sketch for the same key in (in place).

        Recent windows interleave by ``created_at`` and re-truncate to
        the window bound (newest points win), mirroring what a single
        aggregator ingesting the union stream would have kept.
        """
        self.runs += other.runs
        self.total_cpu_s += other.total_cpu_s
        self.total_alloc_mb += other.total_alloc_mb
        self.elapsed.merge(other.elapsed)
        self.peak_mb.merge(other.peak_mb)
        self.cpu_samples.merge(other.cpu_samples)
        self.lines_dropped += other.lines_dropped
        for key, sketch in other.lines.items():
            mine = self.lines.get(key)
            if mine is None:
                if len(self.lines) >= self.max_line_keys:
                    self.lines_dropped += 1
                    continue
                self.lines[key] = sketch
            else:
                mine.merge(sketch)
        combined = sorted(
            list(self.recent) + list(other.recent),
            key=lambda p: (p.get("created_at", 0.0), p.get("id", "")),
        )
        self.recent = deque(combined[-self.window:], maxlen=self.window)
        return self

    def to_dict(self) -> Dict:
        return {
            "window": self.window,
            "max_line_keys": self.max_line_keys,
            "runs": self.runs,
            "total_cpu_s": self.total_cpu_s,
            "total_alloc_mb": self.total_alloc_mb,
            "elapsed": self.elapsed.to_dict(),
            "peak_mb": self.peak_mb.to_dict(),
            "cpu_samples": self.cpu_samples.to_dict(),
            "lines_dropped": self.lines_dropped,
            "lines": [sketch.to_dict() for sketch in self.lines.values()],
            "recent": list(self.recent),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "KeySketch":
        sketch = cls(
            window=int(payload["window"]),
            max_line_keys=int(payload["max_line_keys"]),
        )
        sketch.runs = int(payload["runs"])
        sketch.total_cpu_s = float(payload["total_cpu_s"])
        sketch.total_alloc_mb = float(payload["total_alloc_mb"])
        sketch.elapsed = RunningStats.from_dict(payload["elapsed"])
        sketch.peak_mb = RunningStats.from_dict(payload["peak_mb"])
        sketch.cpu_samples = RunningStats.from_dict(payload["cpu_samples"])
        sketch.lines_dropped = int(payload["lines_dropped"])
        for entry in payload["lines"]:
            line = LineSketch.from_dict(entry)
            sketch.lines[(line.filename, line.lineno)] = line
        sketch.recent = deque(payload["recent"], maxlen=sketch.window)
        return sketch


def sketch_of_profile(profile, entry: Optional[Dict] = None) -> KeySketch:
    """A singleton :class:`KeySketch` holding exactly one profile.

    The unit of the sketch monoid: ``merge`` over singletons of N
    profiles equals one aggregator ingesting all N.
    """
    sketch = KeySketch()
    sketch.ingest(entry or {}, profile)
    return sketch


def merge_sketch_payloads(payloads: Sequence[Optional[Dict]]) -> Optional[Dict]:
    """Merge serialized sketch payloads (``None`` entries are dropped).

    Used by :func:`repro.core.profile_data.merge_profiles` to carry a
    combined sketch on the merged profile; returns ``None`` when no
    input had one.
    """
    present = [p for p in payloads if p]
    if not present:
        return None
    merged = KeySketch.from_dict(present[0])
    for payload in present[1:]:
        merged.merge(KeySketch.from_dict(payload))
    return merged.to_dict()


class StreamingAggregator:
    """The daemon-side registry: one :class:`KeySketch` per index key.

    Keys are ``(workload, profiler, config_hash)`` — the slice ``/trend``
    queries — and ingest happens exactly once per stored profile (merged
    profiles, which have parents, are excluded, matching the exact
    trend's semantics). The whole registry serializes to one JSON blob
    (:meth:`to_dict`), persisted by the daemon next to the store after
    each ingest so a restart resumes without replaying history.
    """

    STATE_FORMAT = 1

    def __init__(
        self,
        *,
        window: int = TREND_WINDOW,
        max_line_keys: int = MAX_LINE_KEYS,
    ) -> None:
        self.window = window
        self.max_line_keys = max_line_keys
        self._keys: Dict[Tuple[str, str, str], KeySketch] = {}
        #: Content ids already ingested (bounded: ids are 64 chars; a
        #: million ids ≈ 64 MB — acceptable for exactly-once ingest; the
        #: persisted state keeps only a recent suffix per key window).
        self._seen: set = set()
        self.ingested = 0

    @staticmethod
    def key_of(entry: Dict) -> Tuple[str, str, str]:
        return (
            entry.get("workload", ""),
            entry.get("profiler", ""),
            entry.get("config_hash", ""),
        )

    def ingest(self, entry: Dict, profile) -> bool:
        """Fold one stored profile in; False if already seen or merged."""
        profile_id = entry.get("id", "")
        if profile_id and profile_id in self._seen:
            return False
        if entry.get("parents"):
            return False  # merged profiles are aggregates, not runs
        key = self.key_of(entry)
        sketch = self._keys.get(key)
        if sketch is None:
            sketch = self._keys[key] = KeySketch(
                window=self.window, max_line_keys=self.max_line_keys
            )
        sketch.ingest(entry, profile)
        if profile_id:
            self._seen.add(profile_id)
        self.ingested += 1
        return True

    def sketch(
        self,
        *,
        workload: Optional[str] = None,
        profiler: Optional[str] = None,
        config_hash: Optional[str] = None,
    ) -> Optional[KeySketch]:
        """The (merged) sketch for every key matching the filter.

        ``None`` filter components match anything; multiple matching
        keys merge into one combined answer (cross-shard ``/trend`` over
        a workload regardless of profiler/config).
        """
        matches = [
            sketch
            for (w, p, c), sketch in self._keys.items()
            if (workload is None or w == workload)
            and (profiler is None or p == profiler)
            and (config_hash is None or c == config_hash)
        ]
        if not matches:
            return None
        if len(matches) == 1:
            return matches[0]
        merged = KeySketch.from_dict(matches[0].to_dict())
        for sketch in matches[1:]:
            merged.merge(KeySketch.from_dict(sketch.to_dict()))
        return merged

    def keys(self) -> List[Dict]:
        return [
            {
                "workload": w,
                "profiler": p,
                "config_hash": c,
                "runs": sketch.runs,
            }
            for (w, p, c), sketch in sorted(self._keys.items())
        ]

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "format": self.STATE_FORMAT,
            "window": self.window,
            "max_line_keys": self.max_line_keys,
            "ingested": self.ingested,
            "seen": sorted(self._seen),
            "keys": [
                {
                    "workload": w,
                    "profiler": p,
                    "config_hash": c,
                    "sketch": sketch.to_dict(),
                }
                for (w, p, c), sketch in sorted(self._keys.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "StreamingAggregator":
        if (
            not isinstance(payload, dict)
            or payload.get("format") != cls.STATE_FORMAT
        ):
            raise ServeError(
                "unreadable streaming-aggregator state "
                f"(format {payload.get('format') if isinstance(payload, dict) else '?'!r})"
            )
        aggregator = cls(
            window=int(payload["window"]),
            max_line_keys=int(payload["max_line_keys"]),
        )
        aggregator.ingested = int(payload["ingested"])
        aggregator._seen = set(payload["seen"])
        for entry in payload["keys"]:
            key = (entry["workload"], entry["profiler"], entry["config_hash"])
            aggregator._keys[key] = KeySketch.from_dict(entry["sketch"])
        return aggregator
