"""Content-addressed, versioned on-disk profile store.

Layout under the store root::

    objects/<id[:2]>/<id>.json    one canonical-JSON envelope per profile
    index.json                    metadata for every stored profile

Every object is an envelope ``{"store_format": 1, "profile": <payload>}``
serialized as *canonical JSON* (sorted keys, minimal separators); the
profile id is the SHA-256 of those bytes, so identical profiles dedupe to
one object and any corruption is detected on read by re-hashing. The
profile payload itself is schema-versioned
(:data:`repro.core.profile_data.SCHEMA_VERSION`) and
:meth:`~repro.core.profile_data.ProfileData.from_dict` fails loudly on a
version this build cannot read.

The index carries, per profile, the query key the aggregation engine
works in — ``(workload, profiler, config_hash, tree_hash)`` — plus a few
headline numbers (elapsed, peak, copy volume, sample counts) so listing
and trend queries never have to open the objects themselves. Merged
profiles record their constituent ids in ``parents``.

Writes are atomic (temp file + ``os.replace``) and serialized by an
in-process lock; the daemon funnels all persistence through one process,
so no cross-process locking is needed.

Crash safety: every object gets a ``<id>.meta.json`` sidecar holding its
index entry, so the index is *derived* state. Opening a store runs
:meth:`ProfileStore.recover`: leftover ``*.tmp.*`` files from interrupted
writes are swept, and a missing or unreadable ``index.json`` triggers a
full rebuild from a blob scan — content-verified blobs re-enter the index
(via their sidecar, or a minimal entry derived from the payload), corrupt
blobs are moved to ``quarantine/``. Reads heal too: a torn index found by
any query is rebuilt in place, and :meth:`ProfileStore.put` rewrites a
corrupt existing object rather than trusting it. A
:class:`repro.faults.FaultInjector` attached as ``store.faults`` can
inject torn writes (truncated bytes land in the destination and the write
raises) to exercise exactly these paths.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.config import ScaleneConfig
from repro.core.profile_data import ProfileData
from repro.errors import StoreError

STORE_FORMAT = 1


def canonical_json(payload: Dict) -> str:
    """Deterministic JSON: sorted keys, minimal separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_hash(config: Union[ScaleneConfig, Dict, None]) -> str:
    """Stable hash of a profiling configuration (part of the index key)."""
    if config is None:
        return ""
    if isinstance(config, ScaleneConfig):
        config = dataclasses.asdict(config)
    digest = hashlib.sha256(canonical_json(config).encode("utf-8"))
    return digest.hexdigest()[:16]


def git_tree_hash(repo_root: Union[str, Path, None] = None) -> str:
    """``HEAD^{tree}`` of the repo at ``repo_root`` ("" when unavailable)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD^{tree}"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except OSError:
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


class ProfileStore:
    """A directory of content-addressed profiles plus a metadata index."""

    def __init__(self, root: Union[str, Path], *, faults=None) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.index_path = self.root / "index.json"
        self.quarantine_dir = self.root / "quarantine"
        #: Optional :class:`repro.faults.FaultInjector`; consulted by
        #: :meth:`_atomic_write` for torn-write faults.
        self.faults = faults
        self._lock = threading.RLock()
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        #: Stamp-validated index cache. ``_cache_index`` mirrors the
        #: on-disk index as of ``_cache_stamp`` (mtime_ns, size); any
        #: out-of-band change to ``index.json`` changes the stamp, so
        #: reads fall through to disk (and its healing path) exactly as
        #: they did before the cache existed. With
        #: :attr:`defer_index_flush` set, ``put`` appends to the cache
        #: only (``_pending_flush``), and :meth:`flush_index` writes the
        #: whole index once — turning an N-profile bulk load from
        #: O(N²) index bytes into O(N). Safe because the index is
        #: derived state: a crash before the flush loses nothing the
        #: sidecar scan can't rebuild.
        self._cache_index: Optional[Dict] = None
        self._cache_stamp: Optional[tuple] = None
        self._pending_flush = False
        self.defer_index_flush = False
        #: What opening the store had to heal (see :meth:`recover`).
        self.last_recovery = self.recover()

    # -- recovery --------------------------------------------------------

    def recover(self) -> Dict[str, int]:
        """Sweep interrupted writes and rebuild the index if unreadable.

        Safe to call at any time (it runs on every open). Returns a small
        report: ``tmp_swept`` temp files removed, ``index_rebuilt`` (0/1),
        and ``objects_quarantined`` corrupt blobs moved aside.
        """
        with self._lock:
            swept = 0
            for tmp in self.root.rglob("*.tmp.*"):
                try:
                    tmp.unlink()
                    swept += 1
                except OSError:
                    pass
            rebuilt = 0
            quarantined = 0
            try:
                self._read_index()
            except StoreError:
                quarantined = self._rebuild_index()
                rebuilt = 1
            return {
                "tmp_swept": swept,
                "index_rebuilt": rebuilt,
                "objects_quarantined": quarantined,
            }

    def _rebuild_index(self) -> int:
        """Regenerate ``index.json`` from a content-verified blob scan."""
        entries: List[Dict] = []
        quarantined = 0
        for path in sorted(self.objects_dir.glob("*/*.json")):
            if path.name.endswith(".meta.json"):
                continue
            profile_id = path.stem
            try:
                blob = path.read_text(encoding="utf-8")
                digest = hashlib.sha256(
                    blob.rstrip("\n").encode("utf-8")
                ).hexdigest()
                if digest != profile_id:
                    raise ValueError("content hash mismatch")
                envelope = json.loads(blob)
            except (OSError, ValueError):
                quarantined += 1
                self._quarantine(path)
                continue
            entry = self._load_sidecar(profile_id)
            if entry is None:
                entry = self._entry_from_envelope(profile_id, envelope)
            entries.append(entry)
        entries.sort(key=lambda e: (e.get("created_at", 0.0), e["id"]))
        self._write_index({"format": STORE_FORMAT, "entries": entries})
        return quarantined

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt blob out of ``objects/`` (never delete evidence)."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        n = 0
        while target.exists():
            n += 1
            target = self.quarantine_dir / f"{path.name}.{n}"
        try:
            os.replace(path, target)
        except OSError:
            pass

    def _load_sidecar(self, profile_id: str) -> Optional[Dict]:
        """The ``.meta.json`` index entry for a blob, or None if unusable."""
        try:
            entry = json.loads(
                self._meta_path(profile_id).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("id") != profile_id:
            return None
        return entry

    @staticmethod
    def _entry_from_envelope(profile_id: str, envelope: Dict) -> Dict:
        """Minimal index entry for a blob with no usable sidecar.

        The query key (workload/profiler/config/tree) lives only in the
        sidecar; without one the blob is still listed — content intact,
        headline numbers recovered from the payload — just unkeyed.
        """
        profile = envelope.get("profile") or {}
        cpu = profile.get("cpu") or {}
        memory = profile.get("memory") or {}
        return {
            "id": profile_id,
            "workload": "",
            "profiler": "",
            "config_hash": "",
            "tree_hash": "",
            "mode": profile.get("mode", ""),
            "elapsed_s": profile.get("elapsed_s", 0.0),
            "cpu_samples": cpu.get("samples", 0),
            "mem_samples": memory.get("samples", 0),
            "peak_mb": memory.get("peak_mb", 0.0),
            "copy_mb": profile.get("copy_volume_mb", 0.0),
            "alloc_mb": memory.get("total_alloc_mb", 0.0),
            "leaks": len(profile.get("leaks") or []),
            "parents": [],
            "created_at": 0.0,
        }

    # -- write ----------------------------------------------------------

    def put(
        self,
        profile: ProfileData,
        *,
        workload: str = "",
        profiler: str = "scalene",
        config: Union[ScaleneConfig, Dict, None] = None,
        tree_hash: str = "",
        parents: Sequence[str] = (),
        created_at: Optional[float] = None,
    ) -> str:
        """Persist ``profile``; returns its content id (idempotent)."""
        envelope = {"store_format": STORE_FORMAT, "profile": profile.to_dict()}
        blob = canonical_json(envelope)
        profile_id = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        entry = {
            "id": profile_id,
            "workload": workload,
            "profiler": profiler,
            "config_hash": config if isinstance(config, str) else config_hash(config),
            "tree_hash": tree_hash,
            "mode": profile.mode,
            "elapsed_s": profile.elapsed,
            "cpu_samples": profile.cpu_samples,
            "mem_samples": profile.mem_samples,
            "peak_mb": profile.peak_footprint_mb,
            "copy_mb": profile.total_copy_mb,
            "alloc_mb": profile.total_alloc_mb,
            "leaks": len(profile.leaks),
            "parents": list(parents),
            "created_at": created_at if created_at is not None else time.time(),
        }
        with self._lock:
            path = self._object_path(profile_id)
            # Self-healing write: an existing-but-corrupt object (torn by
            # a crash mid-write) is rewritten, not trusted.
            if not self._object_intact(path, profile_id):
                self._atomic_write(path, blob + "\n")
            if self._load_sidecar(profile_id) is None:
                self._atomic_write(
                    self._meta_path(profile_id), json.dumps(entry, indent=2) + "\n"
                )
            index = self._read_index_healing()
            if not any(e["id"] == profile_id for e in index["entries"]):
                index["entries"].append(entry)
                if self.defer_index_flush:
                    self._cache_index = index
                    self._pending_flush = True
                else:
                    self._write_index(index)
        return profile_id

    def flush_index(self) -> None:
        """Write a deferred index (see :attr:`defer_index_flush`)."""
        with self._lock:
            if self._pending_flush and self._cache_index is not None:
                self._write_index(self._cache_index)

    # -- read -----------------------------------------------------------

    def get(self, profile_id: str) -> ProfileData:
        """Load a profile by id (or unique id prefix), verifying content."""
        return ProfileData.from_dict(self.get_raw(profile_id)["profile"])

    def get_raw(self, profile_id: str) -> Dict:
        """The stored envelope, content-verified, as a dict."""
        profile_id = self.resolve(profile_id)
        path = self._object_path(profile_id)
        try:
            blob = path.read_text(encoding="utf-8")
        except OSError:
            raise StoreError(f"profile object {profile_id} missing from store") from None
        digest = hashlib.sha256(blob.rstrip("\n").encode("utf-8")).hexdigest()
        if digest != profile_id:
            raise StoreError(
                f"profile object {profile_id[:12]}… is corrupt "
                f"(content hashes to {digest[:12]}…)"
            )
        envelope = json.loads(blob)
        if envelope.get("store_format") != STORE_FORMAT:
            raise StoreError(
                f"unsupported store format {envelope.get('store_format')!r}; "
                f"this build reads format {STORE_FORMAT}"
            )
        return envelope

    def resolve(self, profile_id: str) -> str:
        """Expand a unique id prefix to the full id."""
        if not profile_id:
            raise StoreError("empty profile id")
        matches = [e["id"] for e in self.entries() if e["id"].startswith(profile_id)]
        if not matches:
            raise StoreError(f"unknown profile id {profile_id!r}")
        if len(set(matches)) > 1:
            raise StoreError(f"ambiguous profile id prefix {profile_id!r}")
        return matches[0]

    def entry(self, profile_id: str) -> Dict:
        profile_id = self.resolve(profile_id)
        for e in self.entries():
            if e["id"] == profile_id:
                return e
        raise StoreError(f"profile {profile_id} has no index entry")

    def entries(self) -> List[Dict]:
        """All index entries, insertion-ordered (heals a torn index).

        Returns per-entry copies: callers can annotate them without
        mutating the cached index.
        """
        with self._lock:
            return [dict(e) for e in self._read_index_healing()["entries"]]

    def find(
        self,
        *,
        workload: Optional[str] = None,
        profiler: Optional[str] = None,
        config_hash: Optional[str] = None,
        tree_hash: Optional[str] = None,
    ) -> List[Dict]:
        """Index entries matching every given component of the key."""
        def match(entry: Dict) -> bool:
            return (
                (workload is None or entry["workload"] == workload)
                and (profiler is None or entry["profiler"] == profiler)
                and (config_hash is None or entry["config_hash"] == config_hash)
                and (tree_hash is None or entry["tree_hash"] == tree_hash)
            )

        return [e for e in self.entries() if match(e)]

    def __len__(self) -> int:
        return len(self.entries())

    def __contains__(self, profile_id: str) -> bool:
        try:
            self.resolve(profile_id)
        except StoreError:
            return False
        return True

    # -- internals ------------------------------------------------------

    def _object_path(self, profile_id: str) -> Path:
        return self.objects_dir / profile_id[:2] / f"{profile_id}.json"

    def _meta_path(self, profile_id: str) -> Path:
        return self.objects_dir / profile_id[:2] / f"{profile_id}.meta.json"

    def _object_intact(self, path: Path, profile_id: str) -> bool:
        """True iff the blob exists and re-hashes to its id."""
        try:
            blob = path.read_text(encoding="utf-8")
        except OSError:
            return False
        digest = hashlib.sha256(blob.rstrip("\n").encode("utf-8")).hexdigest()
        return digest == profile_id

    def _atomic_write(self, path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        faults = self.faults
        if faults is not None and faults.tear_write():
            # Injected crash mid-write: truncated bytes land directly in
            # the destination (no temp/replace protection) and the caller
            # sees the failure, exactly like a kill between write() calls.
            path.write_text(text[: max(1, len(text) // 2)], encoding="utf-8")
            raise StoreError(f"torn write (injected fault): {path}")
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    def _read_index(self) -> Dict:
        try:
            index = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"cannot read store index {self.index_path}: {exc}")
        if not isinstance(index, dict) or index.get("format") != STORE_FORMAT:
            raise StoreError(
                f"unsupported index format; this build reads format {STORE_FORMAT}"
            )
        return index

    def _index_stamp(self) -> Optional[tuple]:
        try:
            stat = self.index_path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _read_index_healing(self) -> Dict:
        """Read the index, rebuilding it from the blobs if unreadable.

        Served from the in-memory cache while the on-disk stamp is
        unchanged (or while a deferred flush makes the cache the only
        current copy); any external modification invalidates the stamp
        and falls through to the original read-and-heal path.
        """
        with self._lock:
            if self._pending_flush and self._cache_index is not None:
                return self._cache_index
            stamp = self._index_stamp()
            if (
                self._cache_index is not None
                and stamp is not None
                and stamp == self._cache_stamp
            ):
                return self._cache_index
            try:
                index = self._read_index()
            except StoreError:
                self._rebuild_index()
                index = self._read_index()
            self._cache_index = index
            self._cache_stamp = self._index_stamp()
            return index

    def _write_index(self, index: Dict) -> None:
        self._atomic_write(self.index_path, json.dumps(index, indent=2) + "\n")
        self._cache_index = index
        self._cache_stamp = self._index_stamp()
        self._pending_flush = False
