"""Content-addressed, versioned on-disk profile store.

Layout under the store root::

    objects/<id[:2]>/<id>.json    one canonical-JSON envelope per profile
    index.json                    metadata for every stored profile

Every object is an envelope ``{"store_format": 1, "profile": <payload>}``
serialized as *canonical JSON* (sorted keys, minimal separators); the
profile id is the SHA-256 of those bytes, so identical profiles dedupe to
one object and any corruption is detected on read by re-hashing. The
profile payload itself is schema-versioned
(:data:`repro.core.profile_data.SCHEMA_VERSION`) and
:meth:`~repro.core.profile_data.ProfileData.from_dict` fails loudly on a
version this build cannot read.

The index carries, per profile, the query key the aggregation engine
works in — ``(workload, profiler, config_hash, tree_hash)`` — plus a few
headline numbers (elapsed, peak, copy volume, sample counts) so listing
and trend queries never have to open the objects themselves. Merged
profiles record their constituent ids in ``parents``.

Writes are atomic (temp file + ``os.replace``) and serialized by an
in-process lock; the daemon funnels all persistence through one process,
so no cross-process locking is needed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.config import ScaleneConfig
from repro.core.profile_data import ProfileData
from repro.errors import StoreError

STORE_FORMAT = 1


def canonical_json(payload: Dict) -> str:
    """Deterministic JSON: sorted keys, minimal separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_hash(config: Union[ScaleneConfig, Dict, None]) -> str:
    """Stable hash of a profiling configuration (part of the index key)."""
    if config is None:
        return ""
    if isinstance(config, ScaleneConfig):
        config = dataclasses.asdict(config)
    digest = hashlib.sha256(canonical_json(config).encode("utf-8"))
    return digest.hexdigest()[:16]


def git_tree_hash(repo_root: Union[str, Path, None] = None) -> str:
    """``HEAD^{tree}`` of the repo at ``repo_root`` ("" when unavailable)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD^{tree}"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except OSError:
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


class ProfileStore:
    """A directory of content-addressed profiles plus a metadata index."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.index_path = self.root / "index.json"
        self._lock = threading.RLock()
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        if not self.index_path.exists():
            self._write_index({"format": STORE_FORMAT, "entries": []})

    # -- write ----------------------------------------------------------

    def put(
        self,
        profile: ProfileData,
        *,
        workload: str = "",
        profiler: str = "scalene",
        config: Union[ScaleneConfig, Dict, None] = None,
        tree_hash: str = "",
        parents: Sequence[str] = (),
        created_at: Optional[float] = None,
    ) -> str:
        """Persist ``profile``; returns its content id (idempotent)."""
        envelope = {"store_format": STORE_FORMAT, "profile": profile.to_dict()}
        blob = canonical_json(envelope)
        profile_id = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        entry = {
            "id": profile_id,
            "workload": workload,
            "profiler": profiler,
            "config_hash": config if isinstance(config, str) else config_hash(config),
            "tree_hash": tree_hash,
            "mode": profile.mode,
            "elapsed_s": profile.elapsed,
            "cpu_samples": profile.cpu_samples,
            "mem_samples": profile.mem_samples,
            "peak_mb": profile.peak_footprint_mb,
            "copy_mb": profile.total_copy_mb,
            "alloc_mb": profile.total_alloc_mb,
            "leaks": len(profile.leaks),
            "parents": list(parents),
            "created_at": created_at if created_at is not None else time.time(),
        }
        with self._lock:
            path = self._object_path(profile_id)
            if not path.exists():
                self._atomic_write(path, blob + "\n")
            index = self._read_index()
            if not any(e["id"] == profile_id for e in index["entries"]):
                index["entries"].append(entry)
                self._write_index(index)
        return profile_id

    # -- read -----------------------------------------------------------

    def get(self, profile_id: str) -> ProfileData:
        """Load a profile by id (or unique id prefix), verifying content."""
        return ProfileData.from_dict(self.get_raw(profile_id)["profile"])

    def get_raw(self, profile_id: str) -> Dict:
        """The stored envelope, content-verified, as a dict."""
        profile_id = self.resolve(profile_id)
        path = self._object_path(profile_id)
        try:
            blob = path.read_text(encoding="utf-8")
        except OSError:
            raise StoreError(f"profile object {profile_id} missing from store") from None
        digest = hashlib.sha256(blob.rstrip("\n").encode("utf-8")).hexdigest()
        if digest != profile_id:
            raise StoreError(
                f"profile object {profile_id[:12]}… is corrupt "
                f"(content hashes to {digest[:12]}…)"
            )
        envelope = json.loads(blob)
        if envelope.get("store_format") != STORE_FORMAT:
            raise StoreError(
                f"unsupported store format {envelope.get('store_format')!r}; "
                f"this build reads format {STORE_FORMAT}"
            )
        return envelope

    def resolve(self, profile_id: str) -> str:
        """Expand a unique id prefix to the full id."""
        if not profile_id:
            raise StoreError("empty profile id")
        matches = [e["id"] for e in self.entries() if e["id"].startswith(profile_id)]
        if not matches:
            raise StoreError(f"unknown profile id {profile_id!r}")
        if len(set(matches)) > 1:
            raise StoreError(f"ambiguous profile id prefix {profile_id!r}")
        return matches[0]

    def entry(self, profile_id: str) -> Dict:
        profile_id = self.resolve(profile_id)
        for e in self.entries():
            if e["id"] == profile_id:
                return e
        raise StoreError(f"profile {profile_id} has no index entry")

    def entries(self) -> List[Dict]:
        """All index entries, insertion-ordered."""
        with self._lock:
            return list(self._read_index()["entries"])

    def find(
        self,
        *,
        workload: Optional[str] = None,
        profiler: Optional[str] = None,
        config_hash: Optional[str] = None,
        tree_hash: Optional[str] = None,
    ) -> List[Dict]:
        """Index entries matching every given component of the key."""
        def match(entry: Dict) -> bool:
            return (
                (workload is None or entry["workload"] == workload)
                and (profiler is None or entry["profiler"] == profiler)
                and (config_hash is None or entry["config_hash"] == config_hash)
                and (tree_hash is None or entry["tree_hash"] == tree_hash)
            )

        return [e for e in self.entries() if match(e)]

    def __len__(self) -> int:
        return len(self.entries())

    def __contains__(self, profile_id: str) -> bool:
        try:
            self.resolve(profile_id)
        except StoreError:
            return False
        return True

    # -- internals ------------------------------------------------------

    def _object_path(self, profile_id: str) -> Path:
        return self.objects_dir / profile_id[:2] / f"{profile_id}.json"

    def _atomic_write(self, path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    def _read_index(self) -> Dict:
        try:
            index = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"cannot read store index {self.index_path}: {exc}")
        if index.get("format") != STORE_FORMAT:
            raise StoreError(
                f"unsupported index format {index.get('format')!r}; "
                f"this build reads format {STORE_FORMAT}"
            )
        return index

    def _write_index(self, index: Dict) -> None:
        self._atomic_write(self.index_path, json.dumps(index, indent=2) + "\n")
