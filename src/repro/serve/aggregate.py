"""Cross-run aggregation over the profile store.

Three operations, all working on stored profile ids:

* :func:`merge_stored` — merge N stored profiles (concurrent workers,
  repeated runs) into one statistically coherent profile and persist it
  with ``parents`` provenance;
* :func:`diff_stored` — before/after comparison of two stored profiles
  via :mod:`repro.analysis.diffing`;
* :func:`trend` / :func:`find_regressions` — the time-ordered history of
  one index key and the consecutive-run regressions in it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diffing import ProfileDiff, diff_profiles
from repro.core.profile_data import ProfileData, merge_profiles
from repro.errors import StoreError
from repro.serve.store import ProfileStore


def merge_stored(
    store: ProfileStore, ids: Sequence[str], *, workload: str = "", profiler: str = ""
) -> Tuple[str, ProfileData]:
    """Merge the stored profiles ``ids`` and persist the result.

    The merged profile's index entry inherits the constituents' workload/
    profiler/config/tree key when they agree (else the component is left
    empty — a cross-workload merge has no single key) and records the
    full ids of the constituents in ``parents``.
    """
    if len(ids) < 2:
        raise StoreError("merge needs at least two profile ids")
    full_ids = [store.resolve(profile_id) for profile_id in ids]
    entries = [store.entry(profile_id) for profile_id in full_ids]
    profiles = [store.get(profile_id) for profile_id in full_ids]
    merged = merge_profiles(profiles)

    def common(field: str, override: str = "") -> str:
        if override:
            return override
        values = {e[field] for e in entries}
        return values.pop() if len(values) == 1 else ""

    merged_id = store.put(
        merged,
        workload=common("workload", workload),
        profiler=common("profiler", profiler),
        config=common("config_hash"),
        tree_hash=common("tree_hash"),
        parents=full_ids,
    )
    return merged_id, merged


def diff_stored(store: ProfileStore, before_id: str, after_id: str) -> ProfileDiff:
    """Diff two stored profiles (``after − before``)."""
    return diff_profiles(store.get(before_id), store.get(after_id))


def trend(
    store: ProfileStore,
    *,
    workload: Optional[str] = None,
    profiler: Optional[str] = None,
    config_hash: Optional[str] = None,
    tree_hash: Optional[str] = None,
    include_merged: bool = False,
) -> List[Dict]:
    """Headline numbers over time for one slice of the index.

    Returns the matching index entries sorted by ``created_at``; merged
    profiles are excluded by default so a trend reflects individual runs,
    not aggregates of them.
    """
    entries = store.find(
        workload=workload,
        profiler=profiler,
        config_hash=config_hash,
        tree_hash=tree_hash,
    )
    if not include_merged:
        entries = [e for e in entries if not e["parents"]]
    return sorted(entries, key=lambda e: e["created_at"])


def find_regressions(
    points: Sequence[Dict],
    *,
    elapsed_factor: float = 1.2,
    peak_factor: float = 1.2,
) -> List[Dict]:
    """Consecutive-run regressions in a :func:`trend` result.

    Flags any run whose elapsed time or peak footprint exceeds its
    predecessor's by the given factor; each flag names both runs so the
    caller can `diff_stored` them for the per-line story.
    """
    regressions: List[Dict] = []
    for prev, curr in zip(points, points[1:]):
        reasons = []
        if prev["elapsed_s"] > 0 and curr["elapsed_s"] > elapsed_factor * prev["elapsed_s"]:
            reasons.append(
                f"elapsed {prev['elapsed_s']:.3f}s -> {curr['elapsed_s']:.3f}s"
            )
        if prev["peak_mb"] > 0 and curr["peak_mb"] > peak_factor * prev["peak_mb"]:
            reasons.append(f"peak {prev['peak_mb']:.1f}MB -> {curr['peak_mb']:.1f}MB")
        if reasons:
            regressions.append(
                {
                    "before": prev["id"],
                    "after": curr["id"],
                    "workload": curr["workload"],
                    "reasons": reasons,
                }
            )
    return regressions
