"""Write-ahead log for the gateway's job ledger.

The gateway answers ``POST /jobs`` with 202 *before* any shard has seen
the job, so the ledger is the only record that the job exists. PR 9 kept
that ledger in process memory — a gateway crash silently dropped every
accepted-but-unfinished job. :class:`WriteAheadLog` makes the 202
contract durable: each ledger transition is appended to an fsync'd,
checksummed log **before** the client hears about it, and a restarted
gateway replays the log to rebuild the ledger and re-dispatch the
backlog.

Format — one record per line::

    <crc32(json) hex, 8 chars> <compact-json>\n

The checksum covers the JSON body, so replay detects both bit rot and
**torn tails**: a crash (or the fault plane's torn-write injector) can
leave a half-written final record, which fails its checksum and is
dropped — every fully-written record before it survives. Replay stops at
the first invalid record; because framing is line-based, nothing after a
torn record can be attributed reliably, and the writer never leaves
garbage mid-log anyway (a failed append truncates back to the last good
offset before the next write).

Durability model — two tiers:

* **Process death** (``kill -9``): every append is written to the OS
  page cache before :meth:`append` returns (the file is opened
  unbuffered), so a SIGKILL'd gateway loses nothing. This is the
  contract the chaos suite kills processes against.
* **Power loss**: fsync is *group-committed* on a background flusher
  thread — one fsync per ``sync_interval_s`` while appends are dirty,
  pulled forward when ``sync_every`` appends accumulate. Keeping fsync
  off the append path matters more than its raw cost: an inline fsync
  holds the log lock while every other accepting thread (and, on a
  saturated core, the GIL convoy) piles up behind it. ``sync=True``
  still forces an inline fsync for callers that need it.

Compaction — :meth:`checkpoint` atomically writes a snapshot of the live
ledger (temp file + rename + fsync, the same recipe as the store) and
truncates the log; recovery is then ``load_checkpoint()`` plus
``replay()`` of whatever was appended since.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import StoreError

#: Hex digits of CRC-32 guarding each record. 32 bits of checksum is
#: plenty to tell a torn tail from a valid record, and CRC is cheap
#: enough to compute on the accept hot path (a cryptographic hash
#: measurably taxes a saturated gateway for no added integrity — the
#: adversary here is a half-written line, not a forger).
_CHECKSUM_HEX = 8

#: Group-commit defaults: sync at least every 64 appends or 50 ms.
DEFAULT_SYNC_EVERY = 64
DEFAULT_SYNC_INTERVAL_S = 0.05


def _frame(record: Dict) -> bytes:
    """One checksummed WAL line for ``record``."""
    # No sort_keys: replay parses whatever string was checksummed, so
    # key order is free — and sorting is pure cost on the accept path.
    body = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(body), body)


def _parse(line: bytes) -> Optional[Dict]:
    """Decode one WAL line; ``None`` if torn, truncated, or corrupt."""
    digest, sep, body = line.partition(b" ")
    if not sep or len(digest) != _CHECKSUM_HEX:
        return None
    try:
        if int(digest, 16) != zlib.crc32(body):
            return None
        record = json.loads(body)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


class WriteAheadLog:
    """Append-only checksummed log with checkpoint + truncate compaction.

    ``faults`` is an optional :class:`repro.faults.FaultInjector`; when
    its torn-write schedule fires, :meth:`append` writes only the first
    half of the framed record (modeling a crash mid-``write``) and
    raises :class:`StoreError` — exactly like the store's
    ``_atomic_write`` — so chaos tests exercise the same failure the
    checksums exist to contain.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        faults=None,
        sync_every: int = DEFAULT_SYNC_EVERY,
        sync_interval_s: float = DEFAULT_SYNC_INTERVAL_S,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.log_path = self.root / "wal.log"
        self.checkpoint_path = self.root / "checkpoint.json"
        self.faults = faults
        self.sync_every = max(1, sync_every)
        self.sync_interval_s = sync_interval_s
        self._lock = threading.Lock()
        # Unbuffered: bytes reach the OS page cache inside append(), so
        # the record survives SIGKILL without waiting for a flush.
        self._fh = open(self.log_path, "ab", buffering=0)
        self._good_offset = self._fh.tell()
        self._dirty_tail = False
        self._unsynced = 0
        self._last_sync = time.monotonic()
        self.stats: Dict[str, int] = {
            "appends": 0,
            "append_failures": 0,
            "syncs": 0,
            "compactions": 0,
            "replayed": 0,
            "torn_records": 0,
        }
        self._since_checkpoint = 0
        self._closing = False
        self._sync_wake = threading.Event()
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-wal-sync", daemon=True
        )
        self._flusher.start()

    # -- write path -----------------------------------------------------

    @property
    def records_since_checkpoint(self) -> int:
        with self._lock:
            return self._since_checkpoint

    def append(self, record: Dict, *, sync: Optional[bool] = None) -> int:
        """Durably append one record; returns the append count.

        The record is on the OS page cache when this returns; fsync is
        group-committed by the flusher thread unless ``sync=True``
        forces one inline. Raises :class:`StoreError` on a torn write
        (injected or real) — the log is repaired (truncated to the last
        good record) before the next append, so one torn record never
        corrupts its successors.
        """
        frame = _frame(record)
        with self._lock:
            if self._fh.closed:
                raise StoreError(f"wal is closed: {self.log_path}")
            if self._dirty_tail:
                self._fh.truncate(self._good_offset)
                self._fh.seek(self._good_offset)
                self._dirty_tail = False
            if self.faults is not None and self.faults.tear_write():
                try:
                    self._fh.write(frame[: max(1, len(frame) // 2)])
                finally:
                    self._dirty_tail = True
                    self.stats["append_failures"] += 1
                raise StoreError(f"torn write (injected fault): {self.log_path}")
            try:
                self._fh.write(frame)
            except OSError as exc:
                self._dirty_tail = True
                self.stats["append_failures"] += 1
                raise StoreError(f"wal append failed: {exc}") from None
            self._good_offset = self._fh.tell()
            self.stats["appends"] += 1
            self._since_checkpoint += 1
            self._unsynced += 1
            if sync:
                self._sync_locked(time.monotonic())
            elif self._unsynced >= self.sync_every:
                # Pull the group commit forward — but off this thread.
                self._sync_wake.set()
            return self.stats["appends"]

    def sync(self) -> None:
        """Force the group commit (fsync any unsynced appends)."""
        with self._lock:
            if self._unsynced and not self._fh.closed:
                self._sync_locked(time.monotonic())

    def _sync_locked(self, now: float) -> None:
        os.fsync(self._fh.fileno())
        self.stats["syncs"] += 1
        self._unsynced = 0
        self._last_sync = now

    def _flush_loop(self) -> None:
        """The group-commit flusher: one fsync per interval while dirty."""
        while True:
            self._sync_wake.wait(timeout=self.sync_interval_s)
            self._sync_wake.clear()
            with self._lock:
                if self._closing or self._fh.closed:
                    return
                if self._unsynced:
                    self._sync_locked(time.monotonic())

    # -- recovery -------------------------------------------------------

    def replay(self) -> List[Dict]:
        """Records appended since the last checkpoint, in append order.

        Tolerant of a torn tail: the first record that fails its
        checksum (half-written frame, bit rot, mid-record crash) and
        everything after it is dropped and counted in
        ``stats["torn_records"]``. Reading the same log twice yields the
        same list — replay never mutates the log.
        """
        try:
            blob = self.log_path.read_bytes()
        except OSError:
            return []
        records: List[Dict] = []
        torn = 0
        lines = blob.split(b"\n")
        for index, line in enumerate(lines):
            if not line:
                continue
            record = _parse(line)
            if record is None:
                # Line framing cannot resync past an invalid record:
                # a torn frame with no newline glues onto its successor.
                torn += len([l for l in lines[index:] if l])
                break
            records.append(record)
        with self._lock:
            self.stats["replayed"] += len(records)
            self.stats["torn_records"] += torn
        return records

    def load_checkpoint(self) -> Optional[Dict]:
        """The last checkpoint snapshot, or ``None``.

        A corrupt checkpoint is ignored rather than trusted — the
        checkpoint is derived state; the caller falls back to whatever
        the log still holds.
        """
        try:
            payload = json.loads(self.checkpoint_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- compaction -----------------------------------------------------

    def checkpoint(self, snapshot: Dict) -> None:
        """Atomically persist ``snapshot`` and truncate the log.

        Write ordering makes this crash-safe at every point: the
        snapshot lands via temp file + rename + fsync *before* the log
        is truncated, so a crash between the two merely replays records
        the snapshot already covers (replay application is idempotent).
        """
        blob = json.dumps(snapshot, sort_keys=True)
        tmp = self.checkpoint_path.with_suffix(".json.tmp")
        with self._lock:
            if self._fh.closed:
                raise StoreError(f"wal is closed: {self.log_path}")
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, blob.encode("utf-8"))
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, self.checkpoint_path)
            # The rename must be durable *before* the log records it
            # supersedes are discarded, or power loss can persist the
            # truncate but not the rename — old checkpoint + empty log,
            # every record since the last checkpoint gone. fsync on the
            # parent directory is what commits a rename; skipped only on
            # platforms that refuse directory fsync (the kill -9 tier is
            # unaffected either way).
            try:
                dir_fd = os.open(self.root, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            except OSError:
                pass
            self._fh.truncate(0)
            self._fh.seek(0)
            self._good_offset = 0
            self._dirty_tail = False
            self._unsynced = 0
            self._since_checkpoint = 0
            self.stats["compactions"] += 1

    # -- lifecycle ------------------------------------------------------

    def size_bytes(self) -> int:
        try:
            return self.log_path.stat().st_size
        except OSError:
            return 0

    def stats_dict(self) -> Dict[str, int]:
        with self._lock:
            stats = dict(self.stats)
        stats["log_bytes"] = self.size_bytes()
        return stats

    def close(self) -> None:
        """Clean close: fsync outstanding appends, release the handle."""
        self._stop_flusher()
        with self._lock:
            if not self._fh.closed:
                if self._unsynced:
                    self._sync_locked(time.monotonic())
                self._fh.close()

    def abandon(self) -> None:
        """Crash-stop close: release the handle with **no** fsync.

        Used by the chaos harness to model ``kill -9``: whatever
        ``append`` already handed to the OS survives, anything else is
        gone — exactly the state a real SIGKILL leaves behind.
        """
        self._stop_flusher()
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def _stop_flusher(self) -> None:
        with self._lock:
            self._closing = True
        self._sync_wake.set()
        if self._flusher is not threading.current_thread():
            self._flusher.join(timeout=5)
