"""Consistent-hash shard routing for the scale-out serve plane.

The shard plane partitions the profile store across N daemons. Routing
is keyed on ``(workload, config_hash)`` — the same slice the index and
``/trend`` query — so every profile of one workload/config lands on one
primary shard and aggregation never crosses shards for the common case.

:class:`HashRing` is a textbook consistent-hash ring with virtual
nodes: each shard contributes ``vnodes`` points on a 2^64 ring
(SHA-256-derived, stable across processes and Python hash seeds); a key
routes to the first point clockwise. Adding or removing one shard moves
only ~1/N of the key space — the property that makes shard counts a
deployment knob rather than a data migration.

:class:`ShardRouter` layers placement policy on the ring:

* ``primary(key)`` — the owning shard;
* ``replica(key)`` — the next *distinct* shard clockwise, which holds a
  full copy of the primary's profiles (the daemon replicates every
  accepted profile to its replica; content addressing makes replication
  idempotent);
* ``route(key)`` — primary unless it is marked down, else the replica
  with ``degraded=True``; reads served from a replica are correct
  (replication is synchronous with ingest) but may miss in-flight
  writes, which the degraded flag surfaces to callers.

Shard health is maintained by the caller (the front-end marks a shard
down on connection failure and probes it back up); the router itself
never does I/O, which keeps it trivially testable and shareable.

**Ring epochs** make membership a runtime knob instead of a boot-time
constant. :meth:`ShardRouter.begin_epoch` installs a new ring (one
shard added or removed) while keeping the previous ring alive; while
the two coexist (``migrating``), reads are served from the **union** of
old and new owners — old primary first, since only it is guaranteed
data-complete — and replication targets cover both rings, so fresh
profiles land on their future owners while a background migrator copies
history. :meth:`finalize_epoch` retires the old ring once every key's
new owners hold its data. Every epoch transition bumps a monotonic
``epoch`` counter that tags replication traffic, so a copy from a stale
ring view is detectable.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError

#: Virtual nodes per shard. 64 points per shard keeps the max/mean key
#: imbalance under ~15% for small N while the ring stays tiny.
DEFAULT_VNODES = 64


def _ring_hash(value: str) -> int:
    """Stable 64-bit ring position (independent of PYTHONHASHSEED)."""
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
    )


def shard_key(workload: str, config_hash: str = "") -> str:
    """The routing key: profiles of one workload/config colocate."""
    return f"{workload}\x00{config_hash}"


class HashRing:
    """Consistent-hash ring over named shards with virtual nodes."""

    def __init__(self, shards: Sequence[str], *, vnodes: int = DEFAULT_VNODES) -> None:
        if not shards:
            raise ServeError("hash ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ServeError(f"duplicate shard names: {sorted(shards)}")
        self.vnodes = vnodes
        self.shards = list(shards)
        points: List[Tuple[int, str]] = []
        for shard in shards:
            for replica in range(vnodes):
                points.append((_ring_hash(f"{shard}#{replica}"), shard))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    def owners(self, key: str) -> List[str]:
        """Distinct shards clockwise from ``key``'s ring position.

        ``owners(key)[0]`` is the primary, ``[1]`` the replica, and so
        on; the list covers every shard exactly once.
        """
        start = bisect.bisect_right(self._hashes, _ring_hash(key))
        seen: List[str] = []
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == len(self.shards):
                    break
        return seen

    def primary(self, key: str) -> str:
        return self.owners(key)[0]

    def spread(self, keys: Sequence[str]) -> Dict[str, int]:
        """Primary-ownership histogram (used by tests and /shards)."""
        counts = {shard: 0 for shard in self.shards}
        for key in keys:
            counts[self.primary(key)] += 1
        return counts


class ShardRouter:
    """Placement + failover policy over a :class:`HashRing`.

    Thread-safe: the front-end's event loop, its dispatcher, and its
    health poller all consult one router instance.
    """

    def __init__(
        self,
        shard_urls: Dict[str, str],
        *,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if not shard_urls:
            raise ServeError("router needs at least one shard url")
        self.ring = HashRing(sorted(shard_urls), vnodes=vnodes)
        self.urls = dict(shard_urls)
        self._down: set = set()
        self._lock = threading.Lock()
        #: Monotonic ring version; bumped by every begin/abort_epoch.
        self.epoch = 1
        #: The outgoing ring while a migration is in flight, else None.
        self.prev_ring: Optional[HashRing] = None

    # -- health ---------------------------------------------------------

    def mark_down(self, shard: str) -> None:
        if shard not in self.urls:
            raise ServeError(f"unknown shard {shard!r}")
        with self._lock:
            self._down.add(shard)

    def mark_up(self, shard: str) -> None:
        with self._lock:
            self._down.discard(shard)

    def is_down(self, shard: str) -> bool:
        with self._lock:
            return shard in self._down

    def down_shards(self) -> List[str]:
        with self._lock:
            return sorted(self._down)

    def live_shards(self) -> List[str]:
        with self._lock:
            return [s for s in self.ring.shards if s not in self._down]

    # -- ring epochs (live resharding) ----------------------------------

    @property
    def migrating(self) -> bool:
        with self._lock:
            return self.prev_ring is not None

    def begin_epoch(self, shards: "Sequence[str]") -> int:
        """Install a new ring membership; returns the new epoch.

        The old ring stays live (``prev_ring``) until
        :meth:`finalize_epoch`: reads fall through the union of old and
        new owners, and :meth:`replication_targets` spans both rings so
        writes accepted mid-migration reach their future owners. Every
        member must already have a URL registered (add the daemon to
        ``urls`` before it joins the ring).
        """
        members = sorted(shards)
        missing = [s for s in members if s not in self.urls]
        if missing:
            raise ServeError(f"shards without a registered url: {missing}")
        with self._lock:
            if self.prev_ring is not None:
                raise ServeError(
                    f"ring migration already in progress (epoch {self.epoch})"
                )
            if members == self.ring.shards:
                raise ServeError(f"epoch would not change membership: {members}")
            self.prev_ring = self.ring
            self.ring = HashRing(members, vnodes=self.ring.vnodes)
            self.epoch += 1
            return self.epoch

    def finalize_epoch(self) -> None:
        """Retire the outgoing ring: the new epoch now owns every key."""
        with self._lock:
            if self.prev_ring is None:
                raise ServeError("no ring migration in progress")
            self.prev_ring = None

    def abort_epoch(self) -> None:
        """Roll membership back to the outgoing ring (migration failed).

        Bumps the epoch again — an abort is a membership change too, and
        a monotonic counter is what lets epoch-tagged replication spot
        stale ring views.
        """
        with self._lock:
            if self.prev_ring is None:
                raise ServeError("no ring migration in progress")
            self.ring = self.prev_ring
            self.prev_ring = None
            self.epoch += 1

    def forget(self, shard: str) -> None:
        """Drop a decommissioned shard's URL and health state.

        Only legal once the shard is out of every live ring (after
        ``finalize_epoch`` of a removal).
        """
        with self._lock:
            rings = [self.ring] + ([self.prev_ring] if self.prev_ring else [])
            if any(shard in ring.shards for ring in rings):
                raise ServeError(f"shard {shard!r} is still a ring member")
            self.urls.pop(shard, None)
            self._down.discard(shard)

    # -- placement ------------------------------------------------------

    def primary(self, workload: str, config_hash: str = "") -> str:
        return self.ring.primary(shard_key(workload, config_hash))

    def replica(self, workload: str, config_hash: str = "") -> Optional[str]:
        owners = self.ring.owners(shard_key(workload, config_hash))
        return owners[1] if len(owners) > 1 else None

    def replica_of(self, shard: str) -> Optional[str]:
        """The shard's ring successor (display hint for ``/shards``).

        Replication is **per key**, not per shard: a profile stored on
        its primary replicates to ``owners(key)[1]``, which varies with
        the key's ring position across the primary's vnodes. This
        method only names the successor from the shard's first vnode —
        a readable summary, not the placement rule.
        """
        if len(self.ring.shards) < 2:
            return None
        owners = self.ring.owners(f"{shard}#0")
        # owners[0] is `shard` itself (its vnode hashes there).
        for candidate in owners:
            if candidate != shard:
                return candidate
        return None

    def read_owners(self, workload: str, config_hash: str = "") -> List[str]:
        """Shards that may hold the key's data, in preference order.

        Steady state this is ``ring.owners``. During a migration it is
        the union of the *old* ring's owners (first — only they are
        guaranteed data-complete) and the new ring's owners (which the
        migrator and dual replication are filling), so a read served
        from any listed shard is served from an old-or-new owner.
        """
        key = shard_key(workload, config_hash)
        with self._lock:
            prev, ring = self.prev_ring, self.ring
        if prev is None:
            return ring.owners(key)
        owners = list(prev.owners(key))
        for shard in ring.owners(key):
            if shard not in owners:
                owners.append(shard)
        return owners

    def replication_targets(
        self, workload: str, config_hash: str = "", *, source: str = ""
    ) -> List[str]:
        """Peers that must hold a copy of ``source``'s fresh profile.

        The invariant: a key's primary **and** replica hold every
        profile of that key. Steady state with ``source`` as primary
        that is just ``[replica]``; during a migration the first two
        owners of *both* rings are covered (dual-write), and a source
        that is no longer an owner at all (it was demoted or is being
        decommissioned) pushes to the full new owner pair.
        """
        key = shard_key(workload, config_hash)
        with self._lock:
            prev, ring = self.prev_ring, self.ring
        owners = ring.owners(key)[:2]
        if prev is not None:
            old = prev.owners(key)[:2]
            owners = old + [s for s in owners if s not in old]
        return [s for s in owners if s != source]

    def route(self, workload: str, config_hash: str = "") -> Tuple[str, bool]:
        """``(shard, degraded)`` for a key: primary, else live fallback.

        Fallbacks are the key's replica, then — during a ring migration
        — the incoming epoch's owners. Raises :class:`ServeError` when
        every owner of the key is down.
        """
        owners = self.read_owners(workload, config_hash)
        with self._lock:
            for index, shard in enumerate(owners):
                if shard not in self._down:
                    return shard, index > 0
        raise ServeError(
            f"no live shard for workload={workload!r} "
            f"(owners {owners}, all down)"
        )

    def url(self, shard: str) -> str:
        try:
            return self.urls[shard]
        except KeyError:
            raise ServeError(f"unknown shard {shard!r}") from None

    def describe(self) -> Dict:
        with self._lock:
            down = sorted(self._down)
            prev = self.prev_ring
            epoch = self.epoch
        leaving = (
            [s for s in prev.shards if s not in self.ring.shards] if prev else []
        )
        return {
            "shards": [
                {
                    "name": shard,
                    "url": self.urls[shard],
                    "down": shard in down,
                    "replica": self.replica_of(shard),
                }
                for shard in self.ring.shards
            ],
            "vnodes": self.ring.vnodes,
            "epoch": epoch,
            "migrating": prev is not None,
            "leaving": leaving,
        }
