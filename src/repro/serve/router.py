"""Consistent-hash shard routing for the scale-out serve plane.

The shard plane partitions the profile store across N daemons. Routing
is keyed on ``(workload, config_hash)`` — the same slice the index and
``/trend`` query — so every profile of one workload/config lands on one
primary shard and aggregation never crosses shards for the common case.

:class:`HashRing` is a textbook consistent-hash ring with virtual
nodes: each shard contributes ``vnodes`` points on a 2^64 ring
(SHA-256-derived, stable across processes and Python hash seeds); a key
routes to the first point clockwise. Adding or removing one shard moves
only ~1/N of the key space — the property that makes shard counts a
deployment knob rather than a data migration.

:class:`ShardRouter` layers placement policy on the ring:

* ``primary(key)`` — the owning shard;
* ``replica(key)`` — the next *distinct* shard clockwise, which holds a
  full copy of the primary's profiles (the daemon replicates every
  accepted profile to its replica; content addressing makes replication
  idempotent);
* ``route(key)`` — primary unless it is marked down, else the replica
  with ``degraded=True``; reads served from a replica are correct
  (replication is synchronous with ingest) but may miss in-flight
  writes, which the degraded flag surfaces to callers.

Shard health is maintained by the caller (the front-end marks a shard
down on connection failure and probes it back up); the router itself
never does I/O, which keeps it trivially testable and shareable.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError

#: Virtual nodes per shard. 64 points per shard keeps the max/mean key
#: imbalance under ~15% for small N while the ring stays tiny.
DEFAULT_VNODES = 64


def _ring_hash(value: str) -> int:
    """Stable 64-bit ring position (independent of PYTHONHASHSEED)."""
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
    )


def shard_key(workload: str, config_hash: str = "") -> str:
    """The routing key: profiles of one workload/config colocate."""
    return f"{workload}\x00{config_hash}"


class HashRing:
    """Consistent-hash ring over named shards with virtual nodes."""

    def __init__(self, shards: Sequence[str], *, vnodes: int = DEFAULT_VNODES) -> None:
        if not shards:
            raise ServeError("hash ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ServeError(f"duplicate shard names: {sorted(shards)}")
        self.vnodes = vnodes
        self.shards = list(shards)
        points: List[Tuple[int, str]] = []
        for shard in shards:
            for replica in range(vnodes):
                points.append((_ring_hash(f"{shard}#{replica}"), shard))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    def owners(self, key: str) -> List[str]:
        """Distinct shards clockwise from ``key``'s ring position.

        ``owners(key)[0]`` is the primary, ``[1]`` the replica, and so
        on; the list covers every shard exactly once.
        """
        start = bisect.bisect_right(self._hashes, _ring_hash(key))
        seen: List[str] = []
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == len(self.shards):
                    break
        return seen

    def primary(self, key: str) -> str:
        return self.owners(key)[0]

    def spread(self, keys: Sequence[str]) -> Dict[str, int]:
        """Primary-ownership histogram (used by tests and /shards)."""
        counts = {shard: 0 for shard in self.shards}
        for key in keys:
            counts[self.primary(key)] += 1
        return counts


class ShardRouter:
    """Placement + failover policy over a :class:`HashRing`.

    Thread-safe: the front-end's event loop, its dispatcher, and its
    health poller all consult one router instance.
    """

    def __init__(
        self,
        shard_urls: Dict[str, str],
        *,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if not shard_urls:
            raise ServeError("router needs at least one shard url")
        self.ring = HashRing(sorted(shard_urls), vnodes=vnodes)
        self.urls = dict(shard_urls)
        self._down: set = set()
        self._lock = threading.Lock()

    # -- health ---------------------------------------------------------

    def mark_down(self, shard: str) -> None:
        if shard not in self.urls:
            raise ServeError(f"unknown shard {shard!r}")
        with self._lock:
            self._down.add(shard)

    def mark_up(self, shard: str) -> None:
        with self._lock:
            self._down.discard(shard)

    def is_down(self, shard: str) -> bool:
        with self._lock:
            return shard in self._down

    def down_shards(self) -> List[str]:
        with self._lock:
            return sorted(self._down)

    def live_shards(self) -> List[str]:
        with self._lock:
            return [s for s in self.ring.shards if s not in self._down]

    # -- placement ------------------------------------------------------

    def primary(self, workload: str, config_hash: str = "") -> str:
        return self.ring.primary(shard_key(workload, config_hash))

    def replica(self, workload: str, config_hash: str = "") -> Optional[str]:
        owners = self.ring.owners(shard_key(workload, config_hash))
        return owners[1] if len(owners) > 1 else None

    def replica_of(self, shard: str) -> Optional[str]:
        """The shard's ring successor (display hint for ``/shards``).

        Replication is **per key**, not per shard: a profile stored on
        its primary replicates to ``owners(key)[1]``, which varies with
        the key's ring position across the primary's vnodes. This
        method only names the successor from the shard's first vnode —
        a readable summary, not the placement rule.
        """
        if len(self.ring.shards) < 2:
            return None
        owners = self.ring.owners(f"{shard}#0")
        # owners[0] is `shard` itself (its vnode hashes there).
        for candidate in owners:
            if candidate != shard:
                return candidate
        return None

    def route(self, workload: str, config_hash: str = "") -> Tuple[str, bool]:
        """``(shard, degraded)`` for a key: primary, else live replica.

        Raises :class:`ServeError` when every owner of the key is down.
        """
        owners = self.ring.owners(shard_key(workload, config_hash))
        with self._lock:
            for index, shard in enumerate(owners):
                if shard not in self._down:
                    return shard, index > 0
        raise ServeError(
            f"no live shard for workload={workload!r} "
            f"(owners {owners}, all down)"
        )

    def url(self, shard: str) -> str:
        try:
            return self.urls[shard]
        except KeyError:
            raise ServeError(f"unknown shard {shard!r}") from None

    def describe(self) -> Dict:
        with self._lock:
            down = sorted(self._down)
        return {
            "shards": [
                {
                    "name": shard,
                    "url": self.urls[shard],
                    "down": shard in down,
                    "replica": self.replica_of(shard),
                }
                for shard in self.ring.shards
            ],
            "vnodes": self.ring.vnodes,
        }
