"""Profiling jobs: the unit of work the daemon's worker pool executes.

A job is ``workload + profiler + config``. :func:`execute_job` is the
worker-side entry point — a module-level function taking and returning
only picklable primitives, so it crosses the multiprocessing boundary:
the payload dict goes in, the finished profile's JSON text comes back,
and the daemon (the store's single writer) persists it.

Baseline profilers produce :class:`~repro.baselines.base.BaselineReport`
rather than :class:`~repro.core.profile_data.ProfileData`;
:func:`profile_from_baseline` adapts them so every job's result lands in
the same store and renders through the same backends (what the baseline
measured fills the columns it has; the rest stay zero).
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import ScaleneConfig
from repro.core.profile_data import FunctionReport, LineReport, ProfileData
from repro.errors import ServeError

JOB_STATUSES = ("queued", "running", "done", "error")

_job_counter = itertools.count(1)
_job_counter_lock = threading.Lock()


@dataclass
class Job:
    """One profiling job and its lifecycle state."""

    id: str
    workload: str
    profiler: str = "scalene"
    mode: str = "full"
    scale: float = 1.0
    config: Optional[Dict] = None
    #: Optional :meth:`repro.faults.FaultSpec.to_dict` payload — the fault
    #: schedule the worker replays for this job (chaos testing).
    faults: Optional[Dict] = None
    #: Optional per-job wall-clock budget; the daemon's default applies
    #: when None.
    timeout_s: Optional[float] = None
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    profile_id: Optional[str] = None
    error: Optional[str] = None
    #: Times this job was handed to a worker (first run plus retries).
    attempts: int = 0
    #: Times this job was requeued because a pool-break incident (worker
    #: crash or hung-worker recycle) took its worker down mid-flight.
    crash_requeues: int = 0

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    def payload(self) -> Dict:
        """The picklable worker input."""
        return {
            "workload": self.workload,
            "profiler": self.profiler,
            "mode": self.mode,
            "scale": self.scale,
            "config": self.config,
            "faults": self.faults,
            "attempt": self.attempts,
        }


def new_job(payload: Dict) -> Job:
    """Validate a submission payload and build a queued :class:`Job`.

    Validation happens here, in the daemon process, so a bad submission
    fails the HTTP request synchronously instead of poisoning a worker.
    """
    from repro.baselines import profiler_names
    from repro.core.config import _MODES
    from repro.workloads import get_workload

    if not isinstance(payload, dict):
        raise ServeError("job payload must be a JSON object")
    unknown = set(payload) - {
        "workload", "profiler", "mode", "scale", "config", "faults", "timeout_s",
    }
    if unknown:
        raise ServeError(f"unknown job fields: {sorted(unknown)}")
    workload = payload.get("workload")
    if not workload:
        raise ServeError("job payload needs a 'workload'")
    get_workload(workload)  # raises WorkloadError on unknown names
    profiler = payload.get("profiler", "scalene")
    if profiler != "scalene" and profiler not in profiler_names():
        raise ServeError(
            f"unknown profiler {profiler!r}; "
            f"use 'scalene' or one of {sorted(profiler_names())}"
        )
    mode = payload.get("mode", "full")
    if profiler == "scalene" and mode not in _MODES:
        raise ServeError(f"unknown Scalene mode {mode!r}; use one of {_MODES}")
    scale = payload.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or scale <= 0:
        raise ServeError(f"scale must be a positive number, got {scale!r}")
    config = payload.get("config")
    if config is not None:
        if not isinstance(config, dict):
            raise ServeError("config must be a JSON object of ScaleneConfig overrides")
        valid = {f.name for f in dataclasses.fields(ScaleneConfig)}
        bad = set(config) - valid
        if bad:
            raise ServeError(f"unknown config overrides: {sorted(bad)}")
    faults = payload.get("faults")
    if faults is not None:
        if not isinstance(faults, dict):
            raise ServeError("faults must be a JSON object (a FaultSpec payload)")
        from repro.faults import FaultSpec

        FaultSpec.from_dict(faults)  # raises FaultError on a bad schedule
    timeout_s = payload.get("timeout_s")
    if timeout_s is not None and (
        not isinstance(timeout_s, (int, float)) or timeout_s <= 0
    ):
        raise ServeError(f"timeout_s must be a positive number, got {timeout_s!r}")
    with _job_counter_lock:
        sequence = next(_job_counter)
    return Job(
        id=f"job-{sequence:06d}",
        workload=workload,
        profiler=profiler,
        mode=mode,
        scale=float(scale),
        config=config,
        faults=faults,
        timeout_s=float(timeout_s) if timeout_s is not None else None,
        submitted_at=time.time(),
    )


def execute_job(payload: Dict) -> str:
    """Run one profiling job; returns the profile as JSON text.

    Runs inside a worker process; everything in and out is picklable.

    When the payload carries a ``faults`` schedule, the worker replays it
    deterministically: a scheduled crash raises
    :class:`~repro.faults.InjectedCrash` (clean failure) or hard-exits
    the process (which breaks the whole pool — the daemon's
    respawn-and-requeue path), a scheduled hang sleeps past the job's
    deadline (the daemon's timeout path), and the remaining fault
    families are threaded through the simulated runtime via
    :meth:`~repro.runtime.process.SimProcess.install_faults`, producing a
    ``degraded`` profile with accurate fault counters.
    """
    import os
    import time as real_time

    from repro.baselines import make_profiler
    from repro.core import Scalene
    from repro.workloads import get_workload

    injector = None
    faults_payload = payload.get("faults")
    if faults_payload:
        from repro.faults import FaultInjector, FaultSpec, InjectedCrash

        injector = FaultInjector(FaultSpec.from_dict(faults_payload))
        attempt = payload.get("attempt", 1)
        crash = injector.worker_crash(attempt)
        if crash == "exception":
            raise InjectedCrash(
                f"injected worker crash (attempt {attempt} of "
                f"{injector.spec.crash_attempts} scheduled crashes)"
            )
        if crash == "exit":
            # A segfault analog: no exception crosses the pipe, the pool
            # breaks, and every in-flight future gets BrokenProcessPool.
            os._exit(17)
        hang_s = injector.worker_hang(attempt)
        if hang_s > 0.0:
            real_time.sleep(hang_s)  # hold the worker past its deadline

    workload = get_workload(payload["workload"])
    process = workload.make_process(payload.get("scale", 1.0))
    if injector is not None:
        process.install_faults(injector)
    profiler_name = payload.get("profiler", "scalene")
    if profiler_name == "scalene":
        overrides = payload.get("config") or {}
        config = ScaleneConfig(mode=payload.get("mode", "full"), **overrides)
        scalene = Scalene(process, config=config)
        scalene.start()
        process.run()
        profile = scalene.stop()
    else:
        profiler = make_profiler(profiler_name, process)
        profiler.start()
        process.run()
        report = profiler.stop()
        profile = profile_from_baseline(report, elapsed=process.clock.wall)
        if injector is not None:
            from repro.faults import apply_fault_counters

            apply_fault_counters(profile, injector)
    return profile.to_json()


def profile_from_baseline(report, elapsed: float) -> ProfileData:
    """Adapt a :class:`BaselineReport` into the common profile model.

    Baselines measure a subset of Scalene's dimensions: their attributed
    time goes in the Python column (none of them split Python from
    native), per-line memory fills the peak column, and everything they
    cannot see stays zero. The mode records which profiler produced it.
    """
    total_time = sum(report.line_times.values()) or sum(
        report.function_times.values()
    )
    pct = (lambda t: 100.0 * t / total_time if total_time > 0 else 0.0)
    lines = [
        LineReport(
            filename=filename,
            lineno=lineno,
            function="",
            source="",
            cpu_python_percent=pct(seconds),
            cpu_native_percent=0.0,
            cpu_system_percent=0.0,
            mem_avg_mb=0.0,
            mem_peak_mb=report.line_memory_mb.get((filename, lineno), 0.0),
            mem_python_percent=0.0,
            mem_activity_percent=0.0,
            timeline=[],
            copy_mb_s=0.0,
            gpu_percent=0.0,
            gpu_mem_peak_mb=0.0,
        )
        for (filename, lineno), seconds in sorted(report.line_times.items())
    ]
    functions = [
        FunctionReport(
            filename=filename,
            function=function,
            cpu_python_percent=pct(seconds),
            cpu_native_percent=0.0,
            cpu_system_percent=0.0,
            malloc_mb=0.0,
            copy_mb=0.0,
            gpu_percent=0.0,
        )
        for (filename, function), seconds in sorted(report.function_times.items())
    ]
    functions.sort(key=lambda r: r.cpu_total_percent, reverse=True)
    return ProfileData(
        mode=f"baseline:{report.profiler}",
        elapsed=elapsed,
        cpu_python_time=total_time,
        cpu_native_time=0.0,
        cpu_system_time=0.0,
        cpu_samples=report.total_samples,
        mem_samples=len(report.line_memory_mb),
        peak_footprint_mb=report.peak_memory_mb or 0.0,
        total_copy_mb=0.0,
        gpu_mean_utilization=0.0,
        gpu_mem_peak_mb=0.0,
        lines=lines,
        functions=functions,
        sample_log_bytes=report.log_bytes,
    )
