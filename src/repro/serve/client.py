"""Stdlib HTTP client for the profiling daemon.

Backs ``python -m repro submit`` / ``repro profiles`` and the test
suite; every method maps to one daemon endpoint and returns parsed JSON
(or a :class:`~repro.core.profile_data.ProfileData` where noted).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

from repro.core.profile_data import ProfileData
from repro.errors import ServeError

#: Job states that will never change again.
TERMINAL_STATUSES = ("done", "error")


class ServeClient:
    """Talks to one daemon at ``url`` (e.g. ``http://127.0.0.1:8000``)."""

    def __init__(self, url: str, *, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def _request(self, path: str, body: Optional[Dict] = None) -> Dict:
        request = urllib.request.Request(self.url + path)
        if body is not None:
            request.data = json.dumps(body).encode("utf-8")
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
            except ValueError:
                message = str(exc)
            raise ServeError(f"{path}: {message}") from None
        except urllib.error.URLError as exc:
            raise ServeError(f"cannot reach daemon at {self.url}: {exc.reason}") from None

    # -- endpoints ------------------------------------------------------

    def health(self) -> Dict:
        return self._request("/health")

    def submit(
        self,
        workload: str,
        *,
        profiler: str = "scalene",
        mode: str = "full",
        scale: float = 1.0,
        config: Optional[Dict] = None,
        faults: Optional[Dict] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict:
        """Submit a job; returns the job dict (status ``queued``).

        ``faults`` is an optional :meth:`repro.faults.FaultSpec.to_dict`
        payload (the job's fault schedule, for chaos testing);
        ``timeout_s`` overrides the daemon's per-job wall-clock budget.
        """
        payload = {
            "workload": workload,
            "profiler": profiler,
            "mode": mode,
            "scale": scale,
        }
        if config:
            payload["config"] = config
        if faults:
            payload["faults"] = faults
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return self._request("/jobs", body=payload)["job"]

    def job(self, job_id: str) -> Dict:
        return self._request(f"/jobs/{job_id}")["job"]

    def jobs(self) -> List[Dict]:
        return self._request("/jobs")["jobs"]

    def wait(self, job_id: str, *, timeout: float = 120.0, poll: float = 0.1) -> Dict:
        """Poll until the job finishes; raises on job error or timeout."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in TERMINAL_STATUSES:
                if job["status"] == "error":
                    raise ServeError(f"job {job_id} failed: {job['error']}")
                return job
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {job['status']} after {timeout:.0f}s"
                )
            time.sleep(poll)

    def profiles(self, **filters: str) -> List[Dict]:
        query = "&".join(f"{k}={v}" for k, v in filters.items() if v)
        return self._request(f"/profiles{'?' + query if query else ''}")["profiles"]

    def profile(self, profile_id: str) -> Dict:
        """The stored profile envelope: ``{"id", "meta", "profile"}``."""
        return self._request(f"/profiles/{profile_id}")

    def profile_data(self, profile_id: str) -> ProfileData:
        """The stored profile as a :class:`ProfileData`."""
        return ProfileData.from_dict(self.profile(profile_id)["profile"])

    def merge(self, ids: Sequence[str]) -> Dict:
        """Merge stored profiles; returns ``{"id", "profile"}``."""
        return self._request("/merge", body={"ids": list(ids)})

    def diff(self, before_id: str, after_id: str) -> Dict:
        return self._request(f"/diff?a={before_id}&b={after_id}")["diff"]

    def crossflow(self, profile_id: str) -> Dict:
        """Cross-flow analysis of a stored profile: boundary lints of its
        workload joined with the stored crossing counters."""
        return self._request(f"/crossflow?id={profile_id}")

    def contention(self, profile_id: str) -> Dict:
        """Lock-contention view of a stored profile: blocked-time totals,
        the per-line table, and the who-blocks-whom edge list."""
        return self._request(f"/contention?id={profile_id}")

    def trend(self, **filters: str) -> Dict:
        query = "&".join(f"{k}={v}" for k, v in filters.items() if v)
        return self._request(f"/trend{'?' + query if query else ''}")
