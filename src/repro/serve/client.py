"""Stdlib HTTP client for the profiling daemon.

Backs ``python -m repro submit`` / ``repro profiles`` and the test
suite; every method maps to one daemon endpoint and returns parsed JSON
(or a :class:`~repro.core.profile_data.ProfileData` where noted).

Transport resilience: every call carries separate **connect** and
**read** timeouts (a dead host fails in ``connect_timeout_s``, a wedged
daemon in ``timeout``), and *idempotent* requests retry with bounded
seeded exponential backoff on transport errors. GETs are always
idempotent; ``POST /merge`` and ``POST /replicate`` are too (content
addressing — re-sending stores the same id). ``POST /jobs`` is **not**
retried by default: a submission whose response was lost may have been
accepted, and a retry would double-run the job. Passing
``idempotent=True`` to :meth:`ServeClient.submit` changes the contract:
the payload carries a client-generated ``submit_key`` that the gateway
(and single daemons) dedupe on, which makes resubmission safe — so the
client reconnects with jittered backoff through a gateway restart
instead of surfacing a hard error.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
import uuid
from typing import Dict, List, Optional, Sequence

from repro.core.profile_data import ProfileData
from repro.errors import ServeError
from repro.serve.healing import RetryPolicy

#: Job states that will never change again.
TERMINAL_STATUSES = ("done", "error")

#: POST paths that are safe to retry (content-addressed writes).
_IDEMPOTENT_POSTS = ("/merge", "/replicate")


class ServeClient:
    """Talks to one daemon at ``url`` (e.g. ``http://127.0.0.1:8000``)."""

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 30.0,
        connect_timeout_s: Optional[float] = 5.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.connect_timeout_s = (
            connect_timeout_s if connect_timeout_s is not None else timeout
        )
        #: Backoff schedule for idempotent requests. ``max_attempts=1``
        #: disables retries entirely.
        self.retry = retry if retry is not None else RetryPolicy(
            3, base_delay_s=0.05, max_delay_s=1.0
        )

    # -- transport ------------------------------------------------------

    def _open(self, request: "urllib.request.Request") -> Dict:
        """One HTTP round trip with split connect/read timeouts.

        ``urllib`` exposes a single timeout covering both phases; the
        connect bound is enforced by probing the socket first, so a dead
        or unroutable host fails fast instead of consuming the full read
        budget.
        """
        if self.connect_timeout_s < self.timeout:
            host = request.host.rsplit(":", 1)
            port = int(host[1]) if len(host) == 2 else 80
            try:
                probe = socket.create_connection(
                    (host[0], port), timeout=self.connect_timeout_s
                )
                probe.close()
            except OSError as exc:
                raise urllib.error.URLError(exc) from None
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return json.loads(response.read().decode("utf-8"))

    def _request(
        self,
        path: str,
        body: Optional[Dict] = None,
        *,
        idempotent: Optional[bool] = None,
    ) -> Dict:
        request = urllib.request.Request(self.url + path)
        if body is not None:
            request.data = json.dumps(body).encode("utf-8")
            request.add_header("Content-Type", "application/json")
        if idempotent is None:
            idempotent = body is None or any(
                path == p or path.startswith(p + "?") for p in _IDEMPOTENT_POSTS
            )
        attempts = 0
        while True:
            attempts += 1
            try:
                return self._open(request)
            except urllib.error.HTTPError as exc:
                # The daemon answered; never retry a definitive response.
                try:
                    message = json.loads(exc.read().decode("utf-8")).get(
                        "error", str(exc)
                    )
                except ValueError:
                    message = str(exc)
                raise ServeError(f"{path}: {message}") from None
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                reason = getattr(exc, "reason", exc)
                if idempotent and self.retry.should_retry(attempts):
                    time.sleep(self.retry.delay(attempts))
                    continue
                raise ServeError(
                    f"cannot reach daemon at {self.url} "
                    f"after {attempts} attempt(s): {reason}"
                ) from None

    # -- endpoints ------------------------------------------------------

    def health(self) -> Dict:
        return self._request("/health")

    def submit(
        self,
        workload: str,
        *,
        profiler: str = "scalene",
        mode: str = "full",
        scale: float = 1.0,
        config: Optional[Dict] = None,
        faults: Optional[Dict] = None,
        timeout_s: Optional[float] = None,
        submit_key: Optional[str] = None,
        idempotent: bool = False,
    ) -> Dict:
        """Submit a job; returns the job dict (status ``queued``).

        ``faults`` is an optional :meth:`repro.faults.FaultSpec.to_dict`
        payload (the job's fault schedule, for chaos testing);
        ``timeout_s`` overrides the daemon's per-job wall-clock budget.

        ``idempotent=True`` attaches a ``submit_key`` (auto-generated
        unless given) and retries the submission through transport
        errors with the client's jittered backoff: a gateway restarting
        mid-call answers the resubmission from its recovered ledger
        (same gateway id, no double-run) instead of dropping it.
        """
        payload = {
            "workload": workload,
            "profiler": profiler,
            "mode": mode,
            "scale": scale,
        }
        if config:
            payload["config"] = config
        if faults:
            payload["faults"] = faults
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        if idempotent and submit_key is None:
            submit_key = f"sk-{uuid.uuid4().hex}"
        if submit_key is not None:
            payload["submit_key"] = submit_key
            idempotent = True
        return self._request("/jobs", body=payload, idempotent=idempotent or None)[
            "job"
        ]

    def job(self, job_id: str) -> Dict:
        return self._request(f"/jobs/{job_id}")["job"]

    def jobs(self) -> List[Dict]:
        return self._request("/jobs")["jobs"]

    def wait(self, job_id: str, *, timeout: float = 120.0, poll: float = 0.1) -> Dict:
        """Poll until the job finishes; raises on job error or timeout."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in TERMINAL_STATUSES:
                if job["status"] == "error":
                    raise ServeError(f"job {job_id} failed: {job['error']}")
                return job
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {job['status']} after {timeout:.0f}s"
                )
            time.sleep(poll)

    def profiles(self, **filters) -> List[Dict]:
        """Matching index entries (paged server-side; ``limit=0`` = all)."""
        return self.profiles_page(**filters)["profiles"]

    def profiles_page(self, **filters) -> Dict:
        """The full paged listing: ``{"profiles", "total", "limit", "offset"}``."""
        query = "&".join(f"{k}={v}" for k, v in filters.items() if v not in (None, ""))
        return self._request(f"/profiles{'?' + query if query else ''}")

    def profile(self, profile_id: str) -> Dict:
        """The stored profile envelope: ``{"id", "meta", "profile"}``."""
        return self._request(f"/profiles/{profile_id}")

    def profile_data(self, profile_id: str) -> ProfileData:
        """The stored profile as a :class:`ProfileData`."""
        return ProfileData.from_dict(self.profile(profile_id)["profile"])

    def merge(self, ids: Sequence[str]) -> Dict:
        """Merge stored profiles; returns ``{"id", "profile"}``."""
        return self._request("/merge", body={"ids": list(ids)})

    def merge_sketch(self, **filters) -> Dict:
        """Sketch-backed merged view of an index slice (nothing stored)."""
        return self._request("/merge", body={k: v for k, v in filters.items() if v})

    def diff(self, before_id: str, after_id: str) -> Dict:
        return self._request(f"/diff?a={before_id}&b={after_id}")["diff"]

    def crossflow(self, profile_id: str) -> Dict:
        """Cross-flow analysis of a stored profile: boundary lints of its
        workload joined with the stored crossing counters."""
        return self._request(f"/crossflow?id={profile_id}")

    def contention(self, profile_id: str) -> Dict:
        """Lock-contention view of a stored profile: blocked-time totals,
        the per-line table, and the who-blocks-whom edge list."""
        return self._request(f"/contention?id={profile_id}")

    def trend(self, **filters) -> Dict:
        """Sketch-backed trend (pass ``exact=1`` to replay history)."""
        query = "&".join(f"{k}={v}" for k, v in filters.items() if v not in (None, ""))
        return self._request(f"/trend{'?' + query if query else ''}")

    def sketch(self, **filters) -> Dict:
        """Streaming per-line statistics for an index slice."""
        query = "&".join(f"{k}={v}" for k, v in filters.items() if v not in (None, ""))
        return self._request(f"/sketch{'?' + query if query else ''}")

    def replicate(self, entry: Dict, profile_payload: Dict) -> Dict:
        """Push a profile copy to this daemon (idempotent)."""
        return self._request(
            "/replicate", body={"entry": entry, "profile": profile_payload}
        )
