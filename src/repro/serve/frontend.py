"""Async batching front-end: one gateway socket in front of the shards.

:class:`ServeFrontend` is a **selectors-based** non-blocking HTTP server
(one event-loop thread, zero threads per connection) that presents the
whole shard plane as a single endpoint:

* **Batched submission** — ``POST /jobs`` is answered *immediately*
  (202, a gateway id ``gw-…``) from the event loop with no shard I/O on
  the submit path; a dispatcher thread drains the pending buffer every
  ``batch_window_s`` (or at ``batch_max``), routes each job's
  ``(workload, config_hash)`` key through the consistent-hash router,
  and flushes per-shard batches concurrently. This is what lets the
  gateway accept tens of thousands of queued jobs while the shards chew
  through them at worker speed.
* **Durable acceptance** — every accepted job lives in the gateway
  ledger until a shard reports it terminal. With a
  :class:`~repro.serve.wal.WriteAheadLog` attached, the ledger survives
  the gateway itself: every transition (accept → dispatch → terminal)
  is appended to the checksummed log **before** the client hears 202,
  and a restarted gateway replays checkpoint + log, requeues every
  non-terminal job, and dispatches the backlog — ``kill -9`` mid-burst
  loses nothing. If a shard dies, the poller marks it down on the
  router and re-dispatches that shard's non-terminal jobs to the key's
  next live owner: dispatch is at-least-once, but storage stays
  exactly-once because workloads are deterministic and the store is
  content-addressed — a re-run of the same job hashes to the same
  profile id. Terminal records are evicted after a retention window
  (checkpoint compaction folds them out of the log), so the ledger is
  bounded; an optional client ``submit_key`` dedupes resubmissions
  after a lost response.
* **Fan-out reads** — ``GET /profiles`` fans out to every live shard
  and streams the merged listing back with chunked transfer-encoding,
  deduplicating replica copies by content id as chunks arrive.
  ``GET /trend`` / ``GET /sketch`` are *routed* (single shard: the
  key's primary, or its replica with ``degraded=true`` marked in the
  response) — routing, not fan-out, is what keeps replicated profiles
  from double-counting in aggregates.

The event loop never blocks on shard I/O: submissions are ledger writes,
and read endpoints run on a small worker pool that hands finished
response bytes back to the loop through a self-pipe.
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.errors import ServeError, StoreError
from repro.serve.client import ServeClient
from repro.serve.healing import RetryPolicy
from repro.serve.jobs import new_job
from repro.serve.router import ShardRouter, shard_key
from repro.serve.wal import WriteAheadLog

#: Gateway job states. ``accepted`` → ``dispatched`` → ``done``/``error``;
#: a re-dispatch after shard death moves a job back to ``accepted``.
GATEWAY_TERMINAL = ("done", "error")

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _Connection:
    """Per-socket state owned by the event loop."""

    __slots__ = ("sock", "inbuf", "outbuf", "close_after_write", "body_target")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.inbuf = b""
        self.outbuf = b""
        self.close_after_write = False
        self.body_target = -1  # header end + Content-Length once known


class ServeFrontend:
    """Selectors-based HTTP gateway over a :class:`ShardRouter`."""

    def __init__(
        self,
        router: ShardRouter,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window_s: float = 0.05,
        batch_max: int = 64,
        poll_interval_s: float = 0.25,
        io_workers: int = 8,
        shard_timeout_s: float = 30.0,
        wal: Union[WriteAheadLog, str, Path, None] = None,
        plane=None,
        terminal_retention_s: float = 3600.0,
        terminal_retention_max: int = 10000,
        wal_compact_every: int = 2048,
    ) -> None:
        self.router = router
        self.batch_window_s = batch_window_s
        self.batch_max = batch_max
        self.poll_interval_s = poll_interval_s
        self.shard_timeout_s = shard_timeout_s
        #: Durable ledger log; ``None`` keeps the PR 9 in-memory-only
        #: behavior. A path constructs the log in that directory.
        if wal is None or isinstance(wal, WriteAheadLog):
            self.wal = wal
        else:
            self.wal = WriteAheadLog(wal)
        #: The ShardPlane behind the router, when this gateway owns one;
        #: needed only for ``POST /reshard`` (adding/removing daemons).
        self.plane = plane
        self.terminal_retention_s = terminal_retention_s
        self.terminal_retention_max = terminal_retention_max
        self.wal_compact_every = wal_compact_every
        self._listen = socket.create_server((host, port), backlog=512)
        self._listen.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        #: (connection, bytes, close_after) finished off-loop, drained by
        #: the event loop after a self-pipe wake-up.
        self._ready: List[Tuple[_Connection, bytes, bool]] = []
        self._ready_lock = threading.Lock()
        self._io = ThreadPoolExecutor(max_workers=io_workers)
        #: Next gw sequence number (a plain int so checkpoints can carry
        #: it — ids must never recycle across restarts).
        self._gw_next = 1
        self._lock = threading.RLock()
        #: Serializes an accept's (WAL append + ledger insert) against a
        #: checkpoint's (snapshot + log truncate) — the pair must be
        #: atomic or a compaction can truncate an accept record its
        #: snapshot never saw, losing a 202'd job. A dedicated gate
        #: (rather than ``_lock``) keeps the append's I/O from blocking
        #: ledger readers: status polls, /health, and the dispatcher
        #: only ever take ``_lock``, which accepts hold just briefly.
        self._wal_gate = threading.Lock()
        #: gw id -> ledger record (see POST /jobs).
        self.ledger: Dict[str, Dict] = {}
        #: submit_key -> gw id (client idempotency keys).
        self._submit_keys: Dict[str, str] = {}
        #: gw ids accepted but not yet flushed to a shard.
        self._pending: List[str] = []
        self._batch_event = threading.Event()
        self.stats = {
            "accepted": 0,
            "dispatched": 0,
            "redispatched": 0,
            "dispatch_failures": 0,
            "shards_marked_down": 0,
            "shards_marked_up": 0,
            "deduped": 0,
            "recovered": 0,
            "recovered_requeued": 0,
            "evicted_terminal": 0,
            "wal_append_failures": 0,
            "reshards": 0,
        }
        self._reshard: Optional[Dict] = None
        self._reshard_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._stop_event = threading.Event()
        self._started = False

    # -- lifecycle ------------------------------------------------------

    @property
    def host(self) -> str:
        return self._listen.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listen.getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        if self._started:
            raise ServeError("frontend already started")
        self._started = True
        if self.wal is not None:
            self._recover()
        self._selector.register(self._listen, selectors.EVENT_READ, "accept")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._threads = [
            threading.Thread(target=self._loop, name="repro-gateway-loop", daemon=True),
            threading.Thread(
                target=self._dispatch_loop, name="repro-gateway-dispatch", daemon=True
            ),
            threading.Thread(
                target=self._poll_loop, name="repro-gateway-poll", daemon=True
            ),
        ]
        for thread in self._threads:
            thread.start()

    def stop(self) -> None:
        if not self._started:
            return
        self._stop_event.set()
        self._batch_event.set()
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass
        for thread in self._threads:
            thread.join(timeout=5)
        self._io.shutdown(wait=False, cancel_futures=True)
        for key in list(self._selector.get_map().values()):
            if isinstance(key.data, _Connection):
                try:
                    key.data.sock.close()
                except OSError:
                    pass
        self._selector.close()
        self._listen.close()
        self._wake_r.close()
        self._wake_w.close()
        if self.wal is not None:
            # Clean shutdown: fold the whole ledger into the checkpoint
            # so the next boot replays a snapshot, not a long log. Under
            # the accept gate for the same reason as _maintain_ledger —
            # a straggling accept must not append into the log segment
            # this checkpoint truncates.
            try:
                with self._wal_gate:
                    self.wal.checkpoint(self._snapshot())
            except StoreError:
                pass
            self.wal.close()
        self._started = False
        stuck = [t.name for t in self._threads if t.is_alive()]
        if stuck:
            raise ServeError(f"gateway threads failed to stop: {stuck}")

    def kill(self) -> None:
        """Crash-stop: the in-process model of ``kill -9``.

        Severs every socket and stops the threads with **no** clean
        shutdown — no pending flush, no WAL checkpoint, no fsync. The
        only state that survives is what :meth:`_accept_job` already
        wrote to the log before answering 202, which is exactly the
        durability contract the chaos suite asserts: a fresh
        ``ServeFrontend`` over the same WAL directory recovers every
        accepted job.
        """
        if not self._started:
            return
        self._stop_event.set()
        self._batch_event.set()
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass
        try:
            self._listen.close()
        except OSError:
            pass
        for thread in self._threads:
            thread.join(timeout=5)
        self._io.shutdown(wait=False, cancel_futures=True)
        for key in list(self._selector.get_map().values()):
            if isinstance(key.data, _Connection):
                try:
                    key.data.sock.close()
                except OSError:
                    pass
        self._selector.close()
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass
        if self.wal is not None:
            self.wal.abandon()
        self._started = False

    # -- durable ledger (WAL) -------------------------------------------

    def _recover(self) -> None:
        """Rebuild the ledger from checkpoint + log and requeue the backlog.

        Application is keyed by ``gw_id`` and idempotent, so replaying a
        log that partially overlaps the checkpoint (a crash landed
        between snapshot and truncate) converges to the same ledger.
        Every non-terminal record is requeued to ``accepted``: nothing
        is in flight yet, and ``shard_job_id``s minted by a previous
        process incarnation cannot be trusted (a restarted shard reuses
        them), so re-dispatch-from-scratch is the only safe reading.
        Dispatch is thereby at-least-once across a crash; storage stays
        exactly-once via content addressing.
        """
        checkpoint = self.wal.load_checkpoint() or {}
        ledger: Dict[str, Dict] = {}
        for gw_id, record in (checkpoint.get("ledger") or {}).items():
            if isinstance(record, dict) and record.get("id") == gw_id:
                ledger[gw_id] = dict(record)
        records = self.wal.replay()
        for op in records:
            self._apply_wal_record(op, ledger)
        # The sequence floor must survive even a fully-compacted boot
        # (empty ledger, empty log, checkpoint = {ledger: {}, next_gw:
        # N}): gw ids never recycle across restarts, or a client polling
        # a pre-crash id could observe a different job's status.
        next_gw = int(checkpoint.get("next_gw", 1) or 1)
        for gw_id in ledger:
            try:
                next_gw = max(next_gw, int(gw_id.split("-", 1)[1]) + 1)
            except (IndexError, ValueError):
                continue
        self._gw_next = next_gw
        if not ledger and not records:
            return
        requeued = 0
        for gw_id in sorted(ledger):
            record = ledger[gw_id]
            if record.get("status") not in GATEWAY_TERMINAL:
                if record.get("status") != "accepted":
                    requeued += 1
                record["status"] = "accepted"
                record["shard"] = None
                record["shard_job_id"] = None
                self._pending.append(gw_id)
            key = record.get("submit_key")
            if key:
                self._submit_keys[key] = gw_id
        self.ledger = ledger
        self.stats["recovered"] = len(ledger)
        self.stats["recovered_requeued"] = requeued
        self._batch_event.set()

    @staticmethod
    def _apply_wal_record(op: Dict, ledger: Dict[str, Dict]) -> None:
        """Fold one replayed WAL record into ``ledger`` (idempotent)."""
        kind = op.get("op")
        if kind == "accept":
            record = op.get("record")
            if isinstance(record, dict) and record.get("id"):
                ledger[record["id"]] = dict(record)
            return
        record = ledger.get(op.get("id", ""))
        if kind == "dispatch":
            if record is not None and record.get("status") not in GATEWAY_TERMINAL:
                record["status"] = "dispatched"
                record["shard"] = op.get("shard")
                record["shard_job_id"] = op.get("shard_job_id")
        elif kind == "terminal":
            if record is not None and op.get("status") in GATEWAY_TERMINAL:
                record["status"] = op["status"]
                record["profile_id"] = op.get("profile_id")
                record["error"] = op.get("error")
                record["terminal_at"] = op.get("at")
                record["payload"] = None
        elif kind == "requeue":
            for gw_id in op.get("ids", ()):
                queued = ledger.get(gw_id)
                if queued is not None and queued.get("status") not in GATEWAY_TERMINAL:
                    queued["status"] = "accepted"
                    queued["shard"] = None
                    queued["shard_job_id"] = None
        # Unknown ops (e.g. "reshard" markers) are observability-only.

    def _snapshot(self) -> Dict:
        """The checkpoint payload for the current ledger."""
        with self._lock:
            return {
                "format": 1,
                "next_gw": self._gw_next,
                "ledger": {gw: dict(r) for gw, r in self.ledger.items()},
            }

    def _wal_append(self, op: Dict) -> None:
        """Best-effort transition append (dispatch/terminal/requeue).

        Failures here are tolerable — recovery requeues every
        non-terminal job anyway, and a lost ``terminal`` record only
        costs one redundant re-run that content addressing absorbs. The
        one append that must *not* fail silently is ``accept``, which
        :meth:`_accept_job` performs strictly before answering 202.
        """
        if self.wal is None:
            return
        try:
            self.wal.append(op)
        except StoreError:
            with self._lock:
                self.stats["wal_append_failures"] += 1

    def _maintain_ledger(self) -> None:
        """Evict expired terminal records; compact the WAL when due.

        Terminal records are kept ``terminal_retention_s`` (so clients
        can still poll a finished job) and capped at
        ``terminal_retention_max``; eviction and every
        ``wal_compact_every`` appends trigger a checkpoint + truncate,
        which is what keeps both the ledger and the log bounded under
        sustained traffic.
        """
        now = time.time()
        evicted = 0
        with self._lock:
            terminal = [
                record
                for record in self.ledger.values()
                if record["status"] in GATEWAY_TERMINAL
            ]
            expired_ids = {
                record["id"]
                for record in terminal
                if now - (record.get("terminal_at") or record["accepted_at"])
                > self.terminal_retention_s
            }
            overflow = len(terminal) - len(expired_ids) - self.terminal_retention_max
            if overflow > 0:
                survivors = sorted(
                    (r for r in terminal if r["id"] not in expired_ids),
                    key=lambda r: r.get("terminal_at") or r["accepted_at"],
                )
                expired_ids.update(r["id"] for r in survivors[:overflow])
            for gw_id in expired_ids:
                record = self.ledger.pop(gw_id, None)
                if record and record.get("submit_key"):
                    self._submit_keys.pop(record["submit_key"], None)
            evicted = len(expired_ids)
            self.stats["evicted_terminal"] += evicted
        if self.wal is not None and (
            evicted or self.wal.records_since_checkpoint >= self.wal_compact_every
        ):
            try:
                # Snapshot and truncate under the accept gate: an accept
                # appends + inserts inside the same gate, so the
                # snapshot either already contains its record or the
                # append lands after the truncate — never in a log
                # segment the checkpoint is about to discard.
                with self._wal_gate:
                    self.wal.checkpoint(self._snapshot())
            except StoreError:
                with self._lock:
                    self.stats["wal_append_failures"] += 1

    # -- event loop -----------------------------------------------------

    def _loop(self) -> None:
        while not self._stop_event.is_set():
            events = self._selector.select(timeout=0.2)
            for key, mask in events:
                if key.data == "accept":
                    self._accept()
                elif key.data == "wake":
                    try:
                        self._wake_r.recv(4096)
                    except OSError:
                        pass
                    self._drain_ready()
                else:
                    conn: _Connection = key.data
                    if mask & selectors.EVENT_READ:
                        self._readable(conn)
                    if mask & selectors.EVENT_WRITE:
                        self._writable(conn)

    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listen.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Connection(sock)
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _close(self, conn: _Connection) -> None:
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _interest(self, conn: _Connection) -> None:
        """Re-arm the selector mask from the connection's buffer state."""
        mask = selectors.EVENT_READ
        if conn.outbuf:
            mask |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, mask, conn)
        except (KeyError, ValueError):
            pass

    def _readable(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._close(conn)
            return
        if not data:
            self._close(conn)
            return
        conn.inbuf += data
        while self._try_request(conn):
            pass

    def _writable(self, conn: _Connection) -> None:
        if not conn.outbuf:
            self._interest(conn)
            return
        try:
            sent = conn.sock.send(conn.outbuf)
        except BlockingIOError:
            return
        except OSError:
            self._close(conn)
            return
        conn.outbuf = conn.outbuf[sent:]
        if not conn.outbuf and conn.close_after_write:
            self._close(conn)
            return
        self._interest(conn)

    def _try_request(self, conn: _Connection) -> bool:
        """Parse and handle one complete pipelined request, if buffered."""
        if conn.body_target < 0:
            head_end = conn.inbuf.find(b"\r\n\r\n")
            if head_end < 0:
                if len(conn.inbuf) > _MAX_HEADER_BYTES:
                    self._respond(conn, 431, {"error": "headers too large"}, close=True)
                    conn.inbuf = b""
                return False
            header_blob = conn.inbuf[:head_end].decode("latin-1")
            length = 0
            for line in header_blob.split("\r\n")[1:]:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        length = int(value.strip())
                    except ValueError:
                        length = 0
            if length > _MAX_BODY_BYTES:
                self._respond(conn, 413, {"error": "body too large"}, close=True)
                conn.inbuf = b""
                return False
            conn.body_target = head_end + 4 + length
        if len(conn.inbuf) < conn.body_target:
            return False
        raw, conn.inbuf = conn.inbuf[: conn.body_target], conn.inbuf[conn.body_target:]
        conn.body_target = -1
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, version = lines[0].split(" ", 2)
        except ValueError:
            self._respond(conn, 400, {"error": "malformed request line"}, close=True)
            return False
        keep_alive = not version.endswith("1.0")
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "connection":
                keep_alive = value.strip().lower() != "close"
        self._dispatch_request(conn, method, target, body, keep_alive)
        return bool(conn.inbuf)

    # -- request handling -----------------------------------------------

    def _dispatch_request(
        self,
        conn: _Connection,
        method: str,
        target: str,
        body: bytes,
        keep_alive: bool,
    ) -> None:
        url = urlparse(target)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[0] for k, v in parse_qs(url.query).items()}
        close = not keep_alive
        # Submission is answered inline — a ledger append, no I/O — so
        # accept latency is independent of shard health and queue depth.
        if method == "POST" and parts == ["jobs"]:
            try:
                record = self._accept_job(body)
            except (ServeError, ValueError) as exc:
                self._respond(conn, 400, {"error": str(exc)}, close=close)
                return
            self._respond(conn, 202, {"job": record}, close=close)
            return
        if method == "GET" and parts == ["health"]:
            self._respond(conn, 200, self._health(), close=close)
            return
        if method == "GET" and len(parts) == 2 and parts[0] == "jobs":
            with self._lock:
                record = self.ledger.get(parts[1])
            if record is None:
                self._respond(conn, 404, {"error": f"unknown gateway job {parts[1]!r}"}, close=close)
            else:
                self._respond(conn, 200, {"job": dict(record)}, close=close)
            return
        if method == "GET" and parts == ["jobs"]:
            self._respond(conn, 200, self._jobs_listing(query), close=close)
            return
        if method == "GET" and parts == ["shards"]:
            self._respond(conn, 200, self.router.describe(), close=close)
            return
        if method == "POST" and parts == ["reshard"]:
            try:
                spec = json.loads(body.decode("utf-8")) if body else {}
                if not isinstance(spec, dict):
                    raise ServeError("reshard body must be a JSON object")
                status = self._start_reshard(spec)
            except ValueError:
                self._respond(conn, 400, {"error": "malformed JSON body"}, close=close)
                return
            except ServeError as exc:
                code = 409 if "in progress" in str(exc) else 400
                self._respond(conn, code, {"error": str(exc)}, close=close)
                return
            self._respond(conn, 202, status, close=close)
            return
        if method == "GET" and parts == ["reshard"]:
            self._respond(conn, 200, self.reshard_status(), close=close)
            return
        # Everything else talks to shards: off-loop on the worker pool.
        self._io.submit(self._handle_offloop, conn, method, parts, query, close)

    def _handle_offloop(
        self,
        conn: _Connection,
        method: str,
        parts: List[str],
        query: Dict,
        close: bool,
    ) -> None:
        try:
            if method == "GET" and parts == ["profiles"]:
                self._stream_profiles(conn, query, close)
                return
            if method == "GET" and parts in (["trend"], ["sketch"]):
                payload, status = self._routed_read(parts[0], query)
            elif method == "GET" and len(parts) == 2 and parts[0] == "profiles":
                payload, status = self._fetch_profile(parts[1], query)
            else:
                payload, status = (
                    {"error": f"unknown endpoint {method} /{'/'.join(parts)}"},
                    404,
                )
        except ServeError as exc:
            payload, status = {"error": str(exc)}, 502
        except Exception as exc:  # noqa: BLE001 — gateway must answer
            payload, status = {"error": f"{type(exc).__name__}: {exc}"}, 500
        self._finish_offloop(conn, self._render(status, payload), close)

    def _finish_offloop(self, conn: _Connection, data: bytes, close: bool) -> None:
        with self._ready_lock:
            self._ready.append((conn, data, close))
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass

    def _drain_ready(self) -> None:
        with self._ready_lock:
            ready, self._ready = self._ready, []
        for conn, data, close in ready:
            conn.outbuf += data
            conn.close_after_write = conn.close_after_write or (
                close and not conn.inbuf
            )
            self._writable(conn)

    # -- responses ------------------------------------------------------

    @staticmethod
    def _render(status: int, payload: Dict) -> bytes:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Status"
        )
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("latin-1")
        return head + body

    def _respond(
        self, conn: _Connection, status: int, payload: Dict, *, close: bool = False
    ) -> None:
        conn.outbuf += self._render(status, payload)
        conn.close_after_write = conn.close_after_write or close
        self._writable(conn)

    # -- gateway job ledger ---------------------------------------------

    def _dedupe_locked(self, submit_key: str) -> Optional[Dict]:
        """The prior record for ``submit_key``, or ``None`` if unseen.

        Caller holds ``self._lock``.
        """
        existing = self._submit_keys.get(submit_key)
        if existing is None or existing not in self.ledger:
            return None
        self.stats["deduped"] += 1
        deduped = {
            k: v for k, v in self.ledger[existing].items() if k != "payload"
        }
        deduped["deduped"] = True
        return deduped

    def _accept_job(self, body: bytes) -> Dict:
        if not body:
            raise ServeError("request body must be a JSON object")
        payload = json.loads(body.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        submit_key = None
        if "submit_key" in payload:
            # The idempotency key is gateway state, not job state: strip
            # it before validation/forwarding (shards run the job the
            # key names, they don't dedupe on it here).
            payload = dict(payload)
            submit_key = payload.pop("submit_key")
            if not isinstance(submit_key, str) or not submit_key:
                raise ServeError("submit_key must be a non-empty string")
            with self._lock:
                deduped = self._dedupe_locked(submit_key)
                if deduped is not None:
                    return deduped
        probe = new_job(payload)  # full validation; the probe id is discarded
        with self._wal_gate:
            # The gate spans dedupe re-check → WAL append → ledger
            # insert. The re-check closes the check-then-act window two
            # racing resubmits would slip through (validation above runs
            # unlocked), and _maintain_ledger snapshots + truncates
            # under this same gate, so a compaction can never truncate
            # an appended accept before its snapshot sees it.
            with self._lock:
                if submit_key is not None:
                    deduped = self._dedupe_locked(submit_key)
                    if deduped is not None:
                        return deduped
                # Accepts run on the io pool — the sequence allocation
                # must be atomic or two threads mint the same gw id.
                gw_id = f"gw-{self._gw_next:08d}"
                self._gw_next += 1
            record = {
                "id": gw_id,
                "workload": probe.workload,
                "profiler": probe.profiler,
                # The routing key, normalized exactly like the daemon's
                # index entry so the job lands on the shard its profile
                # belongs to.
                "config_hash": _probe_config_hash(probe),
                "status": "accepted",
                "shard": None,
                "shard_job_id": None,
                "profile_id": None,
                "error": None,
                "accepted_at": time.time(),
                "terminal_at": None,
                "submit_key": submit_key,
                "payload": payload,
            }
            if self.wal is not None:
                # Strict: 202 *means* durable. A failed append (torn
                # write, full disk) refuses the job so the client knows
                # to retry.
                try:
                    self.wal.append({"op": "accept", "record": record})
                except StoreError as exc:
                    with self._lock:
                        self.stats["wal_append_failures"] += 1
                    raise ServeError(f"job not accepted: {exc}") from None
            with self._lock:
                self.ledger[gw_id] = record
                if submit_key is not None:
                    self._submit_keys[submit_key] = gw_id
                self._pending.append(gw_id)
                self.stats["accepted"] += 1
                depth = len(self._pending)
        if depth >= self.batch_max:
            self._batch_event.set()
        return {k: v for k, v in record.items() if k != "payload"}

    def _jobs_listing(self, query: Dict) -> Dict:
        with self._lock:
            records = [
                {k: v for k, v in r.items() if k != "payload"}
                for r in self.ledger.values()
            ]
        counts: Dict[str, int] = {}
        for record in records:
            counts[record["status"]] = counts.get(record["status"], 0) + 1
        try:
            limit = int(query.get("limit", 500))
            offset = int(query.get("offset", 0))
        except ValueError:
            limit, offset = 500, 0
        page = records[offset:]
        if limit:
            page = page[:limit]
        return {"jobs": page, "counts": counts, "total": len(records)}

    def _health(self) -> Dict:
        with self._lock:
            counts: Dict[str, int] = {}
            for record in self.ledger.values():
                counts[record["status"]] = counts.get(record["status"], 0) + 1
            pending = len(self._pending)
            stats = dict(self.stats)
            ledger_size = len(self.ledger)
        terminal = sum(counts.get(s, 0) for s in GATEWAY_TERMINAL)
        return {
            "status": "ok",
            "role": "gateway",
            "jobs": counts,
            "pending_batch": pending,
            "stats": stats,
            "ledger": {
                "size": ledger_size,
                "terminal": terminal,
                "evicted_terminal": stats["evicted_terminal"],
                "retention_s": self.terminal_retention_s,
                "retention_max": self.terminal_retention_max,
            },
            "wal": self.wal.stats_dict() if self.wal is not None else None,
            "epoch": self.router.epoch,
            "migrating": self.router.migrating,
            "shards": {
                "live": self.router.live_shards(),
                "down": self.router.down_shards(),
            },
        }

    # -- dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop_event.is_set():
            self._batch_event.wait(self.batch_window_s)
            self._batch_event.clear()
            if self._stop_event.is_set():
                return
            self._flush_pending()

    def _flush_pending(self) -> None:
        with self._lock:
            batch, self._pending = self._pending[:], []
        if not batch:
            return
        by_shard: Dict[str, List[str]] = {}
        unroutable: List[str] = []
        with self._lock:
            for gw_id in batch:
                record = self.ledger.get(gw_id)
                if record is None or record["status"] in GATEWAY_TERMINAL:
                    continue
                try:
                    shard, _ = self.router.route(
                        record["workload"], record["config_hash"]
                    )
                except ServeError:
                    unroutable.append(gw_id)
                    continue
                by_shard.setdefault(shard, []).append(gw_id)
        if unroutable:
            # Every owner of these keys is down; keep them queued — the
            # poller re-arms the batch when a shard comes back.
            with self._lock:
                self._pending.extend(unroutable)
        futures = [
            self._io.submit(self._flush_to_shard, shard, gw_ids)
            for shard, gw_ids in by_shard.items()
        ]
        for future in futures:
            future.result()

    def _flush_to_shard(self, shard: str, gw_ids: List[str]) -> None:
        client = self._client(shard)
        for gw_id in gw_ids:
            if self._stop_event.is_set():
                return  # abandon the flush; the ledger keeps the backlog
            with self._lock:
                record = self.ledger.get(gw_id)
                if record is None or record["status"] in GATEWAY_TERMINAL:
                    continue
                payload = dict(record["payload"])
            try:
                job = client._request("/jobs", body=payload)["job"]
            except ServeError as exc:
                self._shard_trouble(shard, gw_ids=[gw_id], reason=str(exc))
                return
            with self._lock:
                record = self.ledger.get(gw_id)
                if record is not None:
                    record["status"] = "dispatched"
                    record["shard"] = shard
                    record["shard_job_id"] = job["id"]
                    self.stats["dispatched"] += 1
            self._wal_append(
                {
                    "op": "dispatch",
                    "id": gw_id,
                    "shard": shard,
                    "shard_job_id": job["id"],
                }
            )

    def _shard_trouble(
        self, shard: str, *, gw_ids: Optional[List[str]] = None, reason: str = ""
    ) -> None:
        """A shard stopped answering: mark it down, requeue its jobs."""
        if not self.router.is_down(shard):
            try:
                self.router.mark_down(shard)
            except ServeError:
                return  # already decommissioned (reshard remove race)
            with self._lock:
                self.stats["shards_marked_down"] += 1
        requeue = set(gw_ids or [])
        with self._lock:
            for gw_id, record in self.ledger.items():
                if (
                    record["shard"] == shard
                    and record["status"] not in GATEWAY_TERMINAL
                ):
                    requeue.add(gw_id)
            for gw_id in sorted(requeue):
                record = self.ledger[gw_id]
                record["status"] = "accepted"
                record["shard"] = None
                record["shard_job_id"] = None
                self._pending.append(gw_id)
                self.stats["redispatched"] += 1
                self.stats["dispatch_failures"] += 1
        if requeue:
            self._wal_append({"op": "requeue", "ids": sorted(requeue)})
        self._batch_event.set()

    # -- poller ----------------------------------------------------------

    def _poll_loop(self) -> None:
        while not self._stop_event.wait(self.poll_interval_s):
            try:
                self._poll_once()
            except Exception:  # noqa: BLE001 — the poller must survive
                pass

    def _poll_once(self) -> None:
        # Probe down shards back up (a revived daemon answers /health).
        for shard in self.router.down_shards():
            try:
                probe = ServeClient(
                    self.router.url(shard),
                    timeout=2.0,
                    connect_timeout_s=1.0,
                    retry=RetryPolicy(1),
                )
                probe.health()
            except ServeError:
                continue
            self.router.mark_up(shard)
            with self._lock:
                self.stats["shards_marked_up"] += 1
            self._batch_event.set()
        # Refresh dispatched-job statuses, one listing per shard.
        with self._lock:
            shards = {
                record["shard"]
                for record in self.ledger.values()
                if record["status"] == "dispatched" and record["shard"]
            }
        for shard in sorted(shards):
            try:
                jobs = {j["id"]: j for j in self._client(shard).jobs()}
            except ServeError as exc:
                self._shard_trouble(shard, reason=str(exc))
                continue
            transitions: List[Dict] = []
            requeued: List[str] = []
            with self._lock:
                for record in self.ledger.values():
                    if record["shard"] != shard or record["status"] != "dispatched":
                        continue
                    job = jobs.get(record["shard_job_id"])
                    if job is None:
                        # The shard lost the job (e.g. restarted): requeue.
                        record["status"] = "accepted"
                        record["shard"] = None
                        record["shard_job_id"] = None
                        self._pending.append(record["id"])
                        self.stats["redispatched"] += 1
                        requeued.append(record["id"])
                    elif job["status"] in GATEWAY_TERMINAL:
                        record["status"] = job["status"]
                        record["profile_id"] = job.get("profile_id")
                        record["error"] = job.get("error")
                        record["terminal_at"] = time.time()
                        # The payload will never be re-dispatched again;
                        # dropping it bounds per-record memory.
                        record["payload"] = None
                        transitions.append(
                            {
                                "op": "terminal",
                                "id": record["id"],
                                "status": record["status"],
                                "profile_id": record["profile_id"],
                                "error": record["error"],
                                "at": record["terminal_at"],
                            }
                        )
            for op in transitions:
                self._wal_append(op)
            if requeued:
                self._wal_append({"op": "requeue", "ids": requeued})
        self._maintain_ledger()

    # -- live resharding -------------------------------------------------

    def reshard_status(self) -> Dict:
        with self._reshard_lock:
            status = dict(self._reshard) if self._reshard else {"state": "idle"}
        status["epoch"] = self.router.epoch
        status["migrating"] = self.router.migrating
        return status

    def _start_reshard(self, spec: Dict) -> Dict:
        """Begin an add/remove migration in a background thread.

        One at a time: a second ``POST /reshard`` while a migration is
        in flight is refused (409) rather than queued — ring epochs are
        a two-ring protocol, not an n-ring one.
        """
        action = spec.get("action")
        if action not in ("add", "remove"):
            raise ServeError("reshard needs {'action': 'add'|'remove', ...}")
        if self.plane is None:
            raise ServeError(
                "gateway has no shard plane attached; resharding unavailable"
            )
        shard = spec.get("shard")
        if action == "remove" and not shard:
            raise ServeError("reshard remove needs {'shard': <name>}")
        with self._reshard_lock:
            if self._reshard and self._reshard.get("state") in (
                "starting",
                "migrating",
            ):
                raise ServeError(
                    f"reshard already in progress ({self._reshard['action']})"
                )
            self._reshard = {
                "action": action,
                "shard": shard,
                "state": "starting",
                "keys_total": 0,
                "keys_moved": 0,
                "entries_copied": 0,
                "error": None,
                "started_at": time.time(),
                "finished_at": None,
            }
        thread = threading.Thread(
            target=self._run_reshard,
            args=(action, shard),
            name="repro-gateway-reshard",
            daemon=True,
        )
        thread.start()
        return self.reshard_status()

    def _run_reshard(self, action: str, shard: Optional[str]) -> None:
        """The migration state machine: grow/shrink → copy → finalize.

        * ``add``: boot the daemon, begin the epoch (new ring includes
          it), copy every key's history to owners it gained, finalize.
        * ``remove``: begin the epoch (new ring excludes it), copy,
          finalize, drain the leaver's in-flight jobs, decommission it.

        Reads keep flowing the whole time: the router serves them from
        the union of old and new owners, old primary first. On any
        failure the epoch is aborted, restoring the old ring intact.
        """
        began = False
        try:
            if action == "add":
                name = self.plane.add_shard()
                members = list(self.router.ring.shards) + [name]
            else:
                name = shard
                if name not in self.router.ring.shards:
                    raise ServeError(f"unknown shard {name!r}")
                members = [s for s in self.router.ring.shards if s != name]
                if not members:
                    raise ServeError("cannot remove the last shard")
            with self._reshard_lock:
                self._reshard["shard"] = name
            epoch = self.router.begin_epoch(members)
            began = True
            with self._reshard_lock:
                self._reshard["state"] = "migrating"
            self._wal_append(
                {"op": "reshard", "action": action, "shard": name, "epoch": epoch}
            )
            copied, total, moved = self._migrate_entries(epoch)
            self.router.finalize_epoch()
            if action == "remove":
                self._drain_shard(name)
                self.plane.remove_shard(name)
            with self._reshard_lock:
                self._reshard.update(
                    state="done",
                    entries_copied=copied,
                    keys_total=total,
                    keys_moved=moved,
                    finished_at=time.time(),
                )
            with self._lock:
                self.stats["reshards"] += 1
            self._batch_event.set()
        except Exception as exc:  # noqa: BLE001 — must record the failure
            if began:
                try:
                    self.router.abort_epoch()
                except ServeError:
                    pass
            with self._reshard_lock:
                self._reshard.update(
                    state="failed",
                    error=f"{type(exc).__name__}: {exc}",
                    finished_at=time.time(),
                )

    def _migrate_entries(self, epoch: int) -> Tuple[int, int, int]:
        """Copy stored profiles to the owners the new ring gave them.

        Each entry is copied **once**, from its key's live old primary,
        to each new owner that is not already an old owner — via the
        idempotent ``/replicate`` endpoint, tagged with the new epoch.
        Profiles ingested concurrently are covered by the daemons' own
        dual-ring replication, so the migration needs no quiesce.
        """
        prev, ring = self.router.prev_ring, self.router.ring
        if prev is None:
            return 0, 0, 0
        copied = 0
        all_keys = set()
        moved_keys = set()
        for src in prev.shards:
            if self.router.is_down(src):
                continue
            try:
                entries = self._client(src).profiles(limit=0)
            except ServeError:
                continue
            for entry in entries:
                workload = entry.get("workload", "")
                config = entry.get("config_hash", "")
                key = shard_key(workload, config)
                all_keys.add(key)
                old_owners = prev.owners(key)[:2]
                live_old = [s for s in old_owners if not self.router.is_down(s)]
                if not live_old or live_old[0] != src:
                    continue  # another shard is this key's copy source
                needed = [
                    t for t in ring.owners(key)[:2] if t not in old_owners
                ]
                if not needed:
                    continue
                try:
                    envelope = self._client(src).profile(entry["id"])
                except ServeError:
                    continue
                for target in needed:
                    try:
                        self._client(target)._request(
                            "/replicate",
                            body={
                                "entry": dict(entry),
                                "profile": envelope["profile"],
                                "epoch": epoch,
                            },
                        )
                    except ServeError:
                        continue
                    copied += 1
                    moved_keys.add(key)
                with self._reshard_lock:
                    self._reshard["entries_copied"] = copied
                    self._reshard["keys_moved"] = len(moved_keys)
        with self._reshard_lock:
            self._reshard["keys_total"] = len(all_keys)
        return copied, len(all_keys), len(moved_keys)

    def _drain_shard(self, name: str, *, timeout_s: float = 120.0) -> None:
        """Wait out (then requeue) the leaver's in-flight jobs.

        The leaving daemon stays up post-finalize, so its running jobs
        finish and replicate to the new ring's owners (its source is no
        longer an owner, so copies go to the full new owner pair). Jobs
        that outlive the timeout are requeued — the new ring's primary
        re-runs them.
        """
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline and not self._stop_event.is_set():
            with self._lock:
                waiting = [
                    gw_id
                    for gw_id, record in self.ledger.items()
                    if record["shard"] == name
                    and record["status"] not in GATEWAY_TERMINAL
                ]
            if not waiting:
                return
            time.sleep(min(0.1, self.poll_interval_s))
        with self._lock:
            stranded = []
            for gw_id, record in self.ledger.items():
                if (
                    record["shard"] == name
                    and record["status"] not in GATEWAY_TERMINAL
                ):
                    record["status"] = "accepted"
                    record["shard"] = None
                    record["shard_job_id"] = None
                    self._pending.append(gw_id)
                    self.stats["redispatched"] += 1
                    stranded.append(gw_id)
        if stranded:
            self._wal_append({"op": "requeue", "ids": sorted(stranded)})
            self._batch_event.set()

    # -- shard reads -----------------------------------------------------

    def _client(self, shard: str) -> ServeClient:
        return ServeClient(
            self.router.url(shard),
            timeout=self.shard_timeout_s,
            connect_timeout_s=min(5.0, self.shard_timeout_s),
        )

    def _routed_read(self, endpoint: str, query: Dict) -> Tuple[Dict, int]:
        """Route /trend and /sketch to the key's primary (or replica).

        Requires ``workload``: aggregates are sliced per key, and
        routing (instead of fanning out) is what keeps the replica
        copies from double-counting.
        """
        workload = query.get("workload")
        if not workload:
            raise ServeError(f"gateway {endpoint} needs ?workload=…")
        shard, degraded = self.router.route(workload, query.get("config_hash", ""))
        try:
            payload = self._client(shard)._request(
                f"/{endpoint}?" + "&".join(f"{k}={v}" for k, v in query.items())
            )
        except ServeError:
            self._shard_trouble(shard, reason=f"{endpoint} read failed")
            shard, degraded = self.router.route(workload, query.get("config_hash", ""))
            payload = self._client(shard)._request(
                f"/{endpoint}?" + "&".join(f"{k}={v}" for k, v in query.items())
            )
        payload["shard"] = shard
        payload["degraded"] = degraded
        return payload, 200

    def _fetch_profile(self, profile_id: str, query: Dict) -> Tuple[Dict, int]:
        """Find a stored profile on any live shard (content-addressed)."""
        last: Optional[ServeError] = None
        for shard in self.router.live_shards():
            try:
                return self._client(shard).profile(profile_id), 200
            except ServeError as exc:
                last = exc
                continue
        raise last if last is not None else ServeError(f"unknown profile {profile_id!r}")

    def _stream_profiles(self, conn: _Connection, query: Dict, close: bool) -> None:
        """Chunked fan-out listing, deduplicated by content id.

        Each live shard's page is fetched in turn and streamed out as
        its own chunk, so the first bytes reach the client while later
        shards are still answering.
        """
        qs = "&".join(f"{k}={v}" for k, v in query.items())
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/json\r\n"
            "Transfer-Encoding: chunked\r\n"
            "\r\n"
        ).encode("latin-1")
        self._finish_offloop(conn, head + _chunk(b'{"profiles":['), close=False)
        seen: set = set()
        degraded = bool(self.router.down_shards())
        first = True
        for shard in self.router.live_shards():
            try:
                page = self._client(shard)._request(
                    f"/profiles{'?' + qs if qs else ''}"
                )
            except ServeError:
                self._shard_trouble(shard, reason="profiles fan-out failed")
                degraded = True
                continue
            fresh = [e for e in page["profiles"] if e["id"] not in seen]
            seen.update(e["id"] for e in fresh)
            if fresh:
                blob = ",".join(json.dumps(e) for e in fresh)
                if not first:
                    blob = "," + blob
                first = False
                self._finish_offloop(conn, _chunk(blob.encode("utf-8")), close=False)
        tail = json.dumps(
            {"total": len(seen), "degraded": degraded, "shards": self.router.live_shards()}
        )[1:-1]
        self._finish_offloop(
            conn,
            _chunk(("]," + tail + "}").encode("utf-8")) + _chunk(b""),
            close,
        )


def _chunk(data: bytes) -> bytes:
    """One HTTP/1.1 chunked-transfer frame (empty data = terminator)."""
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


def _probe_config_hash(probe) -> str:
    """The routing config hash of a validated submission.

    Mirrors how the daemon keys stored profiles
    (``config_hash({mode, scale, overrides})``) so a job routes to the
    same shard its profile will be indexed under.
    """
    from repro.serve.store import config_hash

    return config_hash(
        {"mode": probe.mode, "scale": probe.scale, "overrides": probe.config or {}}
    )
