"""The continuous-profiling daemon: job queue, worker pool, HTTP API.

``python -m repro serve`` runs one of these. Architecture::

    HTTP clients ──POST /jobs──▶ job queue ──dispatcher──▶ worker pool
         ▲                                                (N processes,
         │                                                 execute_job)
         └──GET /profiles, /diff, /trend ◀── ProfileStore ◀── results

* Submissions are validated synchronously (bad payloads fail the POST),
  queued, and dispatched to a ``ProcessPoolExecutor`` — each worker runs
  the workload under the simulated runtime and ships the finished
  profile back as JSON text.
* The daemon process is the store's only writer: worker results are
  persisted on arrival, keyed by
  ``(workload, profiler, config hash, git tree hash)``.
* The API is stdlib ``http.server`` serving JSON; profile payloads
  render through the existing :mod:`repro.ui` backends
  (``render_json`` / ``render_html``).

Self-healing (see DESIGN.md §8). The daemon assumes workers fail and
heals around them rather than trusting them:

* **Per-job timeouts** — a monitor thread enforces each job's
  wall-clock budget (``timeout_s`` on the job, else the daemon default).
  A queued-but-unstarted future is cancelled; a running one means a hung
  worker, so the whole pool is recycled.
* **Retry with backoff** — a failed attempt (worker exception, timeout,
  unpersistable result) retries up to
  :attr:`~repro.serve.healing.RetryPolicy.max_attempts` times with
  seeded exponential backoff + jitter.
* **Pool-break recovery** — a hard worker death (``os._exit``, segfault
  analog) breaks every in-flight future with ``BrokenProcessPool``. The
  first callback to notice respawns the pool and requeues all in-flight
  jobs *exactly once per incident* (late callbacks hit an orphan guard);
  a per-job ``crash_requeues`` cap stops a crash-looping job from
  riding incidents forever.
* **Circuit breaker** — repeated *clean* failures of one workload open
  its circuit: further jobs for it fail fast without burning a worker
  until a cooldown passes and a half-open probe succeeds. Pool-break
  incidents are deliberately not charged to the breaker — the victim
  set includes innocent bystanders.
* **Graceful drain** — SIGTERM (or :meth:`ProfileDaemon.drain`) stops
  accepting submissions, lets queued and in-flight jobs finish, then
  shuts down; :meth:`ProfileDaemon.stop` joins every thread with a
  deadline and cancels whatever is still pending.

The dispatcher holds a worker-slot semaphore so a job's timeout clock
only starts when a worker is actually free to run it.

Endpoints::

    GET  /health                  liveness + queue/worker/store/healing counters
    POST /jobs                    submit {workload, profiler?, mode?, scale?,
                                          config?, faults?, timeout_s?}
    GET  /jobs                    all jobs
    GET  /jobs/<id>               one job (status, profile_id when done)
    GET  /profiles                store index (?workload=&profiler=&...)
    GET  /profiles/<id>           stored profile (?format=html for the web UI)
    POST /merge                   {"ids": [...]} -> merged profile id
    GET  /diff?a=<id>&b=<id>      per-line/function/leak deltas (b − a)
    GET  /trend?workload=...      time-ordered headline numbers + regressions
                                  (sketch-backed; ?exact=1 replays history)
    GET  /sketch?workload=...     streaming per-line statistics (?state=1 for
                                  the raw mergeable aggregator state)
    POST /replicate               {entry, profile} — idempotent replica write
                                  from a peer shard (scale-out plane)
    GET  /crossflow?id=<id>       boundary lints × stored crossing counters
    GET  /contention?id=<id>      lock blocked-time table + who-blocks-whom edges

Scale-out (DESIGN.md §12). A daemon can run as one shard of a plane:
``shard_name`` + a :class:`~repro.serve.router.ShardRouter` turn on
synchronous best-effort replication — every accepted profile is POSTed
to the key's replica shard (``owners(key)[1]`` on the ring), where
content addressing makes the write idempotent. Aggregation endpoints
answer from a :class:`~repro.serve.streaming.StreamingAggregator`
maintained on ingest and persisted as ``sketches.json`` next to the
store, so ``/trend`` is O(window) regardless of history; a missing or
stale sketch file is rebuilt from the store at boot.
"""

from __future__ import annotations

import json
import queue
import signal as signal_module
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Union
from urllib.parse import parse_qs, urlparse

from repro.core.profile_data import ProfileData
from repro.errors import ReproError, ServeError, StoreError
from repro.serve.aggregate import diff_stored, find_regressions, merge_stored, trend
from repro.serve.healing import CircuitBreaker, RetryPolicy
from repro.serve.jobs import Job, execute_job, new_job
from repro.serve.router import shard_key
from repro.serve.store import ProfileStore, config_hash, git_tree_hash
from repro.serve.streaming import StreamingAggregator
from repro.ui import render_html, render_json

_SHUTDOWN = object()

#: How often the monitor thread checks deadlines and due retries.
_MONITOR_TICK_S = 0.02


class ProfileDaemon:
    """Job-serving daemon around a :class:`ProfileStore`."""

    def __init__(
        self,
        store: Union[ProfileStore, str],
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        job_timeout_s: float = 120.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        max_crash_requeues: int = 4,
        shard_name: str = "",
        router=None,
        replicate_timeout_s: float = 10.0,
        submit_key_retention_max: int = 10000,
    ) -> None:
        self.store = store if isinstance(store, ProfileStore) else ProfileStore(store)
        self.workers = max(1, workers)
        self.job_timeout_s = float(job_timeout_s)
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker(5)
        self.max_crash_requeues = max(0, int(max_crash_requeues))
        #: Scale-out identity: when both are set, accepted profiles
        #: replicate to the key's replica shard (see module docstring).
        self.shard_name = shard_name
        self.router = router
        self.replicate_timeout_s = float(replicate_timeout_s)
        self._sketch_path = self.store.root / "sketches.json"
        self._agg_lock = threading.Lock()
        self.aggregator = self._load_aggregator()
        self.tree_hash = git_tree_hash()
        self._jobs: Dict[str, Job] = {}
        #: submit_key -> job id (client-supplied idempotency keys).
        #: Bounded: keys whose job is terminal are evicted oldest-first
        #: past ``submit_key_retention_max`` — the gateway bounds its
        #: key map via ledger retention; a long-lived daemon needs the
        #: same cap or keyed submissions grow this dict forever.
        self._submit_keys: Dict[str, str] = {}
        self.submit_key_retention_max = max(1, int(submit_key_retention_max))
        self._lock = threading.RLock()
        self._queue: "queue.Queue" = queue.Queue()
        self._pool: Optional[ProcessPoolExecutor] = None
        #: job id -> the Future currently running it. Identity of the
        #: mapped future is the orphan guard: a done-callback whose
        #: future is no longer the mapped one was superseded by a
        #: timeout or pool-break incident and must do nothing.
        self._inflight: Dict[str, object] = {}
        self._deadlines: Dict[str, float] = {}
        #: job id -> monotonic instant its backoff expires.
        self._retry_at: Dict[str, float] = {}
        self._slots = threading.Semaphore(self.workers)
        #: Healing counters, surfaced in ``/health``.
        self.stats: Dict[str, int] = {
            "retries": 0,
            "requeues": 0,
            "timeouts": 0,
            "pool_breaks": 0,
            "pool_respawns": 0,
            "breaker_rejections": 0,
            "store_write_retries": 0,
            "sketch_ingests": 0,
            "sketch_save_failures": 0,
            "replications": 0,
            "replication_failures": 0,
            "replicated_in": 0,
        }
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.profile_daemon = self
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopping = False
        self._draining = False
        self._stop_event = threading.Event()

    # -- lifecycle ------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        if self._started:
            raise ServeError("daemon already started")
        self._started = True
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        monitor = threading.Thread(
            target=self._monitor_loop, name="repro-serve-monitor", daemon=True
        )
        server = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._threads = [dispatcher, monitor, server]
        for thread in self._threads:
            thread.start()

    def stop(self) -> None:
        """Shut down now: cancel pending work, join every thread."""
        with self._lock:
            if not self._started or self._stopping:
                return
            self._stopping = True
        self._stop_event.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        self._queue.put(_SHUTDOWN)
        with self._lock:
            for job_id, future in list(self._inflight.items()):
                future.cancel()  # running futures finish; queued ones die
            for job_id in list(self._retry_at):
                del self._retry_at[job_id]
                job = self._jobs[job_id]
                job.status = "error"
                job.error = "daemon stopped before the retry ran"
                job.finished_at = time.time()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        for thread in self._threads:
            thread.join(timeout=5)
        stuck = [t.name for t in self._threads if t.is_alive()]
        if stuck:
            raise ServeError(f"daemon threads failed to stop: {stuck}")
        self._started = False

    def drain(self, deadline_s: float = 60.0) -> None:
        """Graceful shutdown: finish accepted work first, then stop.

        New submissions are rejected immediately; queued, retrying, and
        in-flight jobs run to completion (or to their own give-up
        points). After ``deadline_s`` whatever is left is cut off by
        :meth:`stop`.
        """
        with self._lock:
            self._draining = True
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            with self._lock:
                idle = (
                    not self._inflight
                    and not self._retry_at
                    and self._queue.empty()
                )
            if idle:
                break
            time.sleep(_MONITOR_TICK_S)
        self.stop()

    def serve_forever(self) -> None:
        """Block until SIGTERM/SIGINT (the ``python -m repro serve`` loop).

        SIGTERM triggers a graceful drain; Ctrl-C stops immediately.
        """
        drain_requested = threading.Event()
        try:
            signal_module.signal(
                signal_module.SIGTERM, lambda *_: drain_requested.set()
            )
        except ValueError:
            pass  # not the main thread; signals handled by the embedder
        try:
            while not self._stop_event.is_set():
                if drain_requested.is_set():
                    self.drain()
                    return
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    # -- job management -------------------------------------------------

    def submit(self, payload: Dict) -> Job:
        """Validate and enqueue a job; returns it in ``queued`` state.

        An optional ``submit_key`` (a client-generated idempotency key)
        dedupes retried submissions: a key seen before returns the job
        it named the first time instead of enqueuing a double-run. This
        is what lets a client safely resubmit after a lost response.
        """
        with self._lock:
            if self._draining or self._stopping:
                raise ServeError("daemon is draining; not accepting new jobs")
        submit_key = None
        if isinstance(payload, dict) and "submit_key" in payload:
            payload = dict(payload)
            submit_key = payload.pop("submit_key")
            if not isinstance(submit_key, str) or not submit_key:
                raise ServeError("submit_key must be a non-empty string")
            with self._lock:
                prior = self._deduped_job_locked(submit_key)
                if prior is not None:
                    return prior
        job = new_job(payload)
        with self._lock:
            if submit_key is not None:
                # Two racing submissions with one key: first one wins.
                prior = self._deduped_job_locked(submit_key)
                if prior is not None:
                    return prior
                self._submit_keys[submit_key] = job.id
                self._evict_submit_keys_locked()
            self._jobs[job.id] = job
        self._queue.put(job.id)
        return job

    def _deduped_job_locked(self, submit_key: str) -> Optional[Job]:
        """The job ``submit_key`` named before, or ``None`` if unseen.

        Caller holds ``self._lock``. A key whose job record no longer
        exists (pruned, or lost to a restart) is dropped and the key
        treated as new — returning a dangling id would KeyError.
        """
        existing = self._submit_keys.get(submit_key)
        if existing is None:
            return None
        job = self._jobs.get(existing)
        if job is None:
            del self._submit_keys[submit_key]
        return job

    def _evict_submit_keys_locked(self) -> None:
        """Drop the oldest terminal-job keys past the retention cap.

        Caller holds ``self._lock``. Keys whose job is still queued or
        running are never dropped — losing one would let a retried
        submission double-run an in-flight job. Insertion order is the
        age order (dicts preserve it), so eviction is oldest-first.
        """
        overflow = len(self._submit_keys) - self.submit_key_retention_max
        if overflow <= 0:
            return
        for key in list(self._submit_keys):
            if overflow <= 0:
                break
            job = self._jobs.get(self._submit_keys[key])
            if job is None or job.status in ("done", "error"):
                del self._submit_keys[key]
                overflow -= 1

    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def health(self) -> Dict:
        with self._lock:
            counts = {status: 0 for status in ("queued", "running", "done", "error")}
            for job in self._jobs.values():
                counts[job.status] += 1
            healing = dict(self.stats)
            draining = self._draining
        with self._agg_lock:
            sketch = {
                "keys": len(self.aggregator.keys()),
                "ingested": self.aggregator.ingested,
            }
        return {
            "status": "draining" if draining else "ok",
            "workers": self.workers,
            "jobs": counts,
            "profiles": len(self.store),
            "tree_hash": self.tree_hash,
            "healing": healing,
            "breaker": self.breaker.states(),
            "shard": self.shard_name,
            "sketch": sketch,
        }

    # -- streaming aggregation + replication ------------------------------

    def _load_aggregator(self) -> StreamingAggregator:
        """Resume from ``sketches.json``, else rebuild from the store.

        The rebuild replays stored history once (O(history) at boot);
        every later answer comes from the incrementally-maintained
        sketches. An unreadable sketch file is never trusted — the store
        is the source of truth and the sketches are derived state.
        """
        try:
            payload = json.loads(self._sketch_path.read_text(encoding="utf-8"))
            return StreamingAggregator.from_dict(payload)
        except (OSError, ValueError, ReproError):
            pass
        aggregator = StreamingAggregator()
        entries = sorted(
            self.store.entries(), key=lambda e: (e.get("created_at", 0.0), e["id"])
        )
        for entry in entries:
            if entry.get("parents"):
                continue
            try:
                aggregator.ingest(entry, self.store.get(entry["id"]))
            except (StoreError, ReproError):
                continue  # quarantined/corrupt blobs don't block boot
        return aggregator

    def _save_sketches_locked(self) -> None:
        """Persist the aggregator (``_agg_lock`` held); non-fatal."""
        try:
            self.store._atomic_write(
                self._sketch_path, json.dumps(self.aggregator.to_dict()) + "\n"
            )
        except (OSError, StoreError):
            with self._lock:
                self.stats["sketch_save_failures"] += 1

    def ingest_stored(self, profile_id: str, profile: ProfileData) -> bool:
        """Fold a just-stored profile into the streaming sketches."""
        entry = self.store.entry(profile_id)
        with self._agg_lock:
            fresh = self.aggregator.ingest(entry, profile)
            if fresh:
                self._save_sketches_locked()
        if fresh:
            with self._lock:
                self.stats["sketch_ingests"] += 1
        return fresh

    def _replication_targets(self, entry: Dict) -> List[str]:
        """The peer shards that should hold this profile's replica.

        Delegated to the router's placement rule: one replica in steady
        state; during a ring migration the copy also lands on the
        incoming epoch's owners (dual-write), which is what lets the
        migrator run while ingest continues.
        """
        if self.router is None or not self.shard_name:
            return []
        return self.router.replication_targets(
            entry.get("workload", ""),
            entry.get("config_hash", ""),
            source=self.shard_name,
        )

    def _replicate(self, entry: Dict, profile: ProfileData) -> None:
        """Best-effort synchronous replication to the key's peer owners.

        Failures are counted, not raised: the profile is durable on this
        shard, and content addressing makes any later re-replication
        idempotent. The replica's ``/replicate`` endpoint does not
        re-replicate, so two-shard rings cannot ping-pong. Each copy is
        tagged with the sender's ring epoch so a receiver (or a log
        reader) can spot traffic from a stale ring view.
        """
        targets = self._replication_targets(entry)
        if not targets:
            return
        import urllib.request

        body = json.dumps(
            {
                "entry": entry,
                "profile": profile.to_dict(),
                "epoch": self.router.epoch,
            }
        ).encode("utf-8")
        for target in targets:
            try:
                request = urllib.request.Request(
                    f"{self.router.url(target)}/replicate",
                    data=body,
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with urllib.request.urlopen(
                    request, timeout=self.replicate_timeout_s
                ) as response:
                    response.read()
                with self._lock:
                    self.stats["replications"] += 1
            except (OSError, ServeError):
                # ServeError: the target was decommissioned between the
                # placement decision and the send — a benign race.
                with self._lock:
                    self.stats["replication_failures"] += 1

    def accept_replica(
        self, entry: Dict, profile_payload: Dict, *, epoch: Optional[int] = None
    ) -> Dict:
        """Store a peer shard's profile copy (idempotent; no re-replication).

        ``epoch`` is the sender's ring epoch; the freshest one seen is
        kept in the stats so operators can tell when replication traffic
        still carries a stale ring view after a reshard.
        """
        profile = ProfileData.from_dict(profile_payload)
        profile_id = self.store.put(
            profile,
            workload=entry.get("workload", ""),
            profiler=entry.get("profiler", "scalene"),
            config=entry.get("config_hash", ""),
            tree_hash=entry.get("tree_hash", ""),
            parents=entry.get("parents") or (),
            created_at=entry.get("created_at"),
        )
        if entry.get("id") and entry["id"] != profile_id:
            raise ServeError(
                f"replicated profile hashed to {profile_id[:12]}…, "
                f"peer claimed {entry['id'][:12]}…"
            )
        self.ingest_stored(profile_id, profile)
        with self._lock:
            self.stats["replicated_in"] += 1
            if epoch is not None:
                self.stats["replica_epoch"] = max(
                    self.stats.get("replica_epoch", 0), int(epoch)
                )
        return {"id": profile_id, "shard": self.shard_name}

    # -- dispatch -------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            # Hold a worker slot before submitting so the job's timeout
            # clock starts at (approximately) execution start, not while
            # it waits behind other jobs in the pool's internal queue.
            while not self._slots.acquire(timeout=0.1):
                if self._stop_event.is_set():
                    return
            if not self._dispatch_one(item):
                self._slots.release()

    def _dispatch_one(self, job_id: str) -> bool:
        """Submit one job to the pool; True iff it now holds the slot."""
        with self._lock:
            job = self._jobs[job_id]
            if job.status != "queued" or self._stopping:
                return False
            if not self.breaker.allow(job.workload):
                self.stats["breaker_rejections"] += 1
                job.status = "error"
                job.error = (
                    f"circuit open for workload {job.workload!r} "
                    f"(repeated failures); retry after cooldown"
                )
                job.finished_at = time.time()
                return False
            job.status = "running"
            job.attempts += 1
            job.started_at = time.time()
            payload = job.payload()
        try:
            future = self._pool.submit(execute_job, payload)
        except BrokenProcessPool:
            # The pool broke and no callback has respawned it yet.
            with self._lock:
                self.stats["pool_breaks"] += 1
                survivors = self._pool_incident()
                self._requeue_after_incident(
                    self._jobs[job_id], "worker pool was broken at dispatch"
                )
                for other_id in survivors:
                    self._requeue_after_incident(
                        self._jobs[other_id],
                        "worker pool broken by another job's crash",
                    )
                self._release_slots(len(survivors))
            return False
        except RuntimeError:
            # Pool already shut down — daemon is stopping.
            with self._lock:
                job.status = "error"
                job.error = "daemon shut down before the job ran"
                job.finished_at = time.time()
            return False
        with self._lock:
            self._inflight[job_id] = future
            timeout = job.timeout_s if job.timeout_s else self.job_timeout_s
            self._deadlines[job_id] = time.monotonic() + timeout
        future.add_done_callback(
            lambda fut, job_id=job_id: self._on_job_done(job_id, fut)
        )
        return True

    # -- monitor (timeouts + due retries) -------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(_MONITOR_TICK_S):
            now = time.monotonic()
            with self._lock:
                for job_id, due in list(self._retry_at.items()):
                    if now >= due:
                        del self._retry_at[job_id]
                        self._queue.put(job_id)
                expired = [
                    job_id
                    for job_id, deadline in self._deadlines.items()
                    if now > deadline
                ]
                for job_id in expired:
                    self._handle_timeout(job_id)

    def _handle_timeout(self, job_id: str) -> None:
        """One job blew its deadline (called with the lock held)."""
        future = self._inflight.pop(job_id, None)
        self._deadlines.pop(job_id, None)
        if future is None:
            return
        job = self._jobs[job_id]
        self.stats["timeouts"] += 1
        self._slots.release()
        timeout = job.timeout_s if job.timeout_s else self.job_timeout_s
        if future.cancel():
            # Never reached a worker; retry costs nothing.
            self._record_failure(job, f"timed out after {timeout:.1f}s (unstarted)")
            return
        # The worker is running — and possibly hung. Recycle the whole
        # pool: the hung process is killed, innocent in-flight jobs are
        # requeued exactly once for this incident.
        survivors = self._pool_incident()
        for other_id in survivors:
            self._requeue_after_incident(
                self._jobs[other_id], "worker pool recycled after another job hung"
            )
        self._release_slots(len(survivors))
        self._record_failure(job, f"timed out after {timeout:.1f}s (worker hung)")

    # -- completion / healing -------------------------------------------

    def _on_job_done(self, job_id: str, future) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or self._inflight.get(job_id) is not future:
                return  # orphaned by a timeout or pool-break incident
            del self._inflight[job_id]
            self._deadlines.pop(job_id, None)
            self._slots.release()
            if future.cancelled():
                job.status = "error"
                job.error = "cancelled at daemon shutdown"
                job.finished_at = time.time()
                return
            exc = future.exception()
            if isinstance(exc, BrokenProcessPool):
                # A worker died hard; every in-flight future is broken.
                # First callback in wins: respawn the pool, requeue the
                # whole in-flight set exactly once for this incident.
                self.stats["pool_breaks"] += 1
                survivors = self._pool_incident()
                self._requeue_after_incident(job, "worker process died mid-job")
                for other_id in survivors:
                    self._requeue_after_incident(
                        self._jobs[other_id],
                        "worker pool broken by another job's crash",
                    )
                self._release_slots(len(survivors))
                return
        if exc is not None:
            self._record_failure(job, f"{type(exc).__name__}: {exc}")
            return
        self._persist(job, future.result())

    def _persist(self, job: Job, result_json: str) -> None:
        """Store a finished profile, healing transient store failures."""
        try:
            profile = ProfileData.from_json(result_json)
        except ReproError as exc:
            self._record_failure(job, f"unreadable worker result: {exc}")
            return
        last_error: Optional[Exception] = None
        profile_id = None
        for attempt in range(3):
            try:
                profile_id = self.store.put(
                    profile,
                    workload=job.workload,
                    profiler=job.profiler,
                    config=config_hash(
                        {
                            "mode": job.mode,
                            "scale": job.scale,
                            "overrides": job.config or {},
                        }
                    ),
                    tree_hash=self.tree_hash,
                )
                break
            except StoreError as exc:
                # E.g. an injected torn write: the partial object/index
                # is healed by the next put (verify-and-rewrite).
                last_error = exc
                with self._lock:
                    self.stats["store_write_retries"] += 1
                time.sleep(0.01)
        if profile_id is None:
            self._record_failure(
                job, f"store write failed after 3 attempts: {last_error}"
            )
            return
        try:
            self.ingest_stored(profile_id, profile)
            self._replicate(self.store.entry(profile_id), profile)
        except (StoreError, ServeError):
            pass  # the job's profile is durable; sketches/replicas heal
        with self._lock:
            self.breaker.record_success(job.workload)
            job.status = "done"
            job.profile_id = profile_id
            job.finished_at = time.time()

    def _record_failure(self, job: Job, message: str) -> None:
        """A clean failure: charge the breaker, retry or give up."""
        with self._lock:
            self.breaker.record_failure(job.workload)
            if not self._stopping and self.retry.should_retry(job.attempts):
                self.stats["retries"] += 1
                job.status = "queued"
                job.error = None
                self._retry_at[job.id] = time.monotonic() + self.retry.delay(
                    job.attempts
                )
                return
            job.status = "error"
            job.error = message
            job.finished_at = time.time()

    # -- pool-break incident handling ------------------------------------

    def _pool_incident(self) -> List[str]:
        """Respawn the pool; returns the orphaned in-flight job ids.

        Called with the lock held. Clearing ``_inflight`` first is what
        makes requeues exactly-once: every other broken future's
        callback now fails the orphan-guard identity check and returns
        without acting.
        """
        survivors = list(self._inflight)
        self._inflight.clear()
        self._deadlines.clear()
        old_pool = self._pool
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self.stats["pool_respawns"] += 1
        if old_pool is not None:
            threading.Thread(
                target=_dispose_pool, args=(old_pool,), daemon=True
            ).start()
        return survivors

    def _requeue_after_incident(self, job: Job, note: str) -> None:
        """Requeue a pool-break victim (lock held), capped per job."""
        job.crash_requeues += 1
        if job.crash_requeues > self.max_crash_requeues:
            job.status = "error"
            job.error = (
                f"gave up after {job.crash_requeues} pool-break requeues: {note}"
            )
            job.finished_at = time.time()
            return
        self.stats["requeues"] += 1
        job.status = "queued"
        job.error = None
        self._queue.put(job.id)

    def _release_slots(self, n: int) -> None:
        for _ in range(n):
            self._slots.release()


def _dispose_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a broken/hung pool's workers and reap it, off-thread."""
    try:
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — already-dead workers
                pass
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 — disposal must never propagate
        pass


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning :class:`ProfileDaemon`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def daemon(self) -> ProfileDaemon:
        return self.server.profile_daemon

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass  # keep the test/CI output clean

    # -- responses ------------------------------------------------------

    def _send(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _json(self, payload: Dict, status: int = 200) -> None:
        self._send(status, json.dumps(payload, indent=2) + "\n", "application/json")

    def _error(self, status: int, message: str) -> None:
        self._json({"error": message}, status=status)

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServeError("request body must be a JSON object")
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    #: Listing endpoints cap their payload unless the caller pages
    #: explicitly; ``limit=0`` requests everything.
    DEFAULT_PAGE_LIMIT = 500

    def _page_params(self, query: Dict) -> "tuple":
        try:
            limit = int(query.get("limit", self.DEFAULT_PAGE_LIMIT))
            offset = int(query.get("offset", 0))
        except ValueError as exc:
            raise ServeError(f"limit/offset must be integers: {exc}") from None
        if limit < 0 or offset < 0:
            raise ServeError("limit/offset must be non-negative")
        return limit, offset

    @staticmethod
    def _paginate(items: List, limit: int, offset: int) -> List:
        items = items[offset:] if offset else items
        return items[:limit] if limit else items

    # -- routing --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib casing
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[0] for k, v in parse_qs(url.query).items()}
        try:
            if parts == ["health"]:
                self._json(self.daemon.health())
            elif parts == ["jobs"]:
                self._json({"jobs": [j.to_dict() for j in self.daemon.jobs()]})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._json({"job": self.daemon.job(parts[1]).to_dict()})
            elif parts == ["profiles"]:
                entries = self.daemon.store.find(
                    workload=query.get("workload"),
                    profiler=query.get("profiler"),
                    config_hash=query.get("config_hash"),
                    tree_hash=query.get("tree_hash"),
                )
                limit, offset = self._page_params(query)
                self._json(
                    {
                        "profiles": self._paginate(entries, limit, offset),
                        "total": len(entries),
                        "limit": limit,
                        "offset": offset,
                    }
                )
            elif len(parts) == 2 and parts[0] == "profiles":
                self._get_profile(parts[1], query)
            elif parts == ["diff"]:
                if "a" not in query or "b" not in query:
                    raise ServeError("diff needs ?a=<id>&b=<id>")
                diff = diff_stored(self.daemon.store, query["a"], query["b"])
                self._json({"diff": diff.to_dict()})
            elif parts == ["trend"]:
                self._trend(query)
            elif parts == ["sketch"]:
                self._sketch(query)
            elif parts == ["shards"]:
                if self.daemon.router is None:
                    raise ServeError("this daemon is not part of a shard plane")
                self._json(self.daemon.router.describe())
            elif parts == ["crossflow"]:
                if "id" not in query:
                    raise ServeError("crossflow needs ?id=<profile_id>")
                self._crossflow(query["id"])
            elif parts == ["contention"]:
                if "id" not in query:
                    raise ServeError("contention needs ?id=<profile_id>")
                self._contention(query["id"])
            else:
                self._error(404, f"unknown endpoint GET {url.path}")
        except StoreError as exc:
            self._error(404, str(exc))
        except ReproError as exc:
            self._error(400, str(exc))

    def do_POST(self) -> None:  # noqa: N802 — stdlib casing
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                job = self.daemon.submit(self._read_body())
                self._json({"job": job.to_dict()}, status=202)
            elif parts == ["merge"]:
                body = self._read_body()
                ids = body.get("ids")
                if ids is None:
                    # Sketch-backed merge view of an index slice: the
                    # combined per-line statistics without replaying the
                    # constituent profiles (no new profile is stored).
                    self._sketch(
                        {
                            k: body[k]
                            for k in ("workload", "profiler", "config_hash")
                            if body.get(k) is not None
                        }
                    )
                    return
                if not isinstance(ids, list) or len(ids) < 2:
                    raise ServeError("merge needs {'ids': [<id>, <id>, ...]}")
                merged_id, merged = merge_stored(self.daemon.store, ids)
                self._json(
                    {"id": merged_id, "profile": merged.to_dict()}, status=201
                )
            elif parts == ["replicate"]:
                body = self._read_body()
                entry = body.get("entry")
                profile = body.get("profile")
                if not isinstance(entry, dict) or not isinstance(profile, dict):
                    raise ServeError(
                        "replicate needs {'entry': {...}, 'profile': {...}}"
                    )
                self._json(
                    self.daemon.accept_replica(
                        entry, profile, epoch=body.get("epoch")
                    ),
                    status=201,
                )
            else:
                self._error(404, f"unknown endpoint POST {url.path}")
        except StoreError as exc:
            self._error(404, str(exc))
        except ReproError as exc:
            self._error(400, str(exc))

    def _trend(self, query: Dict) -> None:
        """Trend answers: streaming sketch by default, ``?exact=1`` replays.

        A ``tree_hash`` filter also forces the exact path — sketches are
        keyed on ``(workload, profiler, config_hash)`` only.
        """
        limit, offset = self._page_params(query)
        exact = query.get("exact") in ("1", "true", "yes") or "tree_hash" in query
        if exact:
            points = trend(
                self.daemon.store,
                workload=query.get("workload"),
                profiler=query.get("profiler"),
                config_hash=query.get("config_hash"),
                tree_hash=query.get("tree_hash"),
            )
            self._json(
                {
                    "trend": self._paginate(points, limit, offset),
                    "regressions": find_regressions(points),
                    "source": "exact",
                    "total": len(points),
                    "limit": limit,
                    "offset": offset,
                }
            )
            return
        daemon = self.daemon
        with daemon._agg_lock:
            sketch = daemon.aggregator.sketch(
                workload=query.get("workload"),
                profiler=query.get("profiler"),
                config_hash=query.get("config_hash"),
            )
            if sketch is None:
                self._json(
                    {
                        "trend": [],
                        "regressions": [],
                        "source": "sketch",
                        "total": 0,
                        "limit": limit,
                        "offset": offset,
                    }
                )
                return
            payload = {
                "trend": sketch.trend_points(limit, offset),
                "regressions": sketch.regressions(),
                "summary": sketch.summary(),
                "source": "sketch",
                "total": len(sketch.recent),
                "limit": limit,
                "offset": offset,
            }
        self._json(payload)

    def _sketch(self, query: Dict) -> None:
        """Streaming per-line statistics for one index slice."""
        daemon = self.daemon
        want_state = query.get("state") in ("1", "true", "yes")
        try:
            top = int(query.get("top", 50))
        except ValueError as exc:
            raise ServeError(f"top must be an integer: {exc}") from None
        with daemon._agg_lock:
            if want_state:
                self._json({"state": daemon.aggregator.to_dict()})
                return
            sketch = daemon.aggregator.sketch(
                workload=query.get("workload"),
                profiler=query.get("profiler"),
                config_hash=query.get("config_hash"),
            )
            if sketch is None:
                self._json({"summary": None, "lines": [], "keys": daemon.aggregator.keys()})
                return
            payload = {
                "summary": sketch.summary(),
                "lines": sketch.line_table(top),
                "regressions": sketch.regressions(),
                "keys": daemon.aggregator.keys(),
            }
        self._json(payload)

    def _crossflow(self, profile_id: str) -> None:
        """Join a stored profile's crossing counters with the boundary
        lints of its workload's source, rebuilt from the registry (the
        source templates keep line numbers stable across scales)."""
        from repro.analysis.crossflow import analyze_crossflow
        from repro.workloads import get_workload

        store = self.daemon.store
        profile = store.get(profile_id)
        entry = store.entry(profile_id)
        workload_name = entry.get("workload") or ""
        if not workload_name:
            raise ServeError(
                f"profile {profile_id} carries no workload metadata "
                "(merged profiles are not supported)"
            )
        workload = get_workload(workload_name)
        findings = analyze_crossflow(
            workload.source(1.0), profile, f"{workload_name}.py"
        )
        self._json(
            {
                "id": entry["id"],
                "workload": workload_name,
                "crossings": {
                    "total": profile.total_crossings,
                    "overhead_s": profile.total_crossing_overhead_s,
                    "bytes_to_native": profile.total_bytes_to_native,
                    "bytes_to_python": profile.total_bytes_to_python,
                },
                "findings": [f.to_dict() for f in findings],
            }
        )

    def _contention(self, profile_id: str) -> None:
        """A stored profile's lock-contention view: totals, the per-line
        blocked-time table, and the who-blocks-whom edge list."""
        store = self.daemon.store
        profile = store.get(profile_id)
        entry = store.entry(profile_id)
        self._json(
            {
                "id": entry["id"],
                "locks": {
                    "blocked_s": profile.total_lock_blocked_s,
                    "contentions": profile.total_lock_contentions,
                    "acquisitions": profile.total_lock_acquisitions,
                },
                "lines": [
                    {
                        "filename": line.filename,
                        "lineno": line.lineno,
                        "blocked_s": line.lock_blocked_s,
                        "contentions": line.lock_contentions,
                        "acquisitions": line.lock_acquisitions,
                    }
                    for line in sorted(
                        profile.lines, key=lambda l: -l.lock_blocked_s
                    )
                    if line.lock_contentions > 0 or line.lock_acquisitions > 0
                ],
                "edges": [edge.to_dict() for edge in profile.lock_edges],
            }
        )

    def _get_profile(self, profile_id: str, query: Dict) -> None:
        store = self.daemon.store
        profile = store.get(profile_id)
        fmt = query.get("format", "json")
        if fmt == "html":
            self._send(200, render_html(profile, title=profile_id[:12]), "text/html")
        elif fmt == "json":
            entry = store.entry(profile_id)
            payload = json.loads(render_json(profile))
            self._json({"id": entry["id"], "meta": entry, "profile": payload})
        else:
            raise ServeError(f"unknown format {fmt!r}; use json or html")
