"""The continuous-profiling daemon: job queue, worker pool, HTTP API.

``python -m repro serve`` runs one of these. Architecture::

    HTTP clients ──POST /jobs──▶ job queue ──dispatcher──▶ worker pool
         ▲                                                (N processes,
         │                                                 execute_job)
         └──GET /profiles, /diff, /trend ◀── ProfileStore ◀── results

* Submissions are validated synchronously (bad payloads fail the POST),
  queued, and dispatched to a ``ProcessPoolExecutor`` — each worker runs
  the workload under the simulated runtime and ships the finished
  profile back as JSON text.
* The daemon process is the store's only writer: worker results are
  persisted on arrival, keyed by
  ``(workload, profiler, config hash, git tree hash)``.
* The API is stdlib ``http.server`` serving JSON; profile payloads
  render through the existing :mod:`repro.ui` backends
  (``render_json`` / ``render_html``).

Endpoints::

    GET  /health                  liveness + queue/worker/store counters
    POST /jobs                    submit {workload, profiler?, mode?, scale?, config?}
    GET  /jobs                    all jobs
    GET  /jobs/<id>               one job (status, profile_id when done)
    GET  /profiles                store index (?workload=&profiler=&...)
    GET  /profiles/<id>           stored profile (?format=html for the web UI)
    POST /merge                   {"ids": [...]} -> merged profile id
    GET  /diff?a=<id>&b=<id>      per-line/function/leak deltas (b − a)
    GET  /trend?workload=...      time-ordered headline numbers + regressions
"""

from __future__ import annotations

import json
import queue
import threading
from concurrent.futures import ProcessPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Union
from urllib.parse import parse_qs, urlparse

from repro.core.profile_data import ProfileData
from repro.errors import ReproError, ServeError, StoreError
from repro.serve.aggregate import diff_stored, find_regressions, merge_stored, trend
from repro.serve.jobs import Job, execute_job, new_job
from repro.serve.store import ProfileStore, config_hash, git_tree_hash
from repro.ui import render_html, render_json

_SHUTDOWN = object()


class ProfileDaemon:
    """Job-serving daemon around a :class:`ProfileStore`."""

    def __init__(
        self,
        store: Union[ProfileStore, str],
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.store = store if isinstance(store, ProfileStore) else ProfileStore(store)
        self.workers = max(1, workers)
        self.tree_hash = git_tree_hash()
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.RLock()
        self._queue: "queue.Queue" = queue.Queue()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.profile_daemon = self
        self._threads: List[threading.Thread] = []
        self._started = False

    # -- lifecycle ------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        if self._started:
            raise ServeError("daemon already started")
        self._started = True
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        server = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._threads = [dispatcher, server]
        dispatcher.start()
        server.start()

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self._httpd.shutdown()
        self._httpd.server_close()
        self._queue.put(_SHUTDOWN)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        for thread in self._threads:
            thread.join(timeout=5)

    def serve_forever(self) -> None:
        """Block until interrupted (the ``python -m repro serve`` loop)."""
        try:
            while True:
                threading.Event().wait(3600)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    # -- job management -------------------------------------------------

    def submit(self, payload: Dict) -> Job:
        """Validate and enqueue a job; returns it in ``queued`` state."""
        job = new_job(payload)
        with self._lock:
            self._jobs[job.id] = job
        self._queue.put(job.id)
        return job

    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def health(self) -> Dict:
        with self._lock:
            counts = {status: 0 for status in ("queued", "running", "done", "error")}
            for job in self._jobs.values():
                counts[job.status] += 1
        return {
            "status": "ok",
            "workers": self.workers,
            "jobs": counts,
            "profiles": len(self.store),
            "tree_hash": self.tree_hash,
        }

    def _dispatch_loop(self) -> None:
        import time

        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            with self._lock:
                job = self._jobs[item]
                job.status = "running"
                job.started_at = time.time()
            try:
                future = self._pool.submit(execute_job, job.payload())
            except RuntimeError:
                # Pool already shut down — daemon is stopping.
                with self._lock:
                    job.status = "error"
                    job.error = "daemon shut down before the job ran"
                continue
            future.add_done_callback(
                lambda fut, job_id=job.id: self._on_job_done(job_id, fut)
            )

    def _on_job_done(self, job_id: str, future) -> None:
        import time

        with self._lock:
            job = self._jobs[job_id]
        try:
            profile = ProfileData.from_json(future.result())
            profile_id = self.store.put(
                profile,
                workload=job.workload,
                profiler=job.profiler,
                config=config_hash(
                    {"mode": job.mode, "scale": job.scale, "overrides": job.config or {}}
                ),
                tree_hash=self.tree_hash,
            )
        except Exception as exc:  # noqa: BLE001 — job errors become job state
            with self._lock:
                job.status = "error"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()
            return
        with self._lock:
            job.status = "done"
            job.profile_id = profile_id
            job.finished_at = time.time()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning :class:`ProfileDaemon`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def daemon(self) -> ProfileDaemon:
        return self.server.profile_daemon

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass  # keep the test/CI output clean

    # -- responses ------------------------------------------------------

    def _send(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _json(self, payload: Dict, status: int = 200) -> None:
        self._send(status, json.dumps(payload, indent=2) + "\n", "application/json")

    def _error(self, status: int, message: str) -> None:
        self._json({"error": message}, status=status)

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServeError("request body must be a JSON object")
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    # -- routing --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib casing
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[0] for k, v in parse_qs(url.query).items()}
        try:
            if parts == ["health"]:
                self._json(self.daemon.health())
            elif parts == ["jobs"]:
                self._json({"jobs": [j.to_dict() for j in self.daemon.jobs()]})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._json({"job": self.daemon.job(parts[1]).to_dict()})
            elif parts == ["profiles"]:
                entries = self.daemon.store.find(
                    workload=query.get("workload"),
                    profiler=query.get("profiler"),
                    config_hash=query.get("config_hash"),
                    tree_hash=query.get("tree_hash"),
                )
                self._json({"profiles": entries})
            elif len(parts) == 2 and parts[0] == "profiles":
                self._get_profile(parts[1], query)
            elif parts == ["diff"]:
                if "a" not in query or "b" not in query:
                    raise ServeError("diff needs ?a=<id>&b=<id>")
                diff = diff_stored(self.daemon.store, query["a"], query["b"])
                self._json({"diff": diff.to_dict()})
            elif parts == ["trend"]:
                points = trend(
                    self.daemon.store,
                    workload=query.get("workload"),
                    profiler=query.get("profiler"),
                    config_hash=query.get("config_hash"),
                    tree_hash=query.get("tree_hash"),
                )
                self._json(
                    {"trend": points, "regressions": find_regressions(points)}
                )
            else:
                self._error(404, f"unknown endpoint GET {url.path}")
        except StoreError as exc:
            self._error(404, str(exc))
        except ReproError as exc:
            self._error(400, str(exc))

    def do_POST(self) -> None:  # noqa: N802 — stdlib casing
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                job = self.daemon.submit(self._read_body())
                self._json({"job": job.to_dict()}, status=202)
            elif parts == ["merge"]:
                body = self._read_body()
                ids = body.get("ids")
                if not isinstance(ids, list) or len(ids) < 2:
                    raise ServeError("merge needs {'ids': [<id>, <id>, ...]}")
                merged_id, merged = merge_stored(self.daemon.store, ids)
                self._json(
                    {"id": merged_id, "profile": merged.to_dict()}, status=201
                )
            else:
                self._error(404, f"unknown endpoint POST {url.path}")
        except StoreError as exc:
            self._error(404, str(exc))
        except ReproError as exc:
            self._error(400, str(exc))

    def _get_profile(self, profile_id: str, query: Dict) -> None:
        store = self.daemon.store
        profile = store.get(profile_id)
        fmt = query.get("format", "json")
        if fmt == "html":
            self._send(200, render_html(profile, title=profile_id[:12]), "text/html")
        elif fmt == "json":
            entry = store.entry(profile_id)
            payload = json.loads(render_json(profile))
            self._json({"id": entry["id"], "meta": entry, "profile": payload})
        else:
            raise ServeError(f"unknown format {fmt!r}; use json or html")
