"""Self-healing policies for the profiling daemon.

Two small, deterministic-when-seeded primitives the daemon composes:

* :class:`RetryPolicy` — exponential backoff with jitter. Attempt *n*
  (1-based) waits ``base * 2**(n-1)`` seconds, capped at ``max_delay_s``
  and stretched by up to ``jitter`` (a fraction) of itself so a burst of
  failures doesn't retry in lockstep. The jitter stream is seeded, so a
  chaos run replays the exact same schedule.
* :class:`CircuitBreaker` — per-key (the daemon keys by workload name)
  quarantine of repeat offenders. ``failure_threshold`` consecutive
  failures open the circuit: further work for that key is rejected
  without touching a worker until ``cooldown_s`` passes, at which point
  exactly one probe is let through (*half-open*); its outcome closes or
  re-opens the circuit.

Both are plain in-process objects guarded by the daemon's own lock —
they keep no threads and do no I/O.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict

#: Circuit states (classic Nygard naming).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class RetryPolicy:
    """Exponential backoff + seeded jitter (see module docstring)."""

    def __init__(
        self,
        max_attempts: int = 4,
        *,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.max_attempts = max(1, int(max_attempts))
        self.base_delay_s = float(base_delay_s)
        self.max_delay_s = float(max_delay_s)
        self.jitter = float(jitter)
        self._rng = random.Random(seed)

    def should_retry(self, attempts: int) -> bool:
        """True while ``attempts`` (runs so far) leaves budget for one more."""
        return attempts < self.max_attempts

    def delay(self, attempts: int) -> float:
        """Backoff before the retry that follows ``attempts`` failed runs."""
        exp = min(max(attempts, 1) - 1, 16)  # clamp the exponent, not the float
        base = min(self.max_delay_s, self.base_delay_s * (2 ** exp))
        return base * (1.0 + self.jitter * self._rng.random())


@dataclass
class _Circuit:
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    #: Trips (closed/half-open -> open) over the circuit's lifetime.
    trips: int = 0


class CircuitBreaker:
    """Per-key consecutive-failure quarantine (see module docstring)."""

    def __init__(
        self,
        failure_threshold: int = 3,
        *,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._circuits: Dict[str, _Circuit] = {}

    def _circuit(self, key: str) -> _Circuit:
        circuit = self._circuits.get(key)
        if circuit is None:
            circuit = self._circuits[key] = _Circuit()
        return circuit

    def allow(self, key: str) -> bool:
        """May work for ``key`` proceed? (May transition open→half-open.)"""
        circuit = self._circuit(key)
        if circuit.state == OPEN:
            if self._clock() - circuit.opened_at >= self.cooldown_s:
                circuit.state = HALF_OPEN  # one probe goes through
                return True
            return False
        if circuit.state == HALF_OPEN:
            return False  # a probe is already in flight
        return True

    def record_success(self, key: str) -> None:
        circuit = self._circuit(key)
        circuit.state = CLOSED
        circuit.consecutive_failures = 0

    def record_failure(self, key: str) -> None:
        circuit = self._circuit(key)
        circuit.consecutive_failures += 1
        if (
            circuit.state == HALF_OPEN
            or circuit.consecutive_failures >= self.failure_threshold
        ):
            if circuit.state != OPEN:
                circuit.trips += 1
            circuit.state = OPEN
            circuit.opened_at = self._clock()

    def state(self, key: str) -> str:
        return self._circuit(key).state

    def states(self) -> Dict[str, Dict]:
        """Snapshot for ``/health``: every non-closed or tripped circuit."""
        return {
            key: {
                "state": c.state,
                "consecutive_failures": c.consecutive_failures,
                "trips": c.trips,
            }
            for key, c in self._circuits.items()
            if c.state != CLOSED or c.trips
        }
