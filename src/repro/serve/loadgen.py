"""Load generator for the scale-out serve plane.

Drives a gateway (or a single daemon) with a burst of job submissions
from concurrent worker threads, measuring what the scale-out plane is
supposed to deliver: **accept throughput** (submissions/sec) and
**accept latency** (p50/p99) while thousands of jobs sit queued behind
the batching front-end. Backs ``python -m repro loadgen`` and
``benchmarks/bench_serve_scale.py``.

Each worker keeps one persistent HTTP connection (keep-alive) and
submits jobs round-robin over the configured workloads at a tiny scale;
latencies are measured per request with a monotonic clock. The report
also samples ``/health`` afterwards so a run records how many of the
accepted jobs the plane had already dispatched/completed.

The loadgen is also the chaos driver for the durable control plane:
``kill_at`` SIGKILLs a gateway process after N accepted jobs and
``reshard_at`` posts ``/reshard`` mid-burst — with ``submit_keys`` on,
each submission carries an idempotency key and failed sends reconnect
with seeded jittered backoff and **resubmit the same key**, so a burst
rides through a gateway restart with every job accepted exactly once.
"""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence
from urllib.parse import urlparse

from repro.errors import ServeError

#: Cheap, CPU-light workloads for load tests (tiny scale keeps each
#: job's execution negligible next to the submission path under test).
DEFAULT_WORKLOADS = ("pprint", "fannkuch", "raytrace", "balanced")


@dataclass
class LoadReport:
    """One load-generation run's measurements."""

    submitted: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    submissions_per_s: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p90_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_max_ms: float = 0.0
    concurrency: int = 0
    gateway_health: Dict = field(default_factory=dict)
    job_ids: List[str] = field(default_factory=list)
    resubmissions: int = 0
    deduped: int = 0
    killed_gateway: bool = False
    resharded: bool = False

    def to_dict(self) -> Dict:
        return {
            "submitted": self.submitted,
            "errors": self.errors,
            "elapsed_s": self.elapsed_s,
            "submissions_per_s": self.submissions_per_s,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p90_ms": self.latency_p90_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_max_ms": self.latency_max_ms,
            "concurrency": self.concurrency,
            "gateway_health": self.gateway_health,
            "resubmissions": self.resubmissions,
            "deduped": self.deduped,
            "killed_gateway": self.killed_gateway,
            "resharded": self.resharded,
        }


class _ChaosTriggers:
    """Fires the kill/reshard actions once the accept counter crosses
    their thresholds. Shared by every submitter thread."""

    def __init__(
        self,
        url: str,
        *,
        kill_at: Optional[int],
        kill_pid: Optional[int],
        reshard_at: Optional[int],
        reshard_action: str,
        reshard_shard: Optional[str],
    ) -> None:
        self.url = url
        self.kill_at = kill_at
        self.kill_pid = kill_pid
        self.reshard_at = reshard_at
        self.reshard_action = reshard_action
        self.reshard_shard = reshard_shard
        self.killed = False
        self.resharded = False
        self._accepted = 0
        self._lock = threading.Lock()

    def accepted(self) -> None:
        with self._lock:
            self._accepted += 1
            count = self._accepted
            fire_kill = (
                self.kill_at is not None
                and not self.killed
                and count >= self.kill_at
            )
            if fire_kill:
                self.killed = True
            fire_reshard = (
                self.reshard_at is not None
                and not self.resharded
                and count >= self.reshard_at
            )
            if fire_reshard:
                self.resharded = True
        if fire_kill and self.kill_pid:
            try:
                os.kill(self.kill_pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
        if fire_reshard:
            # Off-thread: the admin call must not stall the submitter.
            threading.Thread(target=self._post_reshard, daemon=True).start()

    def _post_reshard(self) -> None:
        from repro.serve.client import ServeClient

        body: Dict = {"action": self.reshard_action}
        if self.reshard_shard:
            body["shard"] = self.reshard_shard
        try:
            ServeClient(self.url, timeout=10.0)._request(
                "/reshard", body=body, idempotent=False
            )
        except ServeError:
            self.resharded = False  # let a later accept retry the trigger


class _Submitter(threading.Thread):
    """One persistent keep-alive connection submitting jobs in a loop.

    With ``submit_keys`` on, every job carries a unique idempotency key
    and a failed send is **resubmitted** (same key, fresh connection)
    with seeded jittered backoff until ``retry_window_s`` runs out —
    the path that carries a burst across a gateway restart. Without
    keys, a failed send just counts an error (a blind retry could
    double-run the job).
    """

    def __init__(
        self,
        url: str,
        payloads: Sequence[Dict],
        count: int,
        *,
        timeout_s: float,
        worker: int = 0,
        submit_keys: bool = False,
        retry_window_s: float = 0.0,
        triggers: Optional[_ChaosTriggers] = None,
    ) -> None:
        super().__init__(daemon=True)
        parsed = urlparse(url)
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.payloads = payloads
        self.count = count
        self.timeout_s = timeout_s
        self.worker = worker
        self.submit_keys = submit_keys
        self.retry_window_s = retry_window_s
        self.triggers = triggers
        self._rng = random.Random(worker + 1)
        self.latencies_ms: List[float] = []
        self.job_ids: List[str] = []
        self.errors = 0
        self.resubmissions = 0
        self.deduped = 0
        # Keyless requests are identical per workload — pre-frame them
        # so the measured hot loop stays a sendall + recv.
        self._frames: Optional[List[bytes]] = (
            None
            if submit_keys
            else [self._frame(dict(p)) for p in payloads]
        )

    @staticmethod
    def _frame(payload: Dict) -> bytes:
        body = json.dumps(payload).encode("utf-8")
        return (
            b"POST /jobs HTTP/1.1\r\n"
            b"Host: gateway\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )

    def _encode(self, index: int) -> bytes:
        if self._frames is not None:
            return self._frames[index % len(self._frames)]
        payload = dict(self.payloads[index % len(self.payloads)])
        payload["submit_key"] = f"sk-{self.worker}-{index}"
        return self._frame(payload)

    def run(self) -> None:
        sock: Optional[socket.socket] = None
        try:
            for i in range(self.count):
                request = self._encode(i)
                started = time.perf_counter()
                deadline = started + self.retry_window_s
                attempt = 0
                while True:
                    attempt += 1
                    try:
                        if sock is None:
                            sock = socket.create_connection(
                                (self.host, self.port), timeout=self.timeout_s
                            )
                            sock.setsockopt(
                                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                            )
                        sock.sendall(request)
                        payload = _read_response(sock, self.timeout_s)
                        break
                    except OSError:
                        if sock is not None:
                            try:
                                sock.close()
                            except OSError:
                                pass
                            sock = None
                        # Only keyed submissions are safe to resend.
                        if (
                            self.submit_keys
                            and time.perf_counter() < deadline
                        ):
                            self.resubmissions += 1
                            time.sleep(
                                min(1.0, 0.05 * (2 ** min(attempt, 4)))
                                * (0.5 + self._rng.random())
                            )
                            continue
                        payload = None
                        break
                if payload is None:
                    self.errors += 1
                    continue
                self.latencies_ms.append((time.perf_counter() - started) * 1000.0)
                job = payload.get("job") or {}
                if job.get("id"):
                    self.job_ids.append(job["id"])
                    if job.get("deduped"):
                        self.deduped += 1
                    if self.triggers is not None:
                        self.triggers.accepted()
                else:
                    self.errors += 1
        finally:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass


def _read_response(sock: socket.socket, timeout_s: float) -> Dict:
    """Read one Content-Length-framed HTTP response and parse its JSON."""
    sock.settimeout(timeout_s)
    buf = b""
    while b"\r\n\r\n" not in buf:
        data = sock.recv(65536)
        if not data:
            raise OSError("connection closed mid-response")
        buf += data
    head, _, rest = buf.partition(b"\r\n\r\n")
    length = 0
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    while len(rest) < length:
        data = sock.recv(65536)
        if not data:
            raise OSError("connection closed mid-body")
        rest += data
    try:
        return json.loads(rest[:length].decode("utf-8"))
    except ValueError:
        return {}


def _percentile(ordered: List[float], q: float) -> float:
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


def run_load(
    url: str,
    *,
    jobs: int = 1000,
    concurrency: int = 8,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    scale: float = 0.02,
    timeout_s: float = 30.0,
    collect_ids: bool = False,
    submit_keys: bool = False,
    retry_window_s: float = 30.0,
    kill_at: Optional[int] = None,
    kill_pid: Optional[int] = None,
    reshard_at: Optional[int] = None,
    reshard_action: str = "add",
    reshard_shard: Optional[str] = None,
) -> LoadReport:
    """Submit ``jobs`` jobs against ``url`` from ``concurrency`` threads.

    Chaos knobs: ``kill_at``/``kill_pid`` SIGKILL a gateway process
    after that many accepted jobs, ``reshard_at`` posts ``/reshard``
    mid-burst. Both imply ``submit_keys`` (resubmission must be safe for
    the burst to survive); ``retry_window_s`` bounds how long a worker
    keeps reconnecting while the gateway is away.
    """
    if jobs < 1 or concurrency < 1:
        raise ServeError("loadgen needs jobs >= 1 and concurrency >= 1")
    if kill_at is not None or reshard_at is not None:
        submit_keys = True
    payloads = [
        {"workload": w, "mode": "cpu", "scale": scale, "timeout_s": 120}
        for w in workloads
    ]
    triggers = None
    if kill_at is not None or reshard_at is not None:
        triggers = _ChaosTriggers(
            url,
            kill_at=kill_at,
            kill_pid=kill_pid,
            reshard_at=reshard_at,
            reshard_action=reshard_action,
            reshard_shard=reshard_shard,
        )
    per_worker = [jobs // concurrency] * concurrency
    for i in range(jobs % concurrency):
        per_worker[i] += 1
    submitters = [
        _Submitter(
            url,
            payloads,
            count,
            timeout_s=timeout_s,
            worker=index,
            submit_keys=submit_keys,
            retry_window_s=retry_window_s if submit_keys else 0.0,
            triggers=triggers,
        )
        for index, count in enumerate(per_worker)
        if count > 0
    ]
    started = time.perf_counter()
    for submitter in submitters:
        submitter.start()
    for submitter in submitters:
        submitter.join()
    elapsed = time.perf_counter() - started

    latencies = sorted(
        ms for submitter in submitters for ms in submitter.latencies_ms
    )
    report = LoadReport(
        submitted=len(latencies),
        errors=sum(s.errors for s in submitters),
        elapsed_s=elapsed,
        submissions_per_s=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=_percentile(latencies, 0.50),
        latency_p90_ms=_percentile(latencies, 0.90),
        latency_p99_ms=_percentile(latencies, 0.99),
        latency_max_ms=latencies[-1] if latencies else 0.0,
        concurrency=len(submitters),
        resubmissions=sum(s.resubmissions for s in submitters),
        deduped=sum(s.deduped for s in submitters),
        killed_gateway=bool(triggers and triggers.killed),
        resharded=bool(triggers and triggers.resharded),
    )
    if collect_ids:
        report.job_ids = [jid for s in submitters for jid in s.job_ids]
    try:
        from repro.serve.client import ServeClient

        report.gateway_health = ServeClient(url, timeout=10.0).health()
    except ServeError:
        report.gateway_health = {}
    return report
