"""Load generator for the scale-out serve plane.

Drives a gateway (or a single daemon) with a burst of job submissions
from concurrent worker threads, measuring what the scale-out plane is
supposed to deliver: **accept throughput** (submissions/sec) and
**accept latency** (p50/p99) while thousands of jobs sit queued behind
the batching front-end. Backs ``python -m repro loadgen`` and
``benchmarks/bench_serve_scale.py``.

Each worker keeps one persistent HTTP connection (keep-alive) and
submits jobs round-robin over the configured workloads at a tiny scale;
latencies are measured per request with a monotonic clock. The report
also samples ``/health`` afterwards so a run records how many of the
accepted jobs the plane had already dispatched/completed.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence
from urllib.parse import urlparse

from repro.errors import ServeError

#: Cheap, CPU-light workloads for load tests (tiny scale keeps each
#: job's execution negligible next to the submission path under test).
DEFAULT_WORKLOADS = ("pprint", "fannkuch", "raytrace", "balanced")


@dataclass
class LoadReport:
    """One load-generation run's measurements."""

    submitted: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    submissions_per_s: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p90_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_max_ms: float = 0.0
    concurrency: int = 0
    gateway_health: Dict = field(default_factory=dict)
    job_ids: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "submitted": self.submitted,
            "errors": self.errors,
            "elapsed_s": self.elapsed_s,
            "submissions_per_s": self.submissions_per_s,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p90_ms": self.latency_p90_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_max_ms": self.latency_max_ms,
            "concurrency": self.concurrency,
            "gateway_health": self.gateway_health,
        }


class _Submitter(threading.Thread):
    """One persistent keep-alive connection submitting jobs in a loop."""

    def __init__(
        self,
        url: str,
        payloads: Sequence[bytes],
        count: int,
        *,
        timeout_s: float,
    ) -> None:
        super().__init__(daemon=True)
        parsed = urlparse(url)
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.payloads = payloads
        self.count = count
        self.timeout_s = timeout_s
        self.latencies_ms: List[float] = []
        self.job_ids: List[str] = []
        self.errors = 0

    def run(self) -> None:
        sock: Optional[socket.socket] = None
        try:
            for i in range(self.count):
                body = self.payloads[i % len(self.payloads)]
                request = (
                    b"POST /jobs HTTP/1.1\r\n"
                    b"Host: gateway\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                    b"\r\n" + body
                )
                started = time.perf_counter()
                try:
                    if sock is None:
                        sock = socket.create_connection(
                            (self.host, self.port), timeout=self.timeout_s
                        )
                        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    sock.sendall(request)
                    payload = _read_response(sock, self.timeout_s)
                except OSError:
                    self.errors += 1
                    if sock is not None:
                        try:
                            sock.close()
                        except OSError:
                            pass
                        sock = None
                    continue
                self.latencies_ms.append((time.perf_counter() - started) * 1000.0)
                job = payload.get("job") or {}
                if job.get("id"):
                    self.job_ids.append(job["id"])
                else:
                    self.errors += 1
        finally:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass


def _read_response(sock: socket.socket, timeout_s: float) -> Dict:
    """Read one Content-Length-framed HTTP response and parse its JSON."""
    sock.settimeout(timeout_s)
    buf = b""
    while b"\r\n\r\n" not in buf:
        data = sock.recv(65536)
        if not data:
            raise OSError("connection closed mid-response")
        buf += data
    head, _, rest = buf.partition(b"\r\n\r\n")
    length = 0
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    while len(rest) < length:
        data = sock.recv(65536)
        if not data:
            raise OSError("connection closed mid-body")
        rest += data
    try:
        return json.loads(rest[:length].decode("utf-8"))
    except ValueError:
        return {}


def _percentile(ordered: List[float], q: float) -> float:
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


def run_load(
    url: str,
    *,
    jobs: int = 1000,
    concurrency: int = 8,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    scale: float = 0.02,
    timeout_s: float = 30.0,
    collect_ids: bool = False,
) -> LoadReport:
    """Submit ``jobs`` jobs against ``url`` from ``concurrency`` threads."""
    if jobs < 1 or concurrency < 1:
        raise ServeError("loadgen needs jobs >= 1 and concurrency >= 1")
    payloads = [
        json.dumps(
            {"workload": w, "mode": "cpu", "scale": scale, "timeout_s": 120}
        ).encode("utf-8")
        for w in workloads
    ]
    per_worker = [jobs // concurrency] * concurrency
    for i in range(jobs % concurrency):
        per_worker[i] += 1
    submitters = [
        _Submitter(url, payloads, count, timeout_s=timeout_s)
        for count in per_worker
        if count > 0
    ]
    started = time.perf_counter()
    for submitter in submitters:
        submitter.start()
    for submitter in submitters:
        submitter.join()
    elapsed = time.perf_counter() - started

    latencies = sorted(
        ms for submitter in submitters for ms in submitter.latencies_ms
    )
    report = LoadReport(
        submitted=len(latencies),
        errors=sum(s.errors for s in submitters),
        elapsed_s=elapsed,
        submissions_per_s=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=_percentile(latencies, 0.50),
        latency_p90_ms=_percentile(latencies, 0.90),
        latency_p99_ms=_percentile(latencies, 0.99),
        latency_max_ms=latencies[-1] if latencies else 0.0,
        concurrency=len(submitters),
    )
    if collect_ids:
        report.job_ids = [jid for s in submitters for jid in s.job_ids]
    try:
        from repro.serve.client import ServeClient

        report.gateway_health = ServeClient(url, timeout=10.0).health()
    except ServeError:
        report.gateway_health = {}
    return report
