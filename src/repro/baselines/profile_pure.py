"""profile — the pure-Python sibling of cProfile.

Identical mechanism, but the callback is Python code, an order of
magnitude costlier per event (paper median: 15.1x).
"""

from __future__ import annotations

from repro.baselines import costs
from repro.baselines.base import Capabilities
from repro.baselines.tracer_base import FunctionTracer


class ProfileBaseline(FunctionTracer):
    name = "profile"
    capabilities = Capabilities(
        granularity="functions",
        unmodified_code=True,
    )
    cost_call_ops = costs.PROFILE_EVENT_OPS
    cost_return_ops = costs.PROFILE_EVENT_OPS
    cost_c_call_ops = costs.PROFILE_EVENT_OPS
    cost_c_return_ops = costs.PROFILE_EVENT_OPS
    cost_line_ops = 0.0
    clock_kind = "cpu"
