"""pprofile — line-granularity profiler in two flavours (paper §8.1, §8.2).

* ``pprofile_det`` — deterministic: a pure-Python callback on *every* line
  event; thread-aware but extremely slow (paper median: 36.8x).
* ``pprofile_stat`` — statistical: relies exclusively on timer-signal
  delivery. Because CPython defers signals during native calls and never
  delivers them to subthreads, it "reports zero elapsed time for all
  native execution or code executing in multiple threads" (§2) — the
  failure mode Scalene's design explicitly avoids.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines import costs
from repro.baselines.base import BaselineReport, Capabilities, LineKey, Profiler
from repro.baselines.tracer_base import LineTracer
from repro.core.attribution import thread_location
from repro.runtime.signals import SIGALRM, Timers


class PProfileDetBaseline(LineTracer):
    name = "pprofile_det"
    capabilities = Capabilities(
        granularity="lines",
        unmodified_code=True,
        threads=True,
    )
    cost_line_ops = costs.PPROFILE_DET_LINE_OPS
    cost_call_ops = costs.PPROFILE_DET_CALL_OPS
    cost_return_ops = costs.PPROFILE_DET_CALL_OPS
    clock_kind = "cpu"
    trace_all_files = True


class PProfileStatBaseline(Profiler):
    """The statistical flavour: naive signal-driven line sampling."""

    name = "pprofile_stat"
    capabilities = Capabilities(
        granularity="lines",
        unmodified_code=True,
        threads=True,  # claimed, but signal starvation defeats it (§2)
    )
    interval = costs.STAT_SAMPLER_INTERVAL

    def __init__(self, process) -> None:
        super().__init__(process)
        self._line_times: Dict[LineKey, float] = {}
        self._samples = 0
        self._saved_handler = None

    def _install(self) -> None:
        signals = self.process.signals
        self._saved_handler = signals.get_handler(SIGALRM)
        signals.set_handler(SIGALRM, self._handler)
        signals.setitimer(Timers.ITIMER_REAL, self.interval)

    def _uninstall(self) -> None:
        signals = self.process.signals
        signals.setitimer(Timers.ITIMER_REAL, 0)
        signals.set_handler(SIGALRM, self._saved_handler)

    def _handler(self, signum: int) -> None:
        process = self.process
        process.charge_overhead(
            process.main_thread,
            costs.STAT_SAMPLER_HANDLER_OPS * process.vm.config.op_cost,
        )
        self._samples += 1
        # Naive attribution: whatever line the main thread shows right now
        # gets the whole interval. Native delays and subthread time are
        # silently misattributed or lost.
        location = thread_location(process.main_thread, process.profiled_filenames)
        if location is None:
            return
        key = (location[0], location[1])
        self._line_times[key] = self._line_times.get(key, 0.0) + self.interval

    def _report(self) -> BaselineReport:
        return BaselineReport(
            profiler=self.name,
            line_times=dict(self._line_times),
            total_samples=self._samples,
        )
