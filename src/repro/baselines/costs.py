"""Calibrated per-event probe costs for the baseline profilers.

All costs are in **interpreter-opcode equivalents** (multiplied by the
VM's ``op_cost`` at runtime), because that is the quantity that determines
a profiler's slowdown: overhead-per-hook divided by work-per-hook. Real
magnitudes informed the starting points — a CPython opcode is ~30 ns, a C
trace callback a few hundred ns, a Python trace callback 5–20 µs, a
``/proc`` RSS read ~10 µs — and the constants were then calibrated so the
simulated Table 3 medians land near the paper's. The *mechanisms* (which
events each profiler pays for) are fixed; only these scalars were tuned.
"""

# -- deterministic tracers -------------------------------------------------

#: cProfile: C callback on call/return and c_call/c_return (paper: 1.73x).
CPROFILE_EVENT_OPS = 14.7
#: profile: the same events through a pure-Python callback (paper: 15.1x).
PROFILE_EVENT_OPS = 265.0
#: line_profiler: C callback per line event in decorated functions (2.21x).
LINE_PROFILER_LINE_OPS = 6.3
#: pprofile deterministic: Python callback on *every* line event (36.8x).
PPROFILE_DET_LINE_OPS = 187.0
PPROFILE_DET_CALL_OPS = 45.0
#: yappi: C callback, but heavier bookkeeping than cProfile (3.2x/3.6x).
YAPPI_WALL_EVENT_OPS = 43.0
YAPPI_CPU_EVENT_OPS = 51.0
#: memory_profiler: Python callback + RSS read on every line (37.1x).
MEMORY_PROFILER_LINE_OPS = 188.0

# -- in-process samplers -------------------------------------------------

#: pprofile statistical / pyinstrument handler cost per sample.
STAT_SAMPLER_HANDLER_OPS = 2.0
#: pyinstrument additionally pays a tiny per-call check (setprofile path).
PYINSTRUMENT_CALL_OPS = 8.4

# -- allocation interposers -------------------------------------------------

#: Fil: live-map update on every allocation event (paper: 2.71x).
FIL_EVENT_OPS = 4.5
#: Fil: stack capture whenever a new peak is recorded.
FIL_PEAK_CAPTURE_OPS = 30.0
#: Memray: log-record serialization on every event (paper: 3.98x).
MEMRAY_EVENT_OPS = 7.9
#: Memray log record size on disk, bytes (drives ~3MB/s log growth).
MEMRAY_RECORD_BYTES = 48
#: Rate-based sampler: cost per taken sample (the §3.2 comparison).
RATE_SAMPLE_OPS = 10.0
RATE_HOOK_OPS = 0.25

# -- external samplers -------------------------------------------------

#: py-spy sampling interval (seconds, wall).
PYSPY_INTERVAL = 0.01
#: Austin sampling interval (seconds, wall; Austin defaults to 100 us).
AUSTIN_INTERVAL = 0.0005
#: Austin bytes per log record (one stack line per sample).
AUSTIN_RECORD_BYTES = 130

# -- sampling intervals for in-process samplers -----------------------------

STAT_SAMPLER_INTERVAL = 0.01
PYINSTRUMENT_INTERVAL = 0.001
