"""cProfile — CPython's built-in deterministic function profiler.

C-implemented callback on call/return and c_call/c_return events only
(no line events), which keeps it relatively fast (paper median: 1.73x)
but function-granular and function-biased (§6.2).
"""

from __future__ import annotations

from repro.baselines import costs
from repro.baselines.base import Capabilities
from repro.baselines.tracer_base import FunctionTracer


class CProfileBaseline(FunctionTracer):
    name = "cProfile"
    capabilities = Capabilities(
        granularity="functions",
        unmodified_code=True,
        threads=False,
    )
    cost_call_ops = costs.CPROFILE_EVENT_OPS
    cost_return_ops = costs.CPROFILE_EVENT_OPS
    cost_c_call_ops = costs.CPROFILE_EVENT_OPS
    cost_c_return_ops = costs.CPROFILE_EVENT_OPS
    cost_line_ops = 0.0  # PyEval_SetProfile does not receive line events
    clock_kind = "cpu"
