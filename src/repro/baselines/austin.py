"""Austin — out-of-process frame sampler with optional memory mode.

Samples every 100 µs from outside the process (overhead ≈ 1.0x) and
streams one stack record per sample to its output — the log that grows by
~2 MB/s in the paper's §6.5 measurement. The memory mode reads the
target's **RSS**, which §6.3 shows to be a wildly inaccurate proxy for
allocation.
"""

from __future__ import annotations

from repro.baselines import costs
from repro.baselines.base import Capabilities
from repro.baselines.external import ExternalSampler


class AustinCpuBaseline(ExternalSampler):
    name = "austin_cpu"
    capabilities = Capabilities(
        granularity="lines",
        unmodified_code=True,
        threads=True,
        multiprocessing=True,
    )
    interval = costs.AUSTIN_INTERVAL
    record_bytes = costs.AUSTIN_RECORD_BYTES
    sample_rss = False


class AustinFullBaseline(ExternalSampler):
    name = "austin_full"
    capabilities = Capabilities(
        granularity="lines",
        unmodified_code=True,
        threads=True,
        multiprocessing=True,
        profiles_memory=True,
        memory_kind="rss",
    )
    interval = costs.AUSTIN_INTERVAL
    record_bytes = costs.AUSTIN_RECORD_BYTES
    sample_rss = True
