"""The classical rate-based memory sampler (paper §3.2's baseline).

As in Android/Chrome/Go/tcmalloc/Java-TLAB samplers, each byte allocated
*or freed* is a Bernoulli trial; in expectation one sample fires per ``T``
bytes of allocator activity. The practical implementation decrements a
counter by each event's size and samples when it drops below zero.

This is the comparator for Table 2: on footprint-stable, allocation-heavy
workloads it takes up to two orders of magnitude more samples than
Scalene's threshold-based scheme for the same footprint-tracking fidelity.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.baselines import costs
from repro.baselines._interpose import AllocationInterposer
from repro.baselines.base import BaselineReport, Capabilities, LineKey
from repro.units import SCALENE_THRESHOLD


class RateBasedSampler(AllocationInterposer):
    name = "rate_sampler"
    capabilities = Capabilities(
        granularity="lines",
        unmodified_code=True,
        profiles_memory=True,
        memory_kind="allocations",
    )

    def __init__(self, process, rate: int = SCALENE_THRESHOLD, seed: int = 1234) -> None:
        super().__init__(process)
        if rate <= 0:
            raise ValueError(f"sampling rate must be positive, got {rate}")
        self.rate = rate
        self._rng = random.Random(seed)
        self._countdown = self._next_countdown()
        self.sample_count = 0
        self._line_samples: Dict[LineKey, int] = {}

    def _next_countdown(self) -> float:
        # Exponential inter-sample distance with mean `rate` — the Poisson
        # process initialization the samplers in §3.2 use.
        return self._rng.expovariate(1.0 / self.rate)

    def observe(self, signed_bytes: int, domain: str, address: int, thread) -> None:
        self.event_count += 1
        self.charge(thread, costs.RATE_HOOK_OPS)
        self._countdown -= abs(signed_bytes)
        while self._countdown < 0:
            self._countdown += self._next_countdown()
            self._take_sample(thread)

    def _take_sample(self, thread) -> None:
        self.sample_count += 1
        self.charge(thread, costs.RATE_SAMPLE_OPS)
        location = self.attribution(thread)
        if location is not None:
            key = (location[0], location[1])
            self._line_samples[key] = self._line_samples.get(key, 0) + 1

    def _report(self) -> BaselineReport:
        mb_per_sample = self.rate / (1024 * 1024)
        return BaselineReport(
            profiler=self.name,
            line_memory_mb={
                key: count * mb_per_sample
                for key, count in self._line_samples.items()
            },
            total_samples=self.sample_count,
        )
