"""Shared allocation-interposition plumbing for memory baselines.

Fil, Memray and the rate-based sampler all interpose on both allocation
domains the way Scalene does: a shim listener for native traffic plus a
PyMem-hook wrapper for Python-object traffic (delegating under the shim's
in-allocator guard to avoid double counting).
"""

from __future__ import annotations

from repro.baselines.base import Profiler
from repro.memory.shim import DOMAIN_PYTHON, ShimListener


class _PyMemWrapper:
    """PyMem_SetAllocator wrapper feeding an observer callback."""

    def __init__(self, observer, inner, shim) -> None:
        self._observer = observer
        self._inner = inner
        self._shim = shim

    def alloc(self, nbytes: int, thread=None):
        with self._shim.allocator_guard(thread):
            handle = self._inner.alloc(nbytes, thread=thread)
        self._observer.observe(+nbytes, DOMAIN_PYTHON, handle.address, thread)
        return handle

    def free(self, handle, thread=None) -> None:
        self._observer.observe(-handle.nbytes, DOMAIN_PYTHON, handle.address, thread)
        with self._shim.allocator_guard(thread):
            self._inner.free(handle, thread=thread)


class AllocationInterposer(Profiler, ShimListener):
    """Base profiler observing every allocation event in both domains.

    Subclasses implement ``observe(signed_bytes, domain, address, thread)``.
    """

    def __init__(self, process) -> None:
        super().__init__(process)
        self._saved_allocator = None
        self.event_count = 0

    def _install(self) -> None:
        mem = self.process.mem
        mem.shim.add_listener(self)
        self._saved_allocator = mem.hooks.get_allocator()
        mem.hooks.set_allocator(_PyMemWrapper(self, self._saved_allocator, mem.shim))

    def _uninstall(self) -> None:
        mem = self.process.mem
        mem.shim.remove_listener(self)
        mem.hooks.set_allocator(self._saved_allocator)

    # -- shim listener ----------------------------------------------------------

    def on_malloc(self, event) -> None:
        self.observe(+event.nbytes, event.domain, event.address, event.thread)

    def on_free(self, event) -> None:
        self.observe(-event.nbytes, event.domain, event.address, event.thread)

    # -- subclass hook ----------------------------------------------------------

    def observe(self, signed_bytes: int, domain: str, address: int, thread) -> None:
        raise NotImplementedError  # pragma: no cover

    # -- helpers ----------------------------------------------------------

    def charge(self, thread, ops: float) -> None:
        self.process.charge_overhead(thread, ops * self.process.vm.config.op_cost)

    def attribution(self, thread):
        from repro.core.attribution import thread_location

        return thread_location(thread, self.process.profiled_filenames)
