"""line_profiler — line-granularity deterministic profiler.

Requires ``@profile`` decorators (code must be modified) and traces line
events only inside decorated functions, through a C callback (paper
median: 2.21x). Does not handle threads.
"""

from __future__ import annotations

from repro.baselines import costs
from repro.baselines.base import Capabilities
from repro.baselines.tracer_base import LineTracer


class LineProfilerBaseline(LineTracer):
    name = "line_profiler"
    capabilities = Capabilities(
        granularity="lines",
        unmodified_code=False,  # needs @profile decorators
        threads=False,
    )
    cost_line_ops = costs.LINE_PROFILER_LINE_OPS
    cost_call_ops = costs.LINE_PROFILER_LINE_OPS * 0.5
    cost_return_ops = costs.LINE_PROFILER_LINE_OPS * 0.5
    clock_kind = "cpu"
    trace_all_files = False  # only decorated (profiled-file) functions
