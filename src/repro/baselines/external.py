"""Out-of-process sampling profilers (py-spy, Austin).

These profilers attach from a separate process and read the target's
frames through ptrace/process_vm_readv, so they impose (virtually) no
overhead on the target — the paper measures both at ~1.0x. The simulation
models them as clock observers: every ``interval`` of wall time they
snapshot ``sys._current_frames()`` without charging any cost.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import BaselineReport, LineKey, Profiler
from repro.core.attribution import profiled_location
from repro.memory.samplefile import SampleFile


class ExternalSampler(Profiler):
    """Wall-clock frame sampler running outside the profiled process."""

    interval: float = 0.01
    #: Bytes appended to the profiler's output per sampled stack.
    record_bytes: int = 0
    #: Whether each sample also reads the target's RSS (Austin memory mode).
    sample_rss: bool = False

    def __init__(self, process) -> None:
        super().__init__(process)
        self._line_times: Dict[LineKey, float] = {}
        self._line_memory_mb: Dict[LineKey, float] = {}
        self._accumulated = 0.0
        self._samples = 0
        self._last_rss: Optional[int] = None
        self.logfile = SampleFile(self.name)

    # -- install: observe the wall clock ---------------------------------------

    def _install(self) -> None:
        self.process.clock.subscribe(self._on_advance)
        if self.sample_rss:
            self._last_rss = self.process.rss()
        # Multiprocessing support: attach a sampler to every forked child
        # (py-spy and Austin follow child processes).
        if self.capabilities.multiprocessing:
            self.process.child_observers.append(self._attach_to_child)

    def _uninstall(self) -> None:
        self.process.clock.unsubscribe(self._on_advance)

    def _attach_to_child(self, child) -> None:
        accumulator = [0.0]

        def on_child_advance(wall_dt: float, _cpu_dt: float) -> None:
            accumulator[0] += wall_dt
            while accumulator[0] >= self.interval:
                accumulator[0] -= self.interval
                self._sample_process(child)

        child.clock.subscribe(on_child_advance)

    def _on_advance(self, wall_dt: float, _cpu_dt: float) -> None:
        self._accumulated += wall_dt
        while self._accumulated >= self.interval:
            self._accumulated -= self.interval
            self._sample()

    # -- sampling ----------------------------------------------------------

    def _sample(self) -> None:
        self._sample_process(self.process)

    def _sample_process(self, process) -> None:
        self._samples += 1
        frames = process.current_frames()
        for _ident, frame in frames.items():
            location = profiled_location(frame, process.profiled_filenames)
            if location is None:
                continue
            key = (location[0], location[1])
            self._line_times[key] = self._line_times.get(key, 0.0) + self.interval
            if self.record_bytes:
                self.logfile.append_bytes(self.record_bytes)
        if self.sample_rss and process is self.process:
            rss = process.rss()
            delta_mb = (rss - self._last_rss) / (1024 * 1024)
            self._last_rss = rss
            main_frame = frames.get(process.main_thread.ident)
            location = (
                profiled_location(main_frame, process.profiled_filenames)
                if main_frame is not None
                else None
            )
            if location is not None and delta_mb != 0.0:
                key = (location[0], location[1])
                self._line_memory_mb[key] = (
                    self._line_memory_mb.get(key, 0.0) + delta_mb
                )

    def _report(self) -> BaselineReport:
        peak = None
        if self.sample_rss:
            peak = self.process.rss() / (1024 * 1024)
        return BaselineReport(
            profiler=self.name,
            line_times=dict(self._line_times),
            line_memory_mb=dict(self._line_memory_mb),
            peak_memory_mb=peak,
            total_samples=self._samples,
            log_bytes=self.logfile.size_bytes,
        )
