"""yappi — deterministic function profiler with wall and CPU modes.

Thread-aware, C callback, but with heavier per-event bookkeeping than
cProfile (paper medians: 3.17x wall, 3.62x CPU). The paper also finds it
among the most *inaccurate* CPU profilers (§6.2) — in this reproduction
that inaccuracy emerges from the same function bias mechanism, amplified
by the larger per-event cost.
"""

from __future__ import annotations

from repro.baselines import costs
from repro.baselines.base import Capabilities
from repro.baselines.tracer_base import FunctionTracer


class YappiWallBaseline(FunctionTracer):
    name = "yappi_wall"
    capabilities = Capabilities(
        granularity="functions",
        unmodified_code=True,
        threads=True,
    )
    cost_call_ops = costs.YAPPI_WALL_EVENT_OPS
    cost_return_ops = costs.YAPPI_WALL_EVENT_OPS
    cost_c_call_ops = costs.YAPPI_WALL_EVENT_OPS
    cost_c_return_ops = costs.YAPPI_WALL_EVENT_OPS
    clock_kind = "wall"


class YappiCpuBaseline(FunctionTracer):
    name = "yappi_cpu"
    capabilities = Capabilities(
        granularity="functions",
        unmodified_code=True,
        threads=True,
    )
    cost_call_ops = costs.YAPPI_CPU_EVENT_OPS
    cost_return_ops = costs.YAPPI_CPU_EVENT_OPS
    cost_c_call_ops = costs.YAPPI_CPU_EVENT_OPS
    cost_c_return_ops = costs.YAPPI_CPU_EVENT_OPS
    clock_kind = "cpu"
