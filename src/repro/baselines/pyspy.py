"""py-spy — out-of-process sampling profiler.

Attaches from a separate process and reads the target's interpreter state
directly, so the target pays essentially nothing (paper median: 1.02x).
Samples all threads at line granularity; supports multiprocessing.
"""

from __future__ import annotations

from repro.baselines import costs
from repro.baselines.base import Capabilities
from repro.baselines.external import ExternalSampler


class PySpyBaseline(ExternalSampler):
    name = "py_spy"
    capabilities = Capabilities(
        granularity="lines",
        unmodified_code=True,
        threads=True,
        multiprocessing=True,
    )
    interval = costs.PYSPY_INTERVAL
    record_bytes = 0  # aggregates in memory; no streaming log
