"""Fil — peak-memory profiler by allocator interposition.

Interposes on every allocation (forcing Python onto the system allocator
in the real tool), tracks the live set, and records the allocation sites
responsible for memory *at the moment of peak footprint*. Accurate on
allocation size (within 1% in §6.3) but peak-only: the paper's example of
a discarded 4 GB object invisible in a peak-only report applies (§6.3).
Paper median overhead: 2.71x.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines import costs
from repro.baselines._interpose import AllocationInterposer
from repro.baselines.base import BaselineReport, Capabilities, LineKey


class FilBaseline(AllocationInterposer):
    name = "fil"
    capabilities = Capabilities(
        granularity="lines",
        unmodified_code=False,  # run under `fil-profile run`
        profiles_memory=True,
        memory_kind="peak",
    )

    #: Re-snapshot the live set only when the peak grows by this factor
    #: (Fil's report is within ~1% of true peak, §6.3).
    PEAK_SNAPSHOT_TOLERANCE = 1.01

    def __init__(self, process) -> None:
        super().__init__(process)
        self._footprint = 0
        self._peak = 0
        self._snapshot_at = 0
        self._live_by_line: Dict[LineKey, int] = {}
        self._by_address: Dict[int, tuple] = {}
        self._peak_snapshot: Dict[LineKey, int] = {}

    def observe(self, signed_bytes: int, domain: str, address: int, thread) -> None:
        self.event_count += 1
        self.charge(thread, costs.FIL_EVENT_OPS)
        self._footprint += signed_bytes
        if signed_bytes >= 0:
            location = self.attribution(thread)
            key: Optional[LineKey] = (location[0], location[1]) if location else None
            self._by_address[address] = (signed_bytes, key)
            if key is not None:
                self._live_by_line[key] = self._live_by_line.get(key, 0) + signed_bytes
        else:
            entry = self._by_address.pop(address, None)
            if entry is not None:
                nbytes, key = entry
                if key is not None:
                    self._live_by_line[key] = self._live_by_line.get(key, 0) - nbytes
        if self._footprint > self._peak:
            self._peak = self._footprint
            if self._peak > self._snapshot_at * self.PEAK_SNAPSHOT_TOLERANCE:
                # Full stack capture at the new maximum.
                self.charge(thread, costs.FIL_PEAK_CAPTURE_OPS)
                self._snapshot_at = self._peak
                self._peak_snapshot = dict(self._live_by_line)

    def _report(self) -> BaselineReport:
        mb = 1024 * 1024
        return BaselineReport(
            profiler=self.name,
            line_memory_mb={
                key: nbytes / mb
                for key, nbytes in self._peak_snapshot.items()
                if nbytes > 0
            },
            peak_memory_mb=self._peak / mb,
            total_samples=self.event_count,
        )
