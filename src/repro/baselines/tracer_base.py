"""Shared machinery for deterministic (tracing) profilers.

These profilers install a trace function; CPython invokes it on call,
line, and return events, and the callback's own execution time — the
*probe effect* — is charged to the profiled process. Function-granularity
tracers time call→return spans; line-granularity tracers time
line→next-event spans. Both measure with the process clocks, which include
the probe cost: that is precisely the function bias of §6.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.base import BaselineReport, FuncKey, LineKey, Profiler
from repro.runtime import tracing


class _TraceFn:
    """Adapter giving the TraceManager its cost attributes."""

    def __init__(self, owner, cost_call, cost_line, cost_return, cost_c_call, cost_c_return):
        self.owner = owner
        self.cost_call = cost_call
        self.cost_line = cost_line
        self.cost_return = cost_return
        self.cost_c_call = cost_c_call
        self.cost_c_return = cost_c_return

    def __call__(self, frame, event, arg) -> None:
        self.owner.on_event(frame, event, arg)


class TracingProfiler(Profiler):
    """Base for settrace-based profilers."""

    #: Probe costs in opcode units; subclasses override.
    cost_call_ops: float = 0.0
    cost_line_ops: float = 0.0
    cost_return_ops: float = 0.0
    cost_c_call_ops: float = 0.0
    cost_c_return_ops: float = 0.0
    #: Which clock the profiler reads ("wall" or "cpu").
    clock_kind: str = "cpu"

    def __init__(self, process) -> None:
        super().__init__(process)
        self._saved_trace = None
        self._trace_fn: Optional[_TraceFn] = None

    # -- install/uninstall -------------------------------------------------------

    def _install(self) -> None:
        op_cost = self.process.vm.config.op_cost
        self._trace_fn = _TraceFn(
            self,
            cost_call=self.cost_call_ops * op_cost,
            cost_line=self.cost_line_ops * op_cost,
            cost_return=self.cost_return_ops * op_cost,
            cost_c_call=self.cost_c_call_ops * op_cost,
            cost_c_return=self.cost_c_return_ops * op_cost,
        )
        self._saved_trace = self.process.trace.gettrace()
        self.process.trace.settrace(self._trace_fn)

    def _uninstall(self) -> None:
        self.process.trace.settrace(self._saved_trace)

    # -- clock -------------------------------------------------------

    def now(self) -> float:
        clock = self.process.clock
        return clock.wall if self.clock_kind == "wall" else clock.cpu

    # -- event hook (subclasses implement) ------------------------------------

    def on_event(self, frame, event, arg) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class FunctionTracer(TracingProfiler):
    """Times call→return spans per function (cProfile-family mechanism).

    Reports *inclusive* time per function: the sum of the spans between
    each call event and its matching return. Native (c_call/c_return)
    spans are attributed to the named builtin.
    """

    def __init__(self, process) -> None:
        super().__init__(process)
        self._function_times: Dict[FuncKey, float] = {}
        # Per-frame entry timestamps; native spans keyed by (frame id, name).
        self._entries: List[Tuple[object, FuncKey, float]] = []
        self._events = 0

    def on_event(self, frame, event, arg) -> None:
        self._events += 1
        if event == tracing.EVENT_CALL:
            key = (frame.code.filename, frame.code.name)
            self._entries.append((frame, key, self.now()))
        elif event == tracing.EVENT_RETURN:
            self._close_span(frame)
        elif event == tracing.EVENT_C_CALL:
            key = ("<native>", str(arg))
            self._entries.append((frame, key, self.now()))
        elif event == tracing.EVENT_C_RETURN:
            self._close_span(frame)

    def _close_span(self, frame) -> None:
        # Spans nest strictly because we attach before the program starts;
        # the module frame's final return has no matching entry — ignore it.
        if not self._entries:
            return
        _entry_frame, key, t0 = self._entries.pop()
        elapsed = self.now() - t0
        self._function_times[key] = self._function_times.get(key, 0.0) + elapsed

    def _report(self) -> BaselineReport:
        return BaselineReport(
            profiler=self.name,
            function_times=dict(self._function_times),
            total_samples=self._events,
        )


class LineTracer(TracingProfiler):
    """Times line→next-event spans per line (line_profiler mechanism)."""

    #: When False, events from files outside the profiled set are ignored
    #: (line_profiler only instruments decorated functions).
    trace_all_files = True

    def __init__(self, process) -> None:
        super().__init__(process)
        self._line_times: Dict[LineKey, float] = {}
        self._current: Optional[Tuple[LineKey, float]] = None
        self._events = 0

    def on_event(self, frame, event, arg) -> None:
        self._events += 1
        now = self.now()
        in_scope = (
            self.trace_all_files
            or frame.code.filename in self.process.profiled_filenames
        )
        if self._current is not None:
            key, t0 = self._current
            self._line_times[key] = self._line_times.get(key, 0.0) + (now - t0)
            self._current = None
        if event == tracing.EVENT_LINE and in_scope:
            self._current = ((frame.code.filename, frame.lineno), now)

    def _report(self) -> BaselineReport:
        return BaselineReport(
            profiler=self.name,
            line_times=dict(self._line_times),
            total_samples=self._events,
        )
