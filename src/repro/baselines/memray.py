"""Memray — deterministic allocation logger.

Interposes on the C allocators (and optionally PyMem) and logs **every**
allocation, free, and stack update to its output file for post-processing.
Accurate (within ~6% in §6.3) but with two costs the paper highlights:
per-event work (median 3.98x) and a log that grows ~3 MB/s (§6.5).
Reports live-at-peak per line, like Fil.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines import costs
from repro.baselines._interpose import AllocationInterposer
from repro.baselines.base import BaselineReport, Capabilities, LineKey
from repro.memory.samplefile import SampleFile


class MemrayBaseline(AllocationInterposer):
    name = "memray"
    capabilities = Capabilities(
        granularity="lines",
        unmodified_code=True,
        threads=True,
        profiles_memory=True,
        memory_kind="peak",
        python_vs_c_memory=True,
    )

    def __init__(self, process) -> None:
        super().__init__(process)
        self.logfile = SampleFile("memray")
        self._footprint = 0
        self._peak = 0
        self._live_by_line: Dict[LineKey, int] = {}
        self._by_address: Dict[int, tuple] = {}
        self._peak_snapshot: Dict[LineKey, int] = {}
        self._snapshot_at = 0

    def observe(self, signed_bytes: int, domain: str, address: int, thread) -> None:
        self.event_count += 1
        self.charge(thread, costs.MEMRAY_EVENT_OPS)
        # One binary record per event: the 3 MB/s log growth of §6.5.
        self.logfile.append_bytes(costs.MEMRAY_RECORD_BYTES)
        self._footprint += signed_bytes
        if signed_bytes >= 0:
            location = self.attribution(thread)
            key: Optional[LineKey] = (location[0], location[1]) if location else None
            self._by_address[address] = (signed_bytes, key)
            if key is not None:
                self._live_by_line[key] = self._live_by_line.get(key, 0) + signed_bytes
        else:
            entry = self._by_address.pop(address, None)
            if entry is not None:
                nbytes, key = entry
                if key is not None:
                    self._live_by_line[key] = self._live_by_line.get(key, 0) - nbytes
        if self._footprint > self._peak:
            self._peak = self._footprint
            if self._peak > self._snapshot_at * 1.06:  # within ~6% (§6.3)
                self._snapshot_at = self._peak
                self._peak_snapshot = dict(self._live_by_line)

    def _report(self) -> BaselineReport:
        mb = 1024 * 1024
        return BaselineReport(
            profiler=self.name,
            line_memory_mb={
                key: nbytes / mb
                for key, nbytes in self._peak_snapshot.items()
                if nbytes > 0
            },
            peak_memory_mb=self._snapshot_at / mb,
            total_samples=self.event_count,
            log_bytes=self.logfile.size_bytes,
        )
