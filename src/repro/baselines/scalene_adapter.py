"""Adapters presenting Scalene through the baseline-profiler interface,
so the benchmark harness can drive all sixteen configurations uniformly
(the three Scalene rows of Figure 1 / Table 3)."""

from __future__ import annotations

from repro.baselines.base import BaselineReport, Capabilities, Profiler
from repro.core import Scalene


class _ScaleneAdapter(Profiler):
    mode = "full"

    def __init__(self, process) -> None:
        super().__init__(process)
        self._scalene = Scalene(process, mode=self.mode)
        self.profile = None

    def _install(self) -> None:
        self._scalene.start()

    def _uninstall(self) -> None:
        self.profile = self._scalene.stop()

    def _report(self) -> BaselineReport:
        profile = self.profile
        line_times = {}
        total = (
            profile.cpu_python_time
            + profile.cpu_native_time
            + profile.cpu_system_time
        )
        for line in profile.lines:
            seconds = line.cpu_total_percent / 100.0 * total
            if seconds > 0:
                line_times[(line.filename, line.lineno)] = seconds
        line_memory = {
            (line.filename, line.lineno): line.mem_peak_mb
            for line in profile.lines
            if line.mem_peak_mb > 0
        }
        return BaselineReport(
            profiler=self.name,
            line_times=line_times,
            line_memory_mb=line_memory,
            peak_memory_mb=profile.peak_footprint_mb or None,
            total_samples=profile.cpu_samples,
            log_bytes=profile.sample_log_bytes,
        )


class ScaleneCpuBaseline(_ScaleneAdapter):
    name = "scalene_cpu"
    mode = "cpu"
    capabilities = Capabilities(
        granularity="both",
        unmodified_code=True,
        threads=True,
        multiprocessing=True,
        python_vs_c_time=True,
        system_time=True,
    )


class ScaleneCpuGpuBaseline(_ScaleneAdapter):
    name = "scalene_cpu_gpu"
    mode = "cpu+gpu"
    capabilities = Capabilities(
        granularity="both",
        unmodified_code=True,
        threads=True,
        multiprocessing=True,
        python_vs_c_time=True,
        system_time=True,
        gpu=True,
    )


class ScaleneFullBaseline(_ScaleneAdapter):
    name = "scalene_full"
    mode = "full"
    capabilities = Capabilities(
        granularity="both",
        unmodified_code=True,
        threads=True,
        multiprocessing=True,
        python_vs_c_time=True,
        system_time=True,
        profiles_memory=True,
        memory_kind="trends",
        python_vs_c_memory=True,
        gpu=True,
        memory_trends=True,
        copy_volume=True,
        detects_leaks=True,
    )
