"""memory_profiler — deterministic RSS-delta memory profiler.

Uses the tracing facility to read the process RSS after *every line* and
records the delta from the previous line: a pure-Python callback plus a
``/proc`` read per line, the slowest mechanism in the comparison (paper
median: 37.1x, with several benchmarks beyond 150x). Its RSS proxy is
also what §6.3 shows to under- and over-report true allocation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.baselines import costs
from repro.baselines.base import BaselineReport, Capabilities, LineKey
from repro.baselines.tracer_base import TracingProfiler
from repro.runtime import tracing


class MemoryProfilerBaseline(TracingProfiler):
    name = "memory_profiler"
    capabilities = Capabilities(
        granularity="lines",
        unmodified_code=False,  # needs @profile decorators
        threads=False,
        multiprocessing=False,
        profiles_memory=True,
        memory_kind="rss",
    )
    cost_line_ops = costs.MEMORY_PROFILER_LINE_OPS
    cost_call_ops = costs.MEMORY_PROFILER_LINE_OPS * 0.3
    cost_return_ops = costs.MEMORY_PROFILER_LINE_OPS * 0.3

    def __init__(self, process) -> None:
        super().__init__(process)
        self._line_memory_mb: Dict[LineKey, float] = {}
        self._pending: Optional[Tuple[LineKey, int]] = None
        self._events = 0
        self._peak_rss = 0

    def on_event(self, frame, event, arg) -> None:
        self._events += 1
        if event != tracing.EVENT_LINE:
            return
        if frame.code.filename not in self.process.profiled_filenames:
            return
        rss = self.process.rss()
        if rss > self._peak_rss:
            self._peak_rss = rss
        if self._pending is not None:
            key, rss_before = self._pending
            delta_mb = (rss - rss_before) / (1024 * 1024)
            if delta_mb != 0.0:
                self._line_memory_mb[key] = (
                    self._line_memory_mb.get(key, 0.0) + delta_mb
                )
        self._pending = ((frame.code.filename, frame.lineno), rss)

    def _report(self) -> BaselineReport:
        return BaselineReport(
            profiler=self.name,
            line_memory_mb=dict(self._line_memory_mb),
            peak_memory_mb=self._peak_rss / (1024 * 1024),
            total_samples=self._events,
        )
