"""pyinstrument — in-process statistical call-stack profiler.

Samples the main thread's stack on a short interval from inside the
process (paper median: 1.69x), reporting at function granularity. Shares
pprofile_stat's blindness to subthreads; native time appears only as the
delayed samples land on the calling line's function.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines import costs
from repro.baselines.base import BaselineReport, Capabilities, FuncKey, Profiler
from repro.core.attribution import thread_location
from repro.runtime.signals import SIGALRM, Timers


class PyInstrumentBaseline(Profiler):
    name = "pyinstrument"
    capabilities = Capabilities(
        granularity="functions",
        unmodified_code=True,
    )
    interval = costs.PYINSTRUMENT_INTERVAL

    def __init__(self, process) -> None:
        super().__init__(process)
        self._function_times: Dict[FuncKey, float] = {}
        self._samples = 0
        self._saved_handler = None

    def _install(self) -> None:
        signals = self.process.signals
        self._saved_handler = signals.get_handler(SIGALRM)
        signals.set_handler(SIGALRM, self._handler)
        signals.setitimer(Timers.ITIMER_REAL, self.interval)

    def _uninstall(self) -> None:
        signals = self.process.signals
        signals.setitimer(Timers.ITIMER_REAL, 0)
        signals.set_handler(SIGALRM, self._saved_handler)

    def _handler(self, signum: int) -> None:
        process = self.process
        process.charge_overhead(
            process.main_thread,
            costs.PYINSTRUMENT_CALL_OPS * process.vm.config.op_cost,
        )
        self._samples += 1
        location = thread_location(process.main_thread, process.profiled_filenames)
        if location is None:
            return
        key = (location[0], location[2])
        self._function_times[key] = self._function_times.get(key, 0.0) + self.interval

    def _report(self) -> BaselineReport:
        return BaselineReport(
            profiler=self.name,
            function_times=dict(self._function_times),
            total_samples=self._samples,
        )
