"""Registry of every profiler in the comparison (Figure 1 rows)."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.baselines.austin import AustinCpuBaseline, AustinFullBaseline
from repro.baselines.base import Profiler
from repro.baselines.cprofile import CProfileBaseline
from repro.baselines.fil import FilBaseline
from repro.baselines.line_profiler import LineProfilerBaseline
from repro.baselines.memory_profiler_rss import MemoryProfilerBaseline
from repro.baselines.memray import MemrayBaseline
from repro.baselines.pprofile import PProfileDetBaseline, PProfileStatBaseline
from repro.baselines.profile_pure import ProfileBaseline
from repro.baselines.pyinstrument import PyInstrumentBaseline
from repro.baselines.pyspy import PySpyBaseline
from repro.baselines.rate_sampler import RateBasedSampler
from repro.baselines.scalene_adapter import (
    ScaleneCpuBaseline,
    ScaleneCpuGpuBaseline,
    ScaleneFullBaseline,
)
from repro.baselines.tracemalloc_like import TracemallocBaseline
from repro.baselines.yappi import YappiCpuBaseline, YappiWallBaseline
from repro.errors import ProfilerError

#: Order mirrors the paper's Table 3 rows.
_REGISTRY: Dict[str, Type[Profiler]] = {
    cls.name: cls
    for cls in (
        PySpyBaseline,
        CProfileBaseline,
        YappiWallBaseline,
        YappiCpuBaseline,
        PProfileStatBaseline,
        PProfileDetBaseline,
        LineProfilerBaseline,
        ProfileBaseline,
        PyInstrumentBaseline,
        AustinCpuBaseline,
        AustinFullBaseline,
        MemrayBaseline,
        FilBaseline,
        MemoryProfilerBaseline,
        RateBasedSampler,
        TracemallocBaseline,
        ScaleneCpuBaseline,
        ScaleneCpuGpuBaseline,
        ScaleneFullBaseline,
    )
}

#: The CPU-profiler rows of Figure 7 / Table 3.
CPU_PROFILER_NAMES = [
    "py_spy",
    "cProfile",
    "yappi_wall",
    "yappi_cpu",
    "pprofile_stat",
    "pprofile_det",
    "line_profiler",
    "profile",
    "pyinstrument",
    "austin_cpu",
    "scalene_cpu",
    "scalene_cpu_gpu",
]

#: The memory-profiler rows of Figure 8.
MEMORY_PROFILER_NAMES = [
    "austin_full",
    "memray",
    "fil",
    "memory_profiler",
    "scalene_full",
]


def profiler_names() -> List[str]:
    return list(_REGISTRY)


def make_profiler(name: str, process, **kwargs) -> Profiler:
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ProfilerError(
            f"unknown profiler {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(process, **kwargs)


def all_profilers() -> Dict[str, Type[Profiler]]:
    return dict(_REGISTRY)


def cpu_profilers() -> List[str]:
    return list(CPU_PROFILER_NAMES)


def memory_profilers() -> List[str]:
    return list(MEMORY_PROFILER_NAMES)
