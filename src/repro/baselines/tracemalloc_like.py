"""tracemalloc — the standard-library approach to leak hunting (§3.4).

The paper describes the status quo Scalene's leak detector replaces:
activate ``tracemalloc`` (which records size, allocation site and stack
for *every* object — "just activating tracemalloc can slow Python
applications down by 4x"), insert snapshot calls, and manually diff
snapshots to find growing sites.

This baseline reproduces that mechanism: deterministic per-event tracking
of every live allocation with stack attribution, an explicit snapshot
API, and snapshot diffing that surfaces the top-growing sites. Its
overhead comes from paying the bookkeeping cost on every single
allocation event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines._interpose import AllocationInterposer
from repro.baselines.base import BaselineReport, Capabilities, LineKey

#: Per-event bookkeeping cost, opcode-equivalents (paper: ~4x slowdown).
TRACEMALLOC_EVENT_OPS = 10.5


@dataclass
class SnapshotDiff:
    """One growing site surfaced by diffing two snapshots."""

    filename: str
    lineno: int
    growth_bytes: int
    count_growth: int


class TracemallocBaseline(AllocationInterposer):
    """Deterministic allocation tracker with snapshot diffing."""

    name = "tracemalloc"
    capabilities = Capabilities(
        granularity="lines",
        unmodified_code=False,  # requires inserted snapshot calls
        profiles_memory=True,
        memory_kind="allocations",
    )

    def __init__(self, process) -> None:
        super().__init__(process)
        self._live: Dict[int, Tuple[int, Optional[LineKey]]] = {}
        self._snapshots: List[Dict[LineKey, Tuple[int, int]]] = []

    # -- the per-event tracking (the 4x) ---------------------------------------

    def observe(self, signed_bytes: int, domain: str, address: int, thread) -> None:
        self.event_count += 1
        self.charge(thread, TRACEMALLOC_EVENT_OPS)
        if signed_bytes >= 0:
            location = self.attribution(thread)
            key: Optional[LineKey] = (location[0], location[1]) if location else None
            self._live[address] = (signed_bytes, key)
        else:
            self._live.pop(address, None)

    # -- the manual snapshot workflow ---------------------------------------

    def take_snapshot(self) -> int:
        """Record per-site live (bytes, count); returns the snapshot index."""
        aggregate: Dict[LineKey, Tuple[int, int]] = {}
        for nbytes, key in self._live.values():
            if key is None:
                continue
            total, count = aggregate.get(key, (0, 0))
            aggregate[key] = (total + nbytes, count + 1)
        self._snapshots.append(aggregate)
        return len(self._snapshots) - 1

    def compare_snapshots(self, first: int, second: int, top: int = 10) -> List[SnapshotDiff]:
        """The post-hoc diff the programmer inspects by hand."""
        before = self._snapshots[first]
        after = self._snapshots[second]
        diffs = []
        for key in set(before) | set(after):
            b_bytes, b_count = before.get(key, (0, 0))
            a_bytes, a_count = after.get(key, (0, 0))
            if a_bytes != b_bytes:
                diffs.append(
                    SnapshotDiff(
                        filename=key[0],
                        lineno=key[1],
                        growth_bytes=a_bytes - b_bytes,
                        count_growth=a_count - b_count,
                    )
                )
        diffs.sort(key=lambda d: d.growth_bytes, reverse=True)
        return diffs[:top]

    def _report(self) -> BaselineReport:
        mb = 1024 * 1024
        live_by_line: Dict[LineKey, float] = {}
        for nbytes, key in self._live.values():
            if key is not None:
                live_by_line[key] = live_by_line.get(key, 0.0) + nbytes / mb
        return BaselineReport(
            profiler=self.name,
            line_memory_mb=live_by_line,
            total_samples=self.event_count,
        )
