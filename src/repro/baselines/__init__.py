"""The comparison profilers of the paper's Figure 1, reimplemented on the
simulated runtime with each original's *mechanism*:

* deterministic tracers (cProfile, profile, line_profiler, pprofile_det,
  yappi, memory_profiler) — built on ``sys.settrace``-style callbacks with
  realistic probe costs, exhibiting the function bias of §6.2;
* in-process samplers (pprofile_stat, pyinstrument) — signal/timer driven,
  blind to native code and subthreads exactly as the paper describes;
* out-of-process samplers (py-spy, Austin) — zero probe cost, RSS-based
  memory for Austin (the §6.3 inaccuracy);
* allocation interposers (Fil, Memray) — deterministic per-event work,
  peak-only reporting (Fil) and copious logs (Memray);
* the classical rate-based memory sampler of §3.2 (Table 2's baseline).
"""

from repro.baselines.base import BaselineReport, Capabilities, Profiler
from repro.baselines.registry import (
    all_profilers,
    cpu_profilers,
    make_profiler,
    memory_profilers,
    profiler_names,
)

__all__ = [
    "BaselineReport",
    "Capabilities",
    "Profiler",
    "all_profilers",
    "cpu_profilers",
    "memory_profilers",
    "make_profiler",
    "profiler_names",
]
