"""Common interface for all profilers in the comparison (Figure 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ProfilerError

LineKey = Tuple[str, int]
FuncKey = Tuple[str, str]


@dataclass(frozen=True)
class Capabilities:
    """The feature columns of the paper's Figure 1."""

    granularity: str  # "lines" | "functions" | "both"
    unmodified_code: bool = True
    threads: bool = False
    multiprocessing: bool = False
    python_vs_c_time: bool = False
    system_time: bool = False
    profiles_memory: bool = False
    memory_kind: str = ""  # "", "rss", "peak", "allocations", "trends"
    python_vs_c_memory: bool = False
    gpu: bool = False
    memory_trends: bool = False
    copy_volume: bool = False
    detects_leaks: bool = False


@dataclass
class BaselineReport:
    """What a baseline profiler produces. Fields a given profiler does not
    measure stay at their empty defaults."""

    profiler: str
    #: Seconds attributed per line (CPU profilers at line granularity).
    line_times: Dict[LineKey, float] = field(default_factory=dict)
    #: Seconds attributed per function (function-granularity profilers).
    function_times: Dict[FuncKey, float] = field(default_factory=dict)
    #: Memory attributed per line, MB (meaning depends on memory_kind).
    line_memory_mb: Dict[LineKey, float] = field(default_factory=dict)
    peak_memory_mb: Optional[float] = None
    total_samples: int = 0
    #: Bytes of profiler log/output produced during the run (§6.5).
    log_bytes: int = 0

    def function_time(self, name: str) -> float:
        return sum(t for (_f, fn), t in self.function_times.items() if fn == name)

    def line_time(self, lineno: int, filename: Optional[str] = None) -> float:
        return sum(
            t
            for (file, line), t in self.line_times.items()
            if line == lineno and (filename is None or file == filename)
        )

    @property
    def total_reported_time(self) -> float:
        if self.line_times:
            return sum(self.line_times.values())
        return sum(self.function_times.values())


class Profiler:
    """Base class: attach to a process, run, report.

    Lifecycle: ``p = SomeProfiler(process); p.start(); process.run();
    report = p.stop()``.
    """

    #: Short identifier used in benchmark tables (e.g. "cProfile").
    name: str = "base"
    capabilities: Capabilities = Capabilities(granularity="lines")

    def __init__(self, process) -> None:
        self.process = process
        self._running = False

    # -- template methods -------------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise ProfilerError(f"{self.name} already started")
        self._running = True
        self._install()

    def stop(self) -> BaselineReport:
        if not self._running:
            raise ProfilerError(f"{self.name} was not started")
        self._running = False
        self._uninstall()
        return self._report()

    @classmethod
    def run(cls, process, **kwargs) -> BaselineReport:
        profiler = cls(process, **kwargs)
        profiler.start()
        process.run()
        return profiler.stop()

    # -- hooks subclasses implement -------------------------------------------------------

    def _install(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _uninstall(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _report(self) -> BaselineReport:  # pragma: no cover - abstract
        raise NotImplementedError
