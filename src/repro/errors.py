"""Exception hierarchy for the Scalene reproduction.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch everything we raise with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CompileError(ReproError):
    """The mini-language compiler rejected a source program.

    Carries the source location when available so workload authors can find
    the offending construct.
    """

    def __init__(self, message: str, lineno: int | None = None) -> None:
        self.lineno = lineno
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)


class VMError(ReproError):
    """A runtime fault inside the simulated interpreter (e.g. a NameError
    in the simulated program, a stack underflow, or an arity mismatch)."""


class SimRuntimeError(VMError):
    """A runtime error *of the simulated program itself* — the analog of a
    Python exception the program could catch (NameError, TypeError,
    ZeroDivisionError, KeyError, IndexError...).

    The VM unwinds these through ``try``/``except`` blocks set up by
    ``SETUP_EXCEPT``; uncaught, they propagate to the host caller exactly
    like any :class:`VMError`. Interpreter-integrity faults (pc out of
    range, malformed bytecode) remain plain ``VMError`` and are never
    catchable in-language."""


class HeapError(ReproError):
    """Invalid heap operation: double free, free of an unknown pointer,
    or exhaustion of the simulated address space."""


class SchedulerError(ReproError):
    """Invalid scheduling operation, such as joining a thread from itself
    or deadlock detected among simulated threads."""


class SignalError(ReproError):
    """Invalid signal/timer configuration."""


class ProfilerError(ReproError):
    """A profiler was driven incorrectly (started twice, stopped before
    started, or asked to report before a run completed)."""


class GpuError(ReproError):
    """Invalid GPU operation: allocating beyond device memory or freeing an
    unknown device buffer."""


class WorkloadError(ReproError):
    """A workload definition is invalid or references unknown parameters."""


class ProfileSchemaError(ReproError):
    """A serialized profile does not match the schema this build expects:
    wrong or missing schema version, or a payload missing required keys.

    Raised loudly instead of best-effort parsing — a silently misread
    profile would poison every merge and trend computed from it."""


class FaultError(ReproError):
    """An invalid fault-injection schedule: unknown spec fields, rates
    outside [0, 1], or negative delays/counts."""


class StoreError(ReproError):
    """Invalid profile-store operation: unknown profile id, corrupt object
    file (content hash mismatch), or an index entry pointing nowhere."""


class ServeError(ReproError):
    """The profiling daemon was driven incorrectly (bad job payload,
    unknown job id, or a client request the API cannot satisfy)."""
