"""Deterministic fault injection for the simulated runtime and the service.

Scalene's statistics are only trustworthy if they stay bounded when the
event sources misbehave: timer signals arrive late, get coalesced, or are
lost outright while native code runs; allocations fail transiently; the
process clock jumps; profiling workers crash mid-job; store writes tear.
This package provides a *seed-driven fault plane* that reproduces those
failure modes on demand — every decision comes from one seeded PRNG, so a
fault schedule is a value (`FaultSpec`) and a chaos run is replayable.

* :class:`FaultSpec` — a picklable description of which faults to inject
  at which rates (plus the seed).
* :class:`FaultInjector` — the decision engine threaded through
  :mod:`repro.runtime.clock`, :mod:`repro.runtime.signals`,
  :mod:`repro.runtime.memsys`, and :mod:`repro.serve`; it counts every
  fault it fires so profiles can report exactly how degraded they are.
* :func:`apply_fault_counters` — folds an injector's counters into a
  finished profile, marking it ``degraded`` and clamping its invariants.
* :func:`run_chaos` / :class:`ChaosReport` — the seeded end-to-end chaos
  harness behind ``python -m repro chaos`` and ``tests/test_chaos.py``.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultSpec,
    InjectedCrash,
    apply_fault_counters,
)
from repro.faults.chaos import (
    ChaosReport,
    GatewayChaosReport,
    ReshardChaosReport,
    ShardChaosReport,
    run_chaos,
    run_gateway_chaos,
    run_reshard_chaos,
    run_shard_chaos,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedCrash",
    "apply_fault_counters",
    "ChaosReport",
    "GatewayChaosReport",
    "ReshardChaosReport",
    "ShardChaosReport",
    "run_chaos",
    "run_gateway_chaos",
    "run_reshard_chaos",
    "run_shard_chaos",
]
