"""Seeded end-to-end chaos harness for the profiling service.

:func:`run_chaos` drives a randomized-but-replayable fault schedule
through a *real* daemon run: it starts a :class:`ProfileDaemon` on an
ephemeral port, submits concurrent jobs over HTTP — each carrying its
own deterministic :class:`~repro.faults.FaultSpec` (worker crashes and
hard exits, runtime signal drops/coalesces/delays, clock jumps,
allocator faults) — while the store tears its first writes, then checks
the self-healing contract:

* every submitted job completes **exactly once** (status ``done``, a
  profile id, no lost or duplicated work);
* every stored profile is flagged ``degraded`` with *accurate* fault
  counters (verified by re-executing the job's deterministic payload
  in-process and comparing counter-for-counter) and satisfies the
  bounded invariants (:meth:`ProfileData.invariant_violations` empty);
* the injected faults actually fired (pool breaks ≥ hard crashers,
  retries ≥ exception crashers, torn writes as scheduled);
* deleting ``index.json`` and reopening the store rebuilds the index
  cleanly from the blobs (same profile ids).

The same seed replays the same chaos run; ``python -m repro chaos`` and
``tests/test_chaos.py`` both call this function.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.injector import FaultInjector, FaultSpec

#: Cheap workloads the harness cycles through. Distinct names per job
#: keep the circuit breaker (keyed by workload) out of the way of the
#: exactly-once check; a dedicated breaker test trips it on purpose.
CHAOS_WORKLOADS = (
    "pprint",
    "fannkuch",
    "mdp",
    "raytrace",
    "balanced",
    "leaky",
    "docutils",
    "sympy",
)


@dataclass
class ChaosReport:
    """Everything :func:`run_chaos` measured and asserted."""

    seed: int
    jobs: List[Dict] = field(default_factory=list)
    healing: Dict[str, int] = field(default_factory=dict)
    store_faults: Dict[str, int] = field(default_factory=dict)
    profiles_stored: int = 0
    profiles_after_rebuild: int = 0
    recovery: Dict[str, int] = field(default_factory=dict)
    #: Exactly-once / fired-faults / rebuild failures (empty when ok).
    problems: List[str] = field(default_factory=list)
    #: Bounded-invariant violations across all stored profiles.
    violations: List[str] = field(default_factory=list)
    #: Jobs whose stored fault counters differ from a deterministic
    #: in-process replay of the same payload.
    counter_mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.problems or self.violations or self.counter_mismatches)

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "jobs": self.jobs,
            "healing": self.healing,
            "store_faults": self.store_faults,
            "profiles_stored": self.profiles_stored,
            "profiles_after_rebuild": self.profiles_after_rebuild,
            "recovery": self.recovery,
            "problems": self.problems,
            "violations": self.violations,
            "counter_mismatches": self.counter_mismatches,
        }

    def summary(self) -> str:
        done = sum(1 for j in self.jobs if j["status"] == "done")
        lines = [
            f"chaos seed {self.seed}: {'OK' if self.ok else 'FAILED'} — "
            f"{done}/{len(self.jobs)} jobs done exactly once",
            f"  healing: {self.healing}",
            f"  store faults: {self.store_faults}; "
            f"profiles {self.profiles_stored} stored, "
            f"{self.profiles_after_rebuild} after index rebuild "
            f"(recovery {self.recovery})",
        ]
        for name in ("problems", "violations", "counter_mismatches"):
            for item in getattr(self, name):
                lines.append(f"  {name[:-1]}: {item}")
        return "\n".join(lines)


def build_fault_schedules(
    seed: int,
    jobs: int,
    *,
    exit_crashers: int = 2,
    exception_crashers: int = 2,
    signal_drop_rate: float = 0.1,
) -> List[FaultSpec]:
    """The per-job fault schedules for one chaos run (deterministic).

    Every job gets the runtime fault families (drop rate as given, plus
    light coalesce/delay/clock/allocator rates); the first
    ``exit_crashers`` jobs hard-exit their worker on attempt 1 (breaking
    the pool), the next ``exception_crashers`` raise instead.
    """
    specs: List[FaultSpec] = []
    for i in range(jobs):
        crash_attempts = 0
        crash_mode = "exception"
        if i < exit_crashers:
            crash_attempts, crash_mode = 1, "exit"
        elif i < exit_crashers + exception_crashers:
            crash_attempts, crash_mode = 1, "exception"
        specs.append(
            FaultSpec(
                seed=seed * 1000 + i,  # unique stream per job
                signal_drop_rate=signal_drop_rate,
                signal_coalesce_rate=0.05,
                signal_delay_rate=0.05,
                clock_jump_rate=0.01,
                clock_jump_s=0.02,
                enomem_rate=0.02,
                shim_reentrancy_rate=0.02,
                crash_attempts=crash_attempts,
                crash_mode=crash_mode,
            )
        )
    return specs


def run_chaos(
    seed: int = 0,
    *,
    store_root: str,
    jobs: int = 8,
    workers: int = 2,
    exit_crashers: int = 2,
    exception_crashers: int = 2,
    torn_writes: int = 2,
    signal_drop_rate: float = 0.1,
    scale: float = 0.3,
    job_timeout_s: float = 60.0,
    wait_s: float = 180.0,
    verify_counters: bool = True,
) -> ChaosReport:
    """One seeded chaos run against a live daemon (see module docstring).

    The defaults match the acceptance bar: 8 concurrent jobs, 4 worker
    crashes (2 hard exits + 2 exceptions), 2 torn store writes, and a
    10 % signal-drop rate on every job.
    """
    from repro.serve.client import ServeClient
    from repro.serve.daemon import ProfileDaemon
    from repro.serve.healing import RetryPolicy
    from repro.serve.jobs import execute_job
    from repro.serve.store import ProfileStore

    report = ChaosReport(seed=seed)
    specs = build_fault_schedules(
        seed,
        jobs,
        exit_crashers=exit_crashers,
        exception_crashers=exception_crashers,
        signal_drop_rate=signal_drop_rate,
    )
    store = ProfileStore(store_root)
    store.faults = FaultInjector(FaultSpec(seed=seed, torn_writes=torn_writes))
    daemon = ProfileDaemon(
        store,
        workers=workers,
        job_timeout_s=job_timeout_s,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.02, max_delay_s=0.2, seed=seed),
    )
    daemon.start()
    try:
        client = ServeClient(daemon.url)
        workload_cycle = itertools.cycle(CHAOS_WORKLOADS)
        submitted: List[Dict] = [
            client.submit(
                next(workload_cycle),
                scale=scale,
                faults=spec.to_dict(),
            )
            for spec in specs
        ]
        job_ids = [job["id"] for job in submitted]
        _wait_all(client, job_ids, wait_s)
        final = {job["id"]: job for job in client.jobs() if job["id"] in set(job_ids)}
        report.healing = client.health()["healing"]

        # -- exactly-once: every job done, with a stored profile --------
        if len(final) != len(job_ids):
            report.problems.append(
                f"job ledger lost entries: submitted {len(job_ids)}, "
                f"daemon reports {len(final)}"
            )
        for job_id in job_ids:
            job = final.get(job_id)
            if job is None:
                continue
            report.jobs.append(
                {
                    "id": job["id"],
                    "workload": job["workload"],
                    "status": job["status"],
                    "attempts": job["attempts"],
                    "crash_requeues": job["crash_requeues"],
                    "profile_id": job["profile_id"],
                    "error": job["error"],
                }
            )
            if job["status"] != "done":
                report.problems.append(
                    f"{job_id} ({job['workload']}) ended "
                    f"{job['status']}: {job['error']}"
                )
            elif not job["profile_id"]:
                report.problems.append(f"{job_id} done but has no profile id")
        done_profiles = [j["profile_id"] for j in report.jobs if j["profile_id"]]
        if len(set(done_profiles)) != len(done_profiles):
            report.problems.append(
                "duplicated work: two jobs share a stored profile id "
                "(distinct fault seeds must yield distinct profiles)"
            )

        # -- degraded profiles: flags, counters, bounded invariants ------
        for entry in report.jobs:
            if not entry["profile_id"]:
                continue
            profile = store.get(entry["profile_id"])
            if not profile.degraded:
                report.problems.append(
                    f"{entry['id']} profile {entry['profile_id'][:12]} "
                    f"not flagged degraded"
                )
            for name, count in profile.fault_counters.items():
                if count < 0:
                    report.violations.append(
                        f"{entry['id']} fault counter {name} negative: {count}"
                    )
            report.violations.extend(
                f"{entry['id']}: {violation}"
                for violation in profile.invariant_violations()
            )
            if verify_counters:
                mismatch = _replay_counters(
                    execute_job, final[entry["id"]], profile.fault_counters
                )
                if mismatch:
                    report.counter_mismatches.append(f"{entry['id']}: {mismatch}")

        # -- the faults actually fired -----------------------------------
        report.store_faults = store.faults.snapshot()
        if exit_crashers and report.healing.get("pool_breaks", 0) < 1:
            report.problems.append("no pool break despite scheduled hard exits")
        if exit_crashers and report.healing.get("requeues", 0) < exit_crashers:
            report.problems.append(
                f"expected >= {exit_crashers} pool-break requeues, saw "
                f"{report.healing.get('requeues', 0)}"
            )
        if exception_crashers and report.healing.get("retries", 0) < exception_crashers:
            report.problems.append(
                f"expected >= {exception_crashers} retries, saw "
                f"{report.healing.get('retries', 0)}"
            )
        if report.store_faults.get("torn_writes", 0) != torn_writes:
            report.problems.append(
                f"expected {torn_writes} torn writes, injected "
                f"{report.store_faults.get('torn_writes', 0)}"
            )
        report.profiles_stored = len(store)
    finally:
        daemon.stop()

    # -- crash-safe store: the index is derived state ---------------------
    before = sorted(entry["id"] for entry in store.entries())
    store.index_path.unlink()
    reopened = ProfileStore(store_root)
    report.recovery = reopened.last_recovery  # opening the store heals it
    after = sorted(entry["id"] for entry in reopened.entries())
    report.profiles_after_rebuild = len(after)
    if before != after:
        report.problems.append(
            f"index rebuild lost profiles: {len(before)} before, "
            f"{len(after)} after"
        )
    return report


def _wait_all(client, job_ids: List[str], wait_s: float) -> None:
    """Poll until every job is terminal (jobs that error don't raise)."""
    deadline = time.monotonic() + wait_s
    pending = set(job_ids)
    while pending and time.monotonic() < deadline:
        for job in client.jobs():
            if job["id"] in pending and job["status"] in ("done", "error"):
                pending.discard(job["id"])
        if pending:
            time.sleep(0.05)


@dataclass
class ShardChaosReport:
    """Everything :func:`run_shard_chaos` measured and asserted."""

    seed: int
    shards: int
    submitted: int = 0
    done: int = 0
    killed_shard: str = ""
    done_before_kill: int = 0
    redispatched: int = 0
    #: The routed key whose primary shard was killed.
    victim_key: Dict[str, str] = field(default_factory=dict)
    #: Degraded routed reads, each comparing sketch vs exact profile ids.
    degraded_reads: List[Dict] = field(default_factory=list)
    revived: bool = False
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "shards": self.shards,
            "ok": self.ok,
            "submitted": self.submitted,
            "done": self.done,
            "killed_shard": self.killed_shard,
            "done_before_kill": self.done_before_kill,
            "redispatched": self.redispatched,
            "victim_key": self.victim_key,
            "degraded_reads": self.degraded_reads,
            "revived": self.revived,
            "problems": self.problems,
        }

    def summary(self) -> str:
        lines = [
            f"shard chaos seed {self.seed}: {'OK' if self.ok else 'FAILED'} — "
            f"{self.done}/{self.submitted} jobs done across {self.shards} shards "
            f"with {self.killed_shard or '<none>'} killed after "
            f"{self.done_before_kill} completions ({self.redispatched} redispatched)",
        ]
        for read in self.degraded_reads:
            lines.append(
                f"  degraded read {read['endpoint']} -> {read['shard']} "
                f"(degraded={read['degraded']}, ids={len(read['sketch_ids'])})"
            )
        for item in self.problems:
            lines.append(f"  problem: {item}")
        return "\n".join(lines)


def run_shard_chaos(
    seed: int = 0,
    *,
    root: str,
    shards: int = 3,
    jobs: int = 9,
    workers: int = 1,
    kill_after: int = 3,
    scale: float = 0.05,
    wait_s: float = 240.0,
    revive: bool = True,
) -> ShardChaosReport:
    """Kill a shard mid-run; prove no accepted job is lost and reads stay correct.

    Boots a :class:`~repro.serve.shard.ShardPlane` behind a
    :class:`~repro.serve.frontend.ServeFrontend` gateway, submits ``jobs``
    jobs, and — once ``kill_after`` of them (including one whose key's
    *primary* is the chosen victim) have completed — kills the victim
    shard abruptly. The plane must then deliver the scale-out contract:

    * every accepted job still finishes ``done`` with a profile id (the
      gateway ledger re-dispatches the dead shard's work to each key's
      next live owner; content addressing keeps storage exactly-once);
    * every stored profile remains fetchable through the gateway with
      one shard dead (replica copies serve the reads);
    * a routed ``/trend`` for the victim's key answers from the replica
      with ``degraded=true``, and its sketch-path profile ids match the
      exact-path replay ids — degraded but *correct*;
    * after :meth:`ShardPlane.revive`, the gateway's poller marks the
      shard back up and the same read is no longer degraded.
    """
    import random

    from repro.serve.client import ServeClient
    from repro.serve.frontend import ServeFrontend
    from repro.serve.shard import ShardPlane

    if jobs < kill_after + 1:
        raise ValueError("need jobs > kill_after so work is in flight at the kill")
    report = ShardChaosReport(seed=seed, shards=shards)
    plane = ShardPlane(root, shards=shards, workers=workers)
    router = plane.start()
    gateway = ServeFrontend(router, batch_window_s=0.02, poll_interval_s=0.1)
    gateway.start()
    try:
        client = ServeClient(gateway.url)
        rng = random.Random(seed)
        workload_cycle = itertools.cycle(CHAOS_WORKLOADS)
        accepted = [
            client.submit(next(workload_cycle), mode="cpu", scale=scale)
            for _ in range(jobs)
        ]
        report.submitted = len(accepted)

        # The victim is the *primary* shard of one submitted key (picked
        # by the seed), so the degraded-read check below is guaranteed to
        # exercise a replica failover, not an unaffected shard.
        target = rng.choice(accepted)
        victim, _ = router.route(target["workload"], target["config_hash"])
        report.killed_shard = victim
        report.victim_key = {
            "workload": target["workload"],
            "config_hash": target["config_hash"],
        }

        # Let the plane make progress — including the victim key's job —
        # then kill the victim while the rest is still in flight.
        deadline = time.monotonic() + wait_s
        while time.monotonic() < deadline:
            ledger = {j["id"]: j for j in client.jobs()}
            finished = [j for j in ledger.values() if j["status"] == "done"]
            if (
                len(finished) >= kill_after
                and ledger[target["id"]]["status"] == "done"
            ):
                break
            time.sleep(0.05)
        else:
            report.problems.append(
                f"never reached {kill_after} completions before the kill"
            )
            return report
        report.done_before_kill = len(finished)
        plane.kill(victim)

        # Every accepted job must still finish exactly once.
        deadline = time.monotonic() + wait_s
        while time.monotonic() < deadline:
            ledger = {j["id"]: j for j in client.jobs()}
            if all(j["status"] in ("done", "error") for j in ledger.values()):
                break
            time.sleep(0.05)
        ledger = {j["id"]: j for j in client.jobs()}
        if len(ledger) != report.submitted:
            report.problems.append(
                f"gateway ledger lost jobs: accepted {report.submitted}, "
                f"lists {len(ledger)}"
            )
        for job in accepted:
            final = ledger.get(job["id"])
            if final is None:
                report.problems.append(f"{job['id']} vanished from the ledger")
            elif final["status"] != "done":
                report.problems.append(
                    f"{job['id']} ({job['workload']}) ended "
                    f"{final['status']}: {final.get('error')}"
                )
            elif not final["profile_id"]:
                report.problems.append(f"{job['id']} done but has no profile id")
        report.done = sum(1 for j in ledger.values() if j["status"] == "done")
        report.redispatched = gateway.stats["redispatched"]

        # With one shard dead, every stored profile must still be served
        # (replica copies / failover re-runs — content addressing dedupes).
        for job in ledger.values():
            if not job.get("profile_id"):
                continue
            try:
                client.profile(job["profile_id"])
            except Exception as exc:  # noqa: BLE001 — recorded, not raised
                report.problems.append(
                    f"profile {job['profile_id'][:12]} unreadable with "
                    f"{victim} down: {exc}"
                )

        # The victim key's routed read: degraded, from the replica, and
        # sketch-path ids identical to an exact replay of the history.
        expected_ids = {
            j["profile_id"]
            for j in ledger.values()
            if j["status"] == "done"
            and j["workload"] == target["workload"]
            and j["profile_id"]
        }
        read = _routed_trend_check(client, report.victim_key, expected_ids)
        report.degraded_reads.append(read)
        if not read["degraded"]:
            report.problems.append(
                f"read of {target['workload']} routed to {read['shard']} "
                "was not flagged degraded with its primary down"
            )
        report.problems.extend(read.pop("problems"))

        # Revival: the poller probes the shard back up and the same key
        # routes to its primary again, undegraded.
        if revive:
            plane.revive(victim)
            deadline = time.monotonic() + min(wait_s, 30.0)
            while time.monotonic() < deadline:
                if victim in client.health()["shards"]["live"]:
                    break
                time.sleep(0.05)
            else:
                report.problems.append(f"{victim} never marked back up after revive")
                return report
            report.revived = True
            healthy = _routed_trend_check(client, report.victim_key, expected_ids)
            report.degraded_reads.append(healthy)
            if healthy["degraded"] or healthy["shard"] != victim:
                report.problems.append(
                    f"post-revive read went to {healthy['shard']} "
                    f"(degraded={healthy['degraded']}), expected healthy {victim}"
                )
            report.problems.extend(healthy.pop("problems"))
    finally:
        gateway.stop()
        plane.stop()
    return report


def _routed_trend_check(client, key: Dict[str, str], expected_ids) -> Dict:
    """One routed /trend read via the gateway, sketch vs exact compared."""
    problems: List[str] = []
    sketch = client.trend(**key)
    exact = client.trend(exact=1, **key)
    sketch_ids = {point["id"] for point in sketch["trend"]}
    exact_ids = {point["id"] for point in exact["trend"]}
    if sketch_ids != exact_ids:
        problems.append(
            f"sketch trend ids {sorted(sketch_ids)} != exact {sorted(exact_ids)}"
        )
    if expected_ids and sketch_ids != set(expected_ids):
        problems.append(
            f"trend ids {sorted(sketch_ids)} != done profiles "
            f"{sorted(expected_ids)} for the routed key"
        )
    return {
        "endpoint": "/trend",
        "shard": sketch.get("shard"),
        "degraded": bool(sketch.get("degraded")),
        "sketch_ids": sorted(sketch_ids),
        "exact_ids": sorted(exact_ids),
        "problems": problems,
    }


def _replay_counters(
    execute_job, job: Dict, stored_counters: Dict[str, int]
) -> Optional[str]:
    """Re-run the job's final attempt in-process; compare fault counters.

    The simulated runtime and the injector PRNG are both deterministic,
    so the stored counters must match a replay bit for bit (serve-side
    families — torn writes, crash/hang — never appear in profile
    counters; they are store/daemon accounting).
    """
    from repro.core.profile_data import ProfileData

    payload = {
        "workload": job["workload"],
        "profiler": job["profiler"],
        "mode": job["mode"],
        "scale": job["scale"],
        "config": job["config"],
        "faults": job["faults"],
        "attempt": job["attempts"],  # past the scheduled crashes
    }
    expected = ProfileData.from_json(execute_job(payload)).fault_counters
    if expected != stored_counters:
        return f"stored {stored_counters} != replayed {expected}"
    return None
