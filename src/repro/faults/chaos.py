"""Seeded end-to-end chaos harness for the profiling service.

:func:`run_chaos` drives a randomized-but-replayable fault schedule
through a *real* daemon run: it starts a :class:`ProfileDaemon` on an
ephemeral port, submits concurrent jobs over HTTP — each carrying its
own deterministic :class:`~repro.faults.FaultSpec` (worker crashes and
hard exits, runtime signal drops/coalesces/delays, clock jumps,
allocator faults) — while the store tears its first writes, then checks
the self-healing contract:

* every submitted job completes **exactly once** (status ``done``, a
  profile id, no lost or duplicated work);
* every stored profile is flagged ``degraded`` with *accurate* fault
  counters (verified by re-executing the job's deterministic payload
  in-process and comparing counter-for-counter) and satisfies the
  bounded invariants (:meth:`ProfileData.invariant_violations` empty);
* the injected faults actually fired (pool breaks ≥ hard crashers,
  retries ≥ exception crashers, torn writes as scheduled);
* deleting ``index.json`` and reopening the store rebuilds the index
  cleanly from the blobs (same profile ids).

The same seed replays the same chaos run; ``python -m repro chaos`` and
``tests/test_chaos.py`` both call this function.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.injector import FaultInjector, FaultSpec

#: Cheap workloads the harness cycles through. Distinct names per job
#: keep the circuit breaker (keyed by workload) out of the way of the
#: exactly-once check; a dedicated breaker test trips it on purpose.
CHAOS_WORKLOADS = (
    "pprint",
    "fannkuch",
    "mdp",
    "raytrace",
    "balanced",
    "leaky",
    "docutils",
    "sympy",
)


@dataclass
class ChaosReport:
    """Everything :func:`run_chaos` measured and asserted."""

    seed: int
    jobs: List[Dict] = field(default_factory=list)
    healing: Dict[str, int] = field(default_factory=dict)
    store_faults: Dict[str, int] = field(default_factory=dict)
    profiles_stored: int = 0
    profiles_after_rebuild: int = 0
    recovery: Dict[str, int] = field(default_factory=dict)
    #: Exactly-once / fired-faults / rebuild failures (empty when ok).
    problems: List[str] = field(default_factory=list)
    #: Bounded-invariant violations across all stored profiles.
    violations: List[str] = field(default_factory=list)
    #: Jobs whose stored fault counters differ from a deterministic
    #: in-process replay of the same payload.
    counter_mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.problems or self.violations or self.counter_mismatches)

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "jobs": self.jobs,
            "healing": self.healing,
            "store_faults": self.store_faults,
            "profiles_stored": self.profiles_stored,
            "profiles_after_rebuild": self.profiles_after_rebuild,
            "recovery": self.recovery,
            "problems": self.problems,
            "violations": self.violations,
            "counter_mismatches": self.counter_mismatches,
        }

    def summary(self) -> str:
        done = sum(1 for j in self.jobs if j["status"] == "done")
        lines = [
            f"chaos seed {self.seed}: {'OK' if self.ok else 'FAILED'} — "
            f"{done}/{len(self.jobs)} jobs done exactly once",
            f"  healing: {self.healing}",
            f"  store faults: {self.store_faults}; "
            f"profiles {self.profiles_stored} stored, "
            f"{self.profiles_after_rebuild} after index rebuild "
            f"(recovery {self.recovery})",
        ]
        for name in ("problems", "violations", "counter_mismatches"):
            for item in getattr(self, name):
                lines.append(f"  {name[:-1]}: {item}")
        return "\n".join(lines)


def build_fault_schedules(
    seed: int,
    jobs: int,
    *,
    exit_crashers: int = 2,
    exception_crashers: int = 2,
    signal_drop_rate: float = 0.1,
) -> List[FaultSpec]:
    """The per-job fault schedules for one chaos run (deterministic).

    Every job gets the runtime fault families (drop rate as given, plus
    light coalesce/delay/clock/allocator rates); the first
    ``exit_crashers`` jobs hard-exit their worker on attempt 1 (breaking
    the pool), the next ``exception_crashers`` raise instead.
    """
    specs: List[FaultSpec] = []
    for i in range(jobs):
        crash_attempts = 0
        crash_mode = "exception"
        if i < exit_crashers:
            crash_attempts, crash_mode = 1, "exit"
        elif i < exit_crashers + exception_crashers:
            crash_attempts, crash_mode = 1, "exception"
        specs.append(
            FaultSpec(
                seed=seed * 1000 + i,  # unique stream per job
                signal_drop_rate=signal_drop_rate,
                signal_coalesce_rate=0.05,
                signal_delay_rate=0.05,
                clock_jump_rate=0.01,
                clock_jump_s=0.02,
                enomem_rate=0.02,
                shim_reentrancy_rate=0.02,
                crash_attempts=crash_attempts,
                crash_mode=crash_mode,
            )
        )
    return specs


def run_chaos(
    seed: int = 0,
    *,
    store_root: str,
    jobs: int = 8,
    workers: int = 2,
    exit_crashers: int = 2,
    exception_crashers: int = 2,
    torn_writes: int = 2,
    signal_drop_rate: float = 0.1,
    scale: float = 0.3,
    job_timeout_s: float = 60.0,
    wait_s: float = 180.0,
    verify_counters: bool = True,
) -> ChaosReport:
    """One seeded chaos run against a live daemon (see module docstring).

    The defaults match the acceptance bar: 8 concurrent jobs, 4 worker
    crashes (2 hard exits + 2 exceptions), 2 torn store writes, and a
    10 % signal-drop rate on every job.
    """
    from repro.serve.client import ServeClient
    from repro.serve.daemon import ProfileDaemon
    from repro.serve.healing import RetryPolicy
    from repro.serve.jobs import execute_job
    from repro.serve.store import ProfileStore

    report = ChaosReport(seed=seed)
    specs = build_fault_schedules(
        seed,
        jobs,
        exit_crashers=exit_crashers,
        exception_crashers=exception_crashers,
        signal_drop_rate=signal_drop_rate,
    )
    store = ProfileStore(store_root)
    store.faults = FaultInjector(FaultSpec(seed=seed, torn_writes=torn_writes))
    daemon = ProfileDaemon(
        store,
        workers=workers,
        job_timeout_s=job_timeout_s,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.02, max_delay_s=0.2, seed=seed),
    )
    daemon.start()
    try:
        client = ServeClient(daemon.url)
        workload_cycle = itertools.cycle(CHAOS_WORKLOADS)
        submitted: List[Dict] = [
            client.submit(
                next(workload_cycle),
                scale=scale,
                faults=spec.to_dict(),
            )
            for spec in specs
        ]
        job_ids = [job["id"] for job in submitted]
        _wait_all(client, job_ids, wait_s)
        final = {job["id"]: job for job in client.jobs() if job["id"] in set(job_ids)}
        report.healing = client.health()["healing"]

        # -- exactly-once: every job done, with a stored profile --------
        if len(final) != len(job_ids):
            report.problems.append(
                f"job ledger lost entries: submitted {len(job_ids)}, "
                f"daemon reports {len(final)}"
            )
        for job_id in job_ids:
            job = final.get(job_id)
            if job is None:
                continue
            report.jobs.append(
                {
                    "id": job["id"],
                    "workload": job["workload"],
                    "status": job["status"],
                    "attempts": job["attempts"],
                    "crash_requeues": job["crash_requeues"],
                    "profile_id": job["profile_id"],
                    "error": job["error"],
                }
            )
            if job["status"] != "done":
                report.problems.append(
                    f"{job_id} ({job['workload']}) ended "
                    f"{job['status']}: {job['error']}"
                )
            elif not job["profile_id"]:
                report.problems.append(f"{job_id} done but has no profile id")
        done_profiles = [j["profile_id"] for j in report.jobs if j["profile_id"]]
        if len(set(done_profiles)) != len(done_profiles):
            report.problems.append(
                "duplicated work: two jobs share a stored profile id "
                "(distinct fault seeds must yield distinct profiles)"
            )

        # -- degraded profiles: flags, counters, bounded invariants ------
        for entry in report.jobs:
            if not entry["profile_id"]:
                continue
            profile = store.get(entry["profile_id"])
            if not profile.degraded:
                report.problems.append(
                    f"{entry['id']} profile {entry['profile_id'][:12]} "
                    f"not flagged degraded"
                )
            for name, count in profile.fault_counters.items():
                if count < 0:
                    report.violations.append(
                        f"{entry['id']} fault counter {name} negative: {count}"
                    )
            report.violations.extend(
                f"{entry['id']}: {violation}"
                for violation in profile.invariant_violations()
            )
            if verify_counters:
                mismatch = _replay_counters(
                    execute_job, final[entry["id"]], profile.fault_counters
                )
                if mismatch:
                    report.counter_mismatches.append(f"{entry['id']}: {mismatch}")

        # -- the faults actually fired -----------------------------------
        report.store_faults = store.faults.snapshot()
        if exit_crashers and report.healing.get("pool_breaks", 0) < 1:
            report.problems.append("no pool break despite scheduled hard exits")
        if exit_crashers and report.healing.get("requeues", 0) < exit_crashers:
            report.problems.append(
                f"expected >= {exit_crashers} pool-break requeues, saw "
                f"{report.healing.get('requeues', 0)}"
            )
        if exception_crashers and report.healing.get("retries", 0) < exception_crashers:
            report.problems.append(
                f"expected >= {exception_crashers} retries, saw "
                f"{report.healing.get('retries', 0)}"
            )
        if report.store_faults.get("torn_writes", 0) != torn_writes:
            report.problems.append(
                f"expected {torn_writes} torn writes, injected "
                f"{report.store_faults.get('torn_writes', 0)}"
            )
        report.profiles_stored = len(store)
    finally:
        daemon.stop()

    # -- crash-safe store: the index is derived state ---------------------
    before = sorted(entry["id"] for entry in store.entries())
    store.index_path.unlink()
    reopened = ProfileStore(store_root)
    report.recovery = reopened.last_recovery  # opening the store heals it
    after = sorted(entry["id"] for entry in reopened.entries())
    report.profiles_after_rebuild = len(after)
    if before != after:
        report.problems.append(
            f"index rebuild lost profiles: {len(before)} before, "
            f"{len(after)} after"
        )
    return report


def _wait_all(client, job_ids: List[str], wait_s: float) -> None:
    """Poll until every job is terminal (jobs that error don't raise)."""
    deadline = time.monotonic() + wait_s
    pending = set(job_ids)
    while pending and time.monotonic() < deadline:
        for job in client.jobs():
            if job["id"] in pending and job["status"] in ("done", "error"):
                pending.discard(job["id"])
        if pending:
            time.sleep(0.05)


@dataclass
class ShardChaosReport:
    """Everything :func:`run_shard_chaos` measured and asserted."""

    seed: int
    shards: int
    submitted: int = 0
    done: int = 0
    killed_shard: str = ""
    done_before_kill: int = 0
    redispatched: int = 0
    #: The routed key whose primary shard was killed.
    victim_key: Dict[str, str] = field(default_factory=dict)
    #: Degraded routed reads, each comparing sketch vs exact profile ids.
    degraded_reads: List[Dict] = field(default_factory=list)
    revived: bool = False
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "shards": self.shards,
            "ok": self.ok,
            "submitted": self.submitted,
            "done": self.done,
            "killed_shard": self.killed_shard,
            "done_before_kill": self.done_before_kill,
            "redispatched": self.redispatched,
            "victim_key": self.victim_key,
            "degraded_reads": self.degraded_reads,
            "revived": self.revived,
            "problems": self.problems,
        }

    def summary(self) -> str:
        lines = [
            f"shard chaos seed {self.seed}: {'OK' if self.ok else 'FAILED'} — "
            f"{self.done}/{self.submitted} jobs done across {self.shards} shards "
            f"with {self.killed_shard or '<none>'} killed after "
            f"{self.done_before_kill} completions ({self.redispatched} redispatched)",
        ]
        for read in self.degraded_reads:
            lines.append(
                f"  degraded read {read['endpoint']} -> {read['shard']} "
                f"(degraded={read['degraded']}, ids={len(read['sketch_ids'])})"
            )
        for item in self.problems:
            lines.append(f"  problem: {item}")
        return "\n".join(lines)


def run_shard_chaos(
    seed: int = 0,
    *,
    root: str,
    shards: int = 3,
    jobs: int = 9,
    workers: int = 1,
    kill_after: int = 3,
    scale: float = 0.05,
    wait_s: float = 240.0,
    revive: bool = True,
) -> ShardChaosReport:
    """Kill a shard mid-run; prove no accepted job is lost and reads stay correct.

    Boots a :class:`~repro.serve.shard.ShardPlane` behind a
    :class:`~repro.serve.frontend.ServeFrontend` gateway, submits ``jobs``
    jobs, and — once ``kill_after`` of them (including one whose key's
    *primary* is the chosen victim) have completed — kills the victim
    shard abruptly. The plane must then deliver the scale-out contract:

    * every accepted job still finishes ``done`` with a profile id (the
      gateway ledger re-dispatches the dead shard's work to each key's
      next live owner; content addressing keeps storage exactly-once);
    * every stored profile remains fetchable through the gateway with
      one shard dead (replica copies serve the reads);
    * a routed ``/trend`` for the victim's key answers from the replica
      with ``degraded=true``, and its sketch-path profile ids match the
      exact-path replay ids — degraded but *correct*;
    * after :meth:`ShardPlane.revive`, the gateway's poller marks the
      shard back up and the same read is no longer degraded.
    """
    import random

    from repro.serve.client import ServeClient
    from repro.serve.frontend import ServeFrontend
    from repro.serve.shard import ShardPlane

    if jobs < kill_after + 1:
        raise ValueError("need jobs > kill_after so work is in flight at the kill")
    report = ShardChaosReport(seed=seed, shards=shards)
    plane = ShardPlane(root, shards=shards, workers=workers)
    router = plane.start()
    gateway = ServeFrontend(router, batch_window_s=0.02, poll_interval_s=0.1)
    gateway.start()
    try:
        client = ServeClient(gateway.url)
        rng = random.Random(seed)
        workload_cycle = itertools.cycle(CHAOS_WORKLOADS)
        accepted = [
            client.submit(next(workload_cycle), mode="cpu", scale=scale)
            for _ in range(jobs)
        ]
        report.submitted = len(accepted)

        # The victim is the *primary* shard of one submitted key (picked
        # by the seed), so the degraded-read check below is guaranteed to
        # exercise a replica failover, not an unaffected shard.
        target = rng.choice(accepted)
        victim, _ = router.route(target["workload"], target["config_hash"])
        report.killed_shard = victim
        report.victim_key = {
            "workload": target["workload"],
            "config_hash": target["config_hash"],
        }

        # Let the plane make progress — including the victim key's job —
        # then kill the victim while the rest is still in flight.
        deadline = time.monotonic() + wait_s
        while time.monotonic() < deadline:
            ledger = {j["id"]: j for j in client.jobs()}
            finished = [j for j in ledger.values() if j["status"] == "done"]
            if (
                len(finished) >= kill_after
                and ledger[target["id"]]["status"] == "done"
            ):
                break
            time.sleep(0.05)
        else:
            report.problems.append(
                f"never reached {kill_after} completions before the kill"
            )
            return report
        report.done_before_kill = len(finished)
        plane.kill(victim)

        # Every accepted job must still finish exactly once.
        deadline = time.monotonic() + wait_s
        while time.monotonic() < deadline:
            ledger = {j["id"]: j for j in client.jobs()}
            if all(j["status"] in ("done", "error") for j in ledger.values()):
                break
            time.sleep(0.05)
        ledger = {j["id"]: j for j in client.jobs()}
        if len(ledger) != report.submitted:
            report.problems.append(
                f"gateway ledger lost jobs: accepted {report.submitted}, "
                f"lists {len(ledger)}"
            )
        for job in accepted:
            final = ledger.get(job["id"])
            if final is None:
                report.problems.append(f"{job['id']} vanished from the ledger")
            elif final["status"] != "done":
                report.problems.append(
                    f"{job['id']} ({job['workload']}) ended "
                    f"{final['status']}: {final.get('error')}"
                )
            elif not final["profile_id"]:
                report.problems.append(f"{job['id']} done but has no profile id")
        report.done = sum(1 for j in ledger.values() if j["status"] == "done")
        report.redispatched = gateway.stats["redispatched"]

        # With one shard dead, every stored profile must still be served
        # (replica copies / failover re-runs — content addressing dedupes).
        for job in ledger.values():
            if not job.get("profile_id"):
                continue
            try:
                client.profile(job["profile_id"])
            except Exception as exc:  # noqa: BLE001 — recorded, not raised
                report.problems.append(
                    f"profile {job['profile_id'][:12]} unreadable with "
                    f"{victim} down: {exc}"
                )

        # The victim key's routed read: degraded, from the replica, and
        # sketch-path ids identical to an exact replay of the history.
        expected_ids = {
            j["profile_id"]
            for j in ledger.values()
            if j["status"] == "done"
            and j["workload"] == target["workload"]
            and j["profile_id"]
        }
        read = _routed_trend_check(client, report.victim_key, expected_ids)
        report.degraded_reads.append(read)
        if not read["degraded"]:
            report.problems.append(
                f"read of {target['workload']} routed to {read['shard']} "
                "was not flagged degraded with its primary down"
            )
        report.problems.extend(read.pop("problems"))

        # Revival: the poller probes the shard back up and the same key
        # routes to its primary again, undegraded.
        if revive:
            plane.revive(victim)
            deadline = time.monotonic() + min(wait_s, 30.0)
            while time.monotonic() < deadline:
                if victim in client.health()["shards"]["live"]:
                    break
                time.sleep(0.05)
            else:
                report.problems.append(f"{victim} never marked back up after revive")
                return report
            report.revived = True
            healthy = _routed_trend_check(client, report.victim_key, expected_ids)
            report.degraded_reads.append(healthy)
            if healthy["degraded"] or healthy["shard"] != victim:
                report.problems.append(
                    f"post-revive read went to {healthy['shard']} "
                    f"(degraded={healthy['degraded']}), expected healthy {victim}"
                )
            report.problems.extend(healthy.pop("problems"))
    finally:
        gateway.stop()
        plane.stop()
    return report


def _routed_trend_check(client, key: Dict[str, str], expected_ids) -> Dict:
    """One routed /trend read via the gateway, sketch vs exact compared."""
    problems: List[str] = []
    sketch = client.trend(**key)
    exact = client.trend(exact=1, **key)
    sketch_ids = {point["id"] for point in sketch["trend"]}
    exact_ids = {point["id"] for point in exact["trend"]}
    if sketch_ids != exact_ids:
        problems.append(
            f"sketch trend ids {sorted(sketch_ids)} != exact {sorted(exact_ids)}"
        )
    if expected_ids and sketch_ids != set(expected_ids):
        problems.append(
            f"trend ids {sorted(sketch_ids)} != done profiles "
            f"{sorted(expected_ids)} for the routed key"
        )
    return {
        "endpoint": "/trend",
        "shard": sketch.get("shard"),
        "degraded": bool(sketch.get("degraded")),
        "sketch_ids": sorted(sketch_ids),
        "exact_ids": sorted(exact_ids),
        "problems": problems,
    }


@dataclass
class GatewayChaosReport:
    """Everything :func:`run_gateway_chaos` measured and asserted."""

    seed: int
    shards: int
    submitted: int = 0
    done: int = 0
    done_before_kill: int = 0
    recovered: int = 0
    recovered_requeued: int = 0
    deduped_resubmit: bool = False
    unique_profiles: int = 0
    wal: Dict[str, int] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "shards": self.shards,
            "ok": self.ok,
            "submitted": self.submitted,
            "done": self.done,
            "done_before_kill": self.done_before_kill,
            "recovered": self.recovered,
            "recovered_requeued": self.recovered_requeued,
            "deduped_resubmit": self.deduped_resubmit,
            "unique_profiles": self.unique_profiles,
            "wal": self.wal,
            "problems": self.problems,
        }

    def summary(self) -> str:
        lines = [
            f"gateway chaos seed {self.seed}: {'OK' if self.ok else 'FAILED'} — "
            f"gateway killed -9 after {self.done_before_kill}/{self.submitted} "
            f"completions; restart recovered {self.recovered} ledger records "
            f"({self.recovered_requeued} requeued), "
            f"{self.done} done, {self.unique_profiles} unique profiles",
        ]
        for item in self.problems:
            lines.append(f"  problem: {item}")
        return "\n".join(lines)


def run_gateway_chaos(
    seed: int = 0,
    *,
    root: str,
    shards: int = 2,
    jobs: int = 10,
    workers: int = 1,
    kill_after: int = 3,
    scale: float = 0.05,
    wait_s: float = 240.0,
) -> GatewayChaosReport:
    """kill -9 the WAL-backed gateway mid-burst; prove nothing is lost.

    Boots a shard plane behind a gateway whose acceptance ledger is
    backed by a :class:`~repro.serve.wal.WriteAheadLog`, submits ``jobs``
    keyed jobs, crash-stops the gateway (:meth:`ServeFrontend.kill` — no
    flush, no checkpoint, sockets severed) once ``kill_after`` have
    completed, then boots a *fresh* gateway over the same WAL and
    asserts the durability contract:

    * the recovered ledger contains **every** accepted job — zero loss;
    * every job still reaches ``done`` with a profile id, and distinct
      payloads yield distinct profiles (re-dispatched work was not
      double-stored: content addressing collapses re-runs);
    * resubmitting an original ``submit_key`` against the new gateway
      dedupes to the *same* gateway id instead of double-running.
    """
    from pathlib import Path

    from repro.serve.client import ServeClient
    from repro.serve.frontend import ServeFrontend
    from repro.serve.shard import ShardPlane

    report = GatewayChaosReport(seed=seed, shards=shards)
    wal_dir = str(Path(root) / "gateway-wal")
    plane = ShardPlane(root, shards=shards, workers=workers)
    router = plane.start()
    gateway = ServeFrontend(
        router, batch_window_s=0.02, poll_interval_s=0.1,
        wal=wal_dir, plane=plane,
    )
    gateway.start()
    live_gateway = gateway
    try:
        client = ServeClient(gateway.url)
        workload_cycle = itertools.cycle(CHAOS_WORKLOADS)
        accepted = [
            client.submit(
                next(workload_cycle),
                mode="cpu",
                # Distinct scale per repeat of a workload -> distinct
                # profile content, so duplicated work would be visible.
                # The tail of the burst is much heavier so jobs are
                # still in flight when the gateway dies.
                scale=scale
                * (1.0 + 0.25 * (i // len(CHAOS_WORKLOADS)))
                * (40.0 if i >= jobs - 2 else 1.0),
                submit_key=f"ck-{seed}-{i}",
            )
            for i in range(jobs)
        ]
        report.submitted = len(accepted)

        # Let some jobs finish, keep the rest in flight, then crash-stop.
        deadline = time.monotonic() + wait_s
        while time.monotonic() < deadline:
            done = [j for j in client.jobs() if j["status"] == "done"]
            if len(done) >= kill_after:
                break
            time.sleep(0.01)
        else:
            report.problems.append(
                f"never reached {kill_after} completions before the kill"
            )
            return report
        report.done_before_kill = len(done)
        gateway.kill()

        # A fresh gateway over the same WAL must recover every record.
        gateway2 = ServeFrontend(
            router, batch_window_s=0.02, poll_interval_s=0.1,
            wal=wal_dir, plane=plane,
        )
        gateway2.start()
        live_gateway = gateway2
        report.recovered = gateway2.stats["recovered"]
        report.recovered_requeued = gateway2.stats["recovered_requeued"]
        report.wal = gateway2.wal.stats_dict()
        client = ServeClient(gateway2.url)
        ledger = {j["id"]: j for j in client.jobs()}
        for job in accepted:
            if job["id"] not in ledger:
                report.problems.append(
                    f"{job['id']} accepted before the kill but missing "
                    f"from the recovered ledger"
                )
        if report.recovered != len(accepted):
            report.problems.append(
                f"recovered {report.recovered} ledger records, "
                f"expected {len(accepted)}"
            )

        # Resubmitting an original key must dedupe, not double-run.
        redo = client.submit(
            accepted[0]["workload"],
            mode="cpu",
            scale=scale,
            submit_key=f"ck-{seed}-0",
        )
        report.deduped_resubmit = bool(redo.get("deduped"))
        if redo["id"] != accepted[0]["id"]:
            report.problems.append(
                f"resubmit of ck-{seed}-0 minted a new job {redo['id']} "
                f"instead of deduping to {accepted[0]['id']}"
            )

        # Every accepted job still completes exactly once.
        deadline = time.monotonic() + wait_s
        while time.monotonic() < deadline:
            ledger = {j["id"]: j for j in client.jobs()}
            if all(
                ledger.get(j["id"], {}).get("status") in ("done", "error")
                for j in accepted
            ):
                break
            time.sleep(0.05)
        ledger = {j["id"]: j for j in client.jobs()}
        profile_ids = []
        for job in accepted:
            final = ledger.get(job["id"])
            if final is None:
                continue  # already reported missing above
            if final["status"] != "done":
                report.problems.append(
                    f"{job['id']} ({job['workload']}) ended "
                    f"{final['status']}: {final.get('error')}"
                )
            elif not final["profile_id"]:
                report.problems.append(f"{job['id']} done but has no profile id")
            else:
                profile_ids.append(final["profile_id"])
        report.done = sum(1 for j in ledger.values() if j["status"] == "done")
        report.unique_profiles = len(set(profile_ids))
        if report.unique_profiles != len(profile_ids):
            report.problems.append(
                "duplicated work: two distinct payloads share a stored "
                "profile id"
            )
        for profile_id in set(profile_ids):
            try:
                client.profile(profile_id)
            except Exception as exc:  # noqa: BLE001 — recorded, not raised
                report.problems.append(
                    f"profile {profile_id[:12]} unreadable after "
                    f"recovery: {exc}"
                )
    finally:
        live_gateway.stop()
        plane.stop()
    return report


@dataclass
class ReshardChaosReport:
    """Everything :func:`run_reshard_chaos` measured and asserted."""

    seed: int
    shards_before: int
    shards_after: int = 0
    submitted: int = 0
    done: int = 0
    epoch_before: int = 0
    epoch_after: int = 0
    keys_total: int = 0
    keys_moved: int = 0
    entries_copied: int = 0
    reads_during_migration: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "shards_before": self.shards_before,
            "shards_after": self.shards_after,
            "submitted": self.submitted,
            "done": self.done,
            "epoch_before": self.epoch_before,
            "epoch_after": self.epoch_after,
            "keys_total": self.keys_total,
            "keys_moved": self.keys_moved,
            "entries_copied": self.entries_copied,
            "reads_during_migration": self.reads_during_migration,
            "problems": self.problems,
        }

    def summary(self) -> str:
        lines = [
            f"reshard chaos seed {self.seed}: {'OK' if self.ok else 'FAILED'} — "
            f"{self.shards_before} -> {self.shards_after} shards under load "
            f"(epoch {self.epoch_before} -> {self.epoch_after}), "
            f"{self.keys_moved}/{self.keys_total} keys moved, "
            f"{self.entries_copied} entries copied, "
            f"{self.reads_during_migration} reads served during migration, "
            f"{self.done}/{self.submitted} jobs done",
        ]
        for item in self.problems:
            lines.append(f"  problem: {item}")
        return "\n".join(lines)


def run_reshard_chaos(
    seed: int = 0,
    *,
    root: str,
    shards: int = 2,
    jobs: int = 8,
    workers: int = 1,
    warm: int = 2,
    scale: float = 0.05,
    wait_s: float = 240.0,
) -> ReshardChaosReport:
    """Grow the ring by one shard under load; prove every key migrates.

    Submits ``jobs`` jobs, waits for ``warm`` completions (so there is
    stored state to migrate) with the rest still in flight, then drives
    ``POST /reshard {"action": "add"}`` through the gateway and asserts
    the live-resharding contract:

    * reads of already-stored profiles succeed *throughout* the
      migration (old-or-new owners serve them);
    * the ring epoch advances exactly once and the migration finishes
      ``done`` with no keys left behind;
    * after the epoch flips, **every** stored key's new primary pair
      holds a copy (verified against each shard's own store);
    * every accepted job still completes with a profile id.
    """
    from repro.serve.client import ServeClient
    from repro.serve.frontend import ServeFrontend
    from repro.serve.router import shard_key
    from repro.serve.shard import ShardPlane

    from pathlib import Path

    report = ReshardChaosReport(seed=seed, shards_before=shards)
    plane = ShardPlane(root, shards=shards, workers=workers)
    router = plane.start()
    gateway = ServeFrontend(
        router, batch_window_s=0.02, poll_interval_s=0.1,
        wal=str(Path(root) / "gateway-wal"), plane=plane,
    )
    gateway.start()
    try:
        client = ServeClient(gateway.url)
        workload_cycle = itertools.cycle(CHAOS_WORKLOADS)
        accepted = [
            client.submit(
                next(workload_cycle),
                mode="cpu",
                scale=scale * (1.0 + 0.25 * (i // len(CHAOS_WORKLOADS))),
            )
            for i in range(jobs)
        ]
        report.submitted = len(accepted)
        report.epoch_before = router.epoch

        deadline = time.monotonic() + wait_s
        while time.monotonic() < deadline:
            warm_done = [
                j for j in client.jobs()
                if j["status"] == "done" and j["profile_id"]
            ]
            if len(warm_done) >= warm:
                break
            time.sleep(0.05)
        else:
            report.problems.append(
                f"never reached {warm} completions before the reshard"
            )
            return report
        warm_ids = [j["profile_id"] for j in warm_done]

        client._request("/reshard", body={"action": "add"}, idempotent=False)

        # Reads must be served from old-or-new owners for the whole
        # migration window.
        deadline = time.monotonic() + wait_s
        while time.monotonic() < deadline:
            status = client._request("/reshard")
            for profile_id in warm_ids:
                try:
                    client.profile(profile_id)
                    report.reads_during_migration += 1
                except Exception as exc:  # noqa: BLE001 — recorded below
                    report.problems.append(
                        f"profile {profile_id[:12]} unreadable during "
                        f"migration ({status['state']}): {exc}"
                    )
            if status["state"] in ("done", "failed", "idle"):
                break
            time.sleep(0.05)
        else:
            report.problems.append("reshard never finished")
            return report
        if status["state"] != "done":
            report.problems.append(
                f"reshard ended {status['state']}: {status.get('error')}"
            )
        report.keys_total = status.get("keys_total", 0)
        report.keys_moved = status.get("keys_moved", 0)
        report.entries_copied = status.get("entries_copied", 0)
        report.epoch_after = router.epoch
        report.shards_after = len(router.ring.shards)
        if report.epoch_after != report.epoch_before + 1:
            report.problems.append(
                f"epoch {report.epoch_before} -> {report.epoch_after}, "
                f"expected exactly one bump"
            )
        if report.shards_after != shards + 1:
            report.problems.append(
                f"ring has {report.shards_after} shards after an add, "
                f"expected {shards + 1}"
            )
        if router.migrating:
            report.problems.append("router still migrating after reshard done")

        # Every accepted job still completes.
        deadline = time.monotonic() + wait_s
        while time.monotonic() < deadline:
            ledger = {j["id"]: j for j in client.jobs()}
            if all(
                ledger.get(j["id"], {}).get("status") in ("done", "error")
                for j in accepted
            ):
                break
            time.sleep(0.05)
        ledger = {j["id"]: j for j in client.jobs()}
        for job in accepted:
            final = ledger.get(job["id"])
            if final is None:
                report.problems.append(f"{job['id']} vanished from the ledger")
            elif final["status"] != "done":
                report.problems.append(
                    f"{job['id']} ({job['workload']}) ended "
                    f"{final['status']}: {final.get('error')}"
                )
        report.done = sum(1 for j in ledger.values() if j["status"] == "done")

        # Placement audit: in the new epoch, every stored key's primary
        # pair holds a copy (checked against each shard's own store).
        holdings = {
            name: {e["id"] for e in ServeClient(url).profiles(limit=0)}
            for name, url in plane.urls().items()
        }
        audited = {}
        for name, url in plane.urls().items():
            for entry in ServeClient(url).profiles(limit=0):
                audited[entry["id"]] = entry
        for profile_id, entry in audited.items():
            owners = router.ring.owners(
                shard_key(entry["workload"], entry["config_hash"])
            )[:2]
            for owner in owners:
                if profile_id not in holdings.get(owner, set()):
                    report.problems.append(
                        f"profile {profile_id[:12]} "
                        f"({entry['workload']}) missing from new owner "
                        f"{owner} after migration"
                    )
    finally:
        gateway.stop()
        plane.stop()
    return report


def _replay_counters(
    execute_job, job: Dict, stored_counters: Dict[str, int]
) -> Optional[str]:
    """Re-run the job's final attempt in-process; compare fault counters.

    The simulated runtime and the injector PRNG are both deterministic,
    so the stored counters must match a replay bit for bit (serve-side
    families — torn writes, crash/hang — never appear in profile
    counters; they are store/daemon accounting).
    """
    from repro.core.profile_data import ProfileData

    payload = {
        "workload": job["workload"],
        "profiler": job["profiler"],
        "mode": job["mode"],
        "scale": job["scale"],
        "config": job["config"],
        "faults": job["faults"],
        "attempt": job["attempts"],  # past the scheduled crashes
    }
    expected = ProfileData.from_json(execute_job(payload)).fault_counters
    if expected != stored_counters:
        return f"stored {stored_counters} != replayed {expected}"
    return None
