"""The fault plane: seed-driven fault decisions plus per-fault accounting.

A :class:`FaultSpec` says *what* may go wrong and how often; a
:class:`FaultInjector` wraps it with one seeded PRNG and answers the
point-of-injection questions the runtime asks ("does this timer expiry
get dropped?", "does this allocation hit ENOMEM?"). Every fired fault is
counted, and :func:`apply_fault_counters` carries those counts onto the
finished profile so a degraded profile says precisely how it degraded.

Fault families and where they are consulted:

================  ==========================================  =====================
family            consulted by                                 counter
================  ==========================================  =====================
signal drop       ``SignalManager.poll`` (per timer expiry)    ``signals_dropped``
signal coalesce   ``SignalManager.poll`` (per timer expiry)    ``signals_coalesced``
signal delay      ``SignalManager.poll`` (per raised signal)   ``signals_delayed``
clock jump        ``VirtualClock.advance_*``                   ``clock_jumps``
ENOMEM            ``MemSubsystem.py_alloc / native_alloc``     ``alloc_enomem``
shim reentrancy   ``MemSubsystem.py_alloc / native_alloc``     ``shim_reentrancy``
worker crash      ``serve.jobs.execute_job`` (per attempt)     (daemon-side stats)
worker hang       ``serve.jobs.execute_job`` (per attempt)     (daemon-side stats)
torn store write  ``serve.store.ProfileStore._atomic_write``   ``torn_writes``
================  ==========================================  =====================

The worker crash/hang faults are *schedules*, not rates: they key off the
job's attempt number so a crashing job deterministically crashes on its
first N attempts and then succeeds — the shape retry logic must survive.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import FaultError

#: Worker-crash modes: raise an exception inside the worker (the pool
#: survives) or hard-exit the worker process (BrokenProcessPool).
CRASH_MODES = ("exception", "exit")


class InjectedCrash(RuntimeError):
    """Raised inside a worker by a scheduled ``crash_mode="exception"``.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the daemon's
    healing path must treat it like any unexpected worker exception. It
    is a module-level class so it pickles across the process boundary.
    """


@dataclass
class FaultSpec:
    """A complete, picklable fault schedule (all faults off by default)."""

    seed: int = 0
    # -- timer-signal faults (runtime/signals.py) ----------------------
    signal_drop_rate: float = 0.0
    signal_coalesce_rate: float = 0.0
    signal_delay_rate: float = 0.0
    signal_delay_s: float = 0.02
    # -- clock faults (runtime/clock.py) -------------------------------
    clock_jump_rate: float = 0.0
    clock_jump_s: float = 0.05
    # -- allocator faults (runtime/memsys.py) --------------------------
    enomem_rate: float = 0.0
    shim_reentrancy_rate: float = 0.0
    # -- serve-side faults ---------------------------------------------
    #: Crash the worker while the job's attempt number is <= this.
    crash_attempts: int = 0
    crash_mode: str = "exception"
    #: Stall the worker (sleeping ``hang_s`` real seconds) while the
    #: job's attempt number is <= this — exercises job timeouts.
    hang_attempts: int = 0
    hang_s: float = 0.0
    #: Tear the first N store writes (partial content, no atomic rename).
    torn_writes: int = 0

    _RATES = (
        "signal_drop_rate",
        "signal_coalesce_rate",
        "signal_delay_rate",
        "clock_jump_rate",
        "enomem_rate",
        "shim_reentrancy_rate",
    )

    def __post_init__(self) -> None:
        for name in self._RATES:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {rate!r}")
        if self.crash_mode not in CRASH_MODES:
            raise FaultError(
                f"crash_mode must be one of {CRASH_MODES}, got {self.crash_mode!r}"
            )
        for name in ("signal_delay_s", "clock_jump_s", "hang_s"):
            if getattr(self, name) < 0:
                raise FaultError(f"{name} must be >= 0")
        for name in ("crash_attempts", "hang_attempts", "torn_writes"):
            if getattr(self, name) < 0:
                raise FaultError(f"{name} must be >= 0")

    @property
    def injects_runtime_faults(self) -> bool:
        """Whether any in-process (profiler-visible) fault is enabled."""
        return any(getattr(self, name) > 0.0 for name in self._RATES)

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSpec":
        """Validate and build a spec from a job-payload dict."""
        if not isinstance(payload, dict):
            raise FaultError("fault spec must be a JSON object")
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - valid
        if unknown:
            raise FaultError(f"unknown fault spec fields: {sorted(unknown)}")
        return cls(**payload)


class FaultInjector:
    """Answers fault decisions from one seeded PRNG and counts the hits.

    Decisions are consumed in runtime order; because the simulated
    runtime itself is deterministic, the same spec (seed included)
    replays the same fault schedule bit for bit.
    """

    def __init__(self, spec: Optional[FaultSpec] = None, **overrides) -> None:
        self.spec = spec if spec is not None else FaultSpec(**overrides)
        self._rng = random.Random(self.spec.seed)
        self.counters: Dict[str, int] = {}

    # -- bookkeeping ----------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def snapshot(self) -> Dict[str, int]:
        """A copy of the fault counters (only families that fired)."""
        return dict(self.counters)

    @property
    def degrades_profile(self) -> bool:
        """Whether an attached profile must be flagged ``degraded``.

        True as soon as any runtime fault is *enabled*, not merely after
        one fires: a schedule that may drop signals makes the resulting
        statistics untrustworthy-by-construction even on a lucky run.
        """
        return self.spec.injects_runtime_faults or bool(self.counters)

    def _chance(self, rate: float) -> bool:
        return rate > 0.0 and self._rng.random() < rate

    # -- timer-signal faults (consulted by SignalManager) ---------------

    def timer_expiry_fate(self) -> str:
        """``"deliver" | "drop" | "coalesce"`` for one timer expiry."""
        if self._chance(self.spec.signal_drop_rate):
            self.count("signals_dropped")
            return "drop"
        if self._chance(self.spec.signal_coalesce_rate):
            self.count("signals_coalesced")
            return "coalesce"
        return "deliver"

    def signal_delay(self) -> float:
        """Extra delivery delay (seconds) for one raised timer signal."""
        if self._chance(self.spec.signal_delay_rate):
            self.count("signals_delayed")
            return self.spec.signal_delay_s
        return 0.0

    # -- clock faults (consulted by VirtualClock) ------------------------

    def clock_jump(self) -> float:
        """Forward wall-clock jump (seconds) to fold into one advance."""
        if self._chance(self.spec.clock_jump_rate):
            self.count("clock_jumps")
            return self.spec.clock_jump_s
        return 0.0

    # -- allocator faults (consulted by MemSubsystem) --------------------

    def alloc_enomem(self) -> bool:
        """Whether this allocation transiently fails with ENOMEM.

        The runtime absorbs the failure by retrying (the allocation then
        succeeds); the fault's observable effect is the counter plus the
        perturbed event stream.
        """
        if self._chance(self.spec.enomem_rate):
            self.count("alloc_enomem")
            return True
        return False

    def shim_reentrancy(self) -> bool:
        """Whether this allocation happens "inside the allocator".

        A reentrant allocation bypasses the installed profiler hooks —
        memory moves but no profiler event is published, the exact §3.1
        hazard Scalene's in-allocator flag exists to contain.
        """
        if self._chance(self.spec.shim_reentrancy_rate):
            self.count("shim_reentrancy")
            return True
        return False

    # -- serve-side faults ------------------------------------------------

    def worker_crash(self, attempt: int) -> Optional[str]:
        """Crash mode for this execution attempt (None = run normally)."""
        if attempt <= self.spec.crash_attempts:
            return self.spec.crash_mode
        return None

    def worker_hang(self, attempt: int) -> float:
        """Real seconds this attempt should stall before running."""
        if attempt <= self.spec.hang_attempts:
            return self.spec.hang_s
        return 0.0

    def tear_write(self) -> bool:
        """Whether to tear the next store write (first N writes tear)."""
        if self.counters.get("torn_writes", 0) < self.spec.torn_writes:
            self.count("torn_writes")
            return True
        return False


def apply_fault_counters(profile, injector: Optional[FaultInjector]):
    """Fold ``injector``'s accounting into a finished profile.

    Marks the profile ``degraded``, merges the fault counters, and clamps
    the bounded invariants (percentages, likelihoods, volumes) so that a
    degraded profile is still a *valid* profile. No-op without faults.
    """
    if injector is None or not injector.degrades_profile:
        return profile
    profile.degraded = True
    for name, value in injector.snapshot().items():
        profile.fault_counters[name] = profile.fault_counters.get(name, 0) + value
    profile.clamp_bounded()
    return profile
