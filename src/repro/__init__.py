"""Reproduction of "Triangulating Python Performance Issues with Scalene"
(OSDI 2023) on a fully simulated CPython-like runtime.

Quickstart::

    from repro import Scalene, SimProcess

    process = SimProcess(source, filename="app.py")
    scalene = Scalene(process)              # full mode: CPU+GPU+memory
    scalene.start()
    process.run()
    profile = scalene.stop()
    print(profile.render_text())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro._version import __version__
from repro.runtime.process import SimProcess
from repro.interp.vm import VMConfig

__all__ = ["__version__", "SimProcess", "VMConfig", "Scalene"]


def __getattr__(name):
    # Lazy import: repro.core pulls in the full profiler stack.
    if name == "Scalene":
        from repro.core.scalene import Scalene

        return Scalene
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
