"""Time and size units used throughout the simulation.

The simulated runtime measures time in *virtual seconds* (floats) and memory
in bytes (ints). These helpers keep magic numbers out of the rest of the
code and provide human-readable formatting for reports.
"""

from __future__ import annotations

# -- time ------------------------------------------------------------------

NANOSECOND = 1e-9
MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0

# -- sizes -----------------------------------------------------------------

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Size of a simulated OS page. Matches the common 4 KiB page used by the
#: paper's experimental platform; RSS is counted in units of this.
PAGE_SIZE = 4 * KiB

#: Scalene's memory sampling threshold: "a prime number slightly above
#: 10MB" (§3.2). This is the same value the open-source release uses.
SCALENE_THRESHOLD = 10_485_767

#: Default CPU sampling interval (the quantum ``q`` of §2.1), seconds.
SCALENE_CPU_INTERVAL = 0.01

#: CPython's default thread switch interval (``sys.getswitchinterval()``).
DEFAULT_SWITCH_INTERVAL = 0.005


def format_bytes(n: float) -> str:
    """Render a byte count in a compact human-readable form.

    >>> format_bytes(532)
    '532B'
    >>> format_bytes(10 * MiB)
    '10.0MB'
    """
    sign = "-" if n < 0 else ""
    n = abs(n)
    if n < KiB:
        return f"{sign}{int(n)}B"
    if n < MiB:
        return f"{sign}{n / KiB:.1f}KB"
    if n < GiB:
        return f"{sign}{n / MiB:.1f}MB"
    return f"{sign}{n / GiB:.2f}GB"


def format_seconds(t: float) -> str:
    """Render a duration in a compact human-readable form.

    >>> format_seconds(0.000002)
    '2.0us'
    >>> format_seconds(12.5)
    '12.50s'
    """
    if t < MICROSECOND:
        return f"{t / NANOSECOND:.0f}ns"
    if t < MILLISECOND:
        return f"{t / MICROSECOND:.1f}us"
    if t < SECOND:
        return f"{t / MILLISECOND:.1f}ms"
    return f"{t:.2f}s"


def pages_for(nbytes: int) -> int:
    """Number of whole pages needed to hold ``nbytes``."""
    if nbytes <= 0:
        return 0
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
