"""LD_PRELOAD-style allocator interposition ("the shim", paper §3.1).

Every system-allocator call in the simulated process flows through an
:class:`AllocatorShim`. Profilers subscribe listeners to observe
``malloc``/``free``/``memcpy`` events; the shim itself adds no policy.

The shim implements the paper's *in-allocator flag*: a per-thread marker
set while execution is inside a memory allocator (for instance, while the
Python object allocator services a request and calls down into the system
allocator for a fresh arena). Events raised while the flag is set are
passed through to the underlying allocator but **not** published to
listeners, which both prevents double counting and lets profiler code
allocate memory without infinite recursion.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.memory.sysalloc import Allocation, SystemAllocator

DOMAIN_PYTHON = "python"
DOMAIN_NATIVE = "native"


@dataclass
class AllocEvent:
    """A single allocation or free observed by the shim."""

    kind: str  # "malloc" | "free"
    nbytes: int
    address: int
    domain: str  # DOMAIN_PYTHON | DOMAIN_NATIVE
    thread: object  # SimThread or None
    wall: float
    cpu: float


@dataclass
class MemcpyEvent:
    """A single ``memcpy`` observed by the shim (feeds copy volume, §3.5)."""

    nbytes: int
    thread: object
    wall: float
    #: Optional annotation for cross-device copies ("h2d", "d2h", "host").
    direction: str = "host"


class ShimListener:
    """Interface profilers implement to observe shim traffic.

    The default implementations ignore everything, so a listener may
    override only what it needs.
    """

    def on_malloc(self, event: AllocEvent) -> None:  # pragma: no cover
        pass

    def on_free(self, event: AllocEvent) -> None:  # pragma: no cover
        pass

    def on_memcpy(self, event: MemcpyEvent) -> None:  # pragma: no cover
        pass


class AllocatorShim:
    """Interposes on the simulated system allocator.

    Also acts as the central event bus for *Python-domain* allocation
    events: the profiler's PyMem wrapper publishes its observations through
    :meth:`publish_python_event` so that a single listener surface sees the
    whole allocation stream with domain tags, as Scalene's C++ shim does.
    """

    def __init__(self, sysalloc: SystemAllocator, clock=None) -> None:
        self._sysalloc = sysalloc
        self._clock = clock
        self._listeners: List[ShimListener] = []
        # Thread identities (or the sentinel None) currently inside an
        # allocator; see the class docstring.
        self._in_allocator: set = set()
        #: Events suppressed because the in-allocator flag was set.
        self.suppressed_events = 0

    # -- listener management ---------------------------------------------------

    def add_listener(self, listener: ShimListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: ShimListener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    @property
    def has_listeners(self) -> bool:
        return bool(self._listeners)

    # -- the in-allocator flag ---------------------------------------------------

    @contextmanager
    def allocator_guard(self, thread=None) -> Iterator[None]:
        """Mark ``thread`` as being inside a memory allocator.

        Re-entrant: nested guards on the same thread are counted naively —
        the outermost guard wins, matching a boolean thread-local flag.
        """
        key = self._key(thread)
        was_set = key in self._in_allocator
        self._in_allocator.add(key)
        try:
            yield
        finally:
            if not was_set:
                self._in_allocator.discard(key)

    def in_allocator(self, thread=None) -> bool:
        return self._key(thread) in self._in_allocator

    @staticmethod
    def _key(thread) -> object:
        return getattr(thread, "ident", None) if thread is not None else None

    # -- system allocator surface --------------------------------------------------

    def malloc(
        self,
        nbytes: int,
        *,
        thread=None,
        touch: bool = False,
        tag: str = "",
        domain: str = DOMAIN_NATIVE,
    ) -> Allocation:
        """Allocate from the system allocator, publishing a malloc event."""
        alloc = self._sysalloc.malloc(nbytes, touch=touch, tag=tag)
        if self._listeners:  # skip event construction on the silent path
            self._publish(
                "on_malloc",
                AllocEvent(
                    kind="malloc",
                    nbytes=nbytes,
                    address=alloc.address,
                    domain=domain,
                    thread=thread,
                    wall=self._wall(),
                    cpu=self._cpu(),
                ),
                thread,
            )
        return alloc

    def free(self, alloc: Allocation, *, thread=None, domain: str = DOMAIN_NATIVE) -> None:
        """Free to the system allocator, publishing a free event."""
        self._sysalloc.free(alloc)
        if self._listeners:  # skip event construction on the silent path
            self._publish(
                "on_free",
                AllocEvent(
                    kind="free",
                    nbytes=alloc.nbytes,
                    address=alloc.address,
                    domain=domain,
                    thread=thread,
                    wall=self._wall(),
                    cpu=self._cpu(),
                ),
                thread,
            )

    def memcpy(self, nbytes: int, *, thread=None, direction: str = "host") -> None:
        """Record a memcpy of ``nbytes`` (the copy itself is abstract)."""
        self._publish(
            "on_memcpy",
            MemcpyEvent(nbytes=nbytes, thread=thread, wall=self._wall(), direction=direction),
            thread,
        )

    # -- python-domain pass-through ---------------------------------------------------

    def publish_python_event(self, event: AllocEvent) -> None:
        """Publish an event observed at the PyMem hook level.

        The caller (a profiler's PyMem wrapper) is responsible for holding
        :meth:`allocator_guard` while delegating to the real allocator so
        the resulting system traffic is suppressed here.
        """
        self._publish("on_malloc" if event.kind == "malloc" else "on_free", event, event.thread)

    # -- internals ---------------------------------------------------

    def _publish(self, method: str, event, thread) -> None:
        if not self._listeners:
            return
        if self.in_allocator(thread):
            self.suppressed_events += 1
            return
        for listener in self._listeners:
            getattr(listener, method)(event)

    def _wall(self) -> float:
        return self._clock.wall if self._clock is not None else 0.0

    def _cpu(self) -> float:
        return self._clock.cpu if self._clock is not None else 0.0

    # convenience passthroughs used by upper layers ------------------------------

    def touch(self, alloc: Allocation, nbytes: Optional[int] = None) -> None:
        self._sysalloc.touch(alloc, nbytes)

    @property
    def sysalloc(self) -> SystemAllocator:
        return self._sysalloc
