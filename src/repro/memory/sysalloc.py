"""The simulated system allocator (glibc malloc / mmap analog).

Two distinct quantities matter for reproducing the paper's Figure 6:

* **mapped bytes** — what was requested from the allocator. This is what an
  interposition-based profiler (Scalene, Fil, Memray) observes.
* **resident bytes (RSS)** — pages actually *touched* by the program. A
  fresh large allocation is backed lazily; until written, it contributes
  nothing to RSS. RSS-based profilers (memory_profiler, Austin) report this
  and therefore under-report untouched allocations and over-report
  unrelated residency (interpreter baseline, allocator metadata).

Addresses are unique integers from a bump pointer; the simulation never
reuses an address, which gives allocations stable identities (the property
Scalene's leak detector relies on for its cheap pointer comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import HeapError
from repro.units import PAGE_SIZE, pages_for


@dataclass
class Allocation:
    """A live region returned by :meth:`SystemAllocator.malloc`."""

    address: int
    nbytes: int
    #: Bytes of this region that have been written (and are thus resident).
    touched_bytes: int = 0
    #: Free-form tag set by upper layers ("arena", "native", ...).
    tag: str = ""
    #: Extra metadata upper layers may attach (attribution line, etc.).
    meta: dict = field(default_factory=dict)

    @property
    def resident_pages(self) -> int:
        return pages_for(self.touched_bytes)

    @property
    def mapped_pages(self) -> int:
        return pages_for(self.nbytes)


class SystemAllocator:
    """Byte-accurate allocator with lazy page residency.

    ``base_rss_bytes`` models the residency of the interpreter itself
    (binary, shared libraries, startup heap); real RSS-based profilers see
    this as a noise floor.
    """

    #: Alignment of returned addresses (purely cosmetic realism).
    ALIGNMENT = 16

    def __init__(self, base_rss_bytes: int = 24 * 1024 * 1024) -> None:
        self.base_rss_bytes = int(base_rss_bytes)
        self._next_address = 0x7F00_0000_0000
        self._live: Dict[int, Allocation] = {}
        self._resident_bytes = 0
        # Lifetime statistics.
        self.total_allocs = 0
        self.total_frees = 0
        self.total_bytes_allocated = 0
        self.total_bytes_freed = 0
        self.peak_mapped_bytes = 0
        self._mapped_bytes = 0

    # -- core API -------------------------------------------------------------

    def malloc(self, nbytes: int, *, touch: bool = False, tag: str = "") -> Allocation:
        """Map a new region of ``nbytes``; optionally touch it immediately.

        ``touch=True`` models ``calloc``/immediately-initialized memory.
        """
        if nbytes < 0:
            raise HeapError(f"malloc of negative size {nbytes}")
        address = self._next_address
        # Keep addresses aligned and strictly increasing (no reuse).
        span = max(nbytes, 1)
        self._next_address += (span + self.ALIGNMENT - 1) // self.ALIGNMENT * self.ALIGNMENT + self.ALIGNMENT
        alloc = Allocation(address=address, nbytes=nbytes, tag=tag)
        self._live[address] = alloc
        self.total_allocs += 1
        self.total_bytes_allocated += nbytes
        self._mapped_bytes += nbytes
        if self._mapped_bytes > self.peak_mapped_bytes:
            self.peak_mapped_bytes = self._mapped_bytes
        if touch and nbytes:
            self.touch(alloc)
        return alloc

    def free(self, alloc: Allocation) -> None:
        """Unmap a region; its resident pages are returned to the OS."""
        live = self._live.pop(alloc.address, None)
        if live is None:
            raise HeapError(f"free of unknown or already-freed address {alloc.address:#x}")
        if live is not alloc:
            raise HeapError(f"free of stale allocation object at {alloc.address:#x}")
        self.total_frees += 1
        self.total_bytes_freed += alloc.nbytes
        self._mapped_bytes -= alloc.nbytes
        self._resident_bytes -= alloc.resident_pages * PAGE_SIZE
        alloc.touched_bytes = 0

    def touch(self, alloc: Allocation, nbytes: int | None = None) -> None:
        """Mark the first ``nbytes`` of ``alloc`` as written (resident).

        Touching is monotone: re-touching already-resident bytes is a no-op.
        ``nbytes=None`` touches the entire region.
        """
        if alloc.address not in self._live:
            raise HeapError(f"touch of freed address {alloc.address:#x}")
        if nbytes is None:
            nbytes = alloc.nbytes
        nbytes = min(max(nbytes, 0), alloc.nbytes)
        if nbytes <= alloc.touched_bytes:
            return
        before = alloc.resident_pages
        alloc.touched_bytes = nbytes
        after = alloc.resident_pages
        self._resident_bytes += (after - before) * PAGE_SIZE

    # -- introspection ----------------------------------------------------------

    def is_live(self, address: int) -> bool:
        return address in self._live

    def lookup(self, address: int) -> Allocation:
        try:
            return self._live[address]
        except KeyError:
            raise HeapError(f"lookup of unknown address {address:#x}") from None

    @property
    def live_count(self) -> int:
        return len(self._live)

    def mapped_bytes(self) -> int:
        """Total bytes currently mapped (requested and not yet freed)."""
        return self._mapped_bytes

    def rss_bytes(self) -> int:
        """Resident set size: interpreter baseline plus touched pages."""
        return self.base_rss_bytes + self._resident_bytes
