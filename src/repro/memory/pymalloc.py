"""A pymalloc-style Python object allocator.

Reproduces the two behaviours of CPython's object allocator that matter to
the paper:

* **Small objects** (≤ 512 bytes) are carved from *pools* inside 256 KiB
  *arenas* obtained from the system allocator. Allocating and freeing small
  objects therefore generates almost no system-allocator traffic — only
  occasional arena mappings — which is why Scalene must interpose at the
  PyMem level (``PyMem_SetAllocator``) in addition to the system level.
* **Large objects** fall through directly to the system allocator.

The arena requests are issued through the shim; when the profiler's PyMem
wrapper holds the shim's in-allocator guard, those requests are invisible
to listeners (no double counting, §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import HeapError
from repro.memory.shim import AllocatorShim
from repro.memory.sysalloc import Allocation

SMALL_THRESHOLD = 512
ARENA_SIZE = 256 * 1024
#: Fraction of an arena usable for object data (the rest models pool
#: headers and fragmentation).
ARENA_USABLE_FRACTION = 0.9


#: Usable bytes contributed by one arena (float, as in the capacity math).
_USABLE_PER_ARENA = ARENA_SIZE * ARENA_USABLE_FRACTION


@dataclass(slots=True)
class PyAllocation:
    """A live Python-object allocation handle."""

    address: int
    nbytes: int
    #: "small" (pool-backed) or "large" (system-backed).
    kind: str
    #: For large allocations, the underlying system allocation.
    backing: Optional[Allocation] = None


class PyMalloc:
    """Pool/arena object allocator layered over the (shimmed) system heap."""

    def __init__(self, shim: AllocatorShim) -> None:
        self._shim = shim
        self._arenas: List[Allocation] = []
        self._small_in_use = 0
        # Cached _usable_capacity(); recomputed whenever _arenas changes so
        # the hot alloc/free paths avoid a method call and float multiply.
        self._usable = 0
        self._live: Dict[int, PyAllocation] = {}
        self._next_address = 0x5500_0000_0000
        # Statistics.
        self.total_allocs = 0
        self.total_frees = 0
        self.total_bytes_allocated = 0
        self.total_bytes_freed = 0

    # -- capacity management -----------------------------------------------------

    def _usable_capacity(self) -> int:
        return self._usable

    def _ensure_capacity(self, nbytes: int, thread) -> None:
        while self._small_in_use + nbytes > self._usable:
            # Arena mappings are internal allocator work: guard them so shim
            # listeners do not misattribute them as native program activity.
            with self._shim.allocator_guard(thread):
                arena = self._shim.malloc(ARENA_SIZE, thread=thread, touch=True, tag="arena")
            self._arenas.append(arena)
            self._usable = int(len(self._arenas) * _USABLE_PER_ARENA)

    def _maybe_release_arenas(self, thread) -> None:
        # Release trailing arenas once usage drops by more than two arenas'
        # worth of slack (mirrors pymalloc's lazy arena reclamation).
        while (
            len(self._arenas) > 1
            and self._small_in_use < self._usable - 2 * _USABLE_PER_ARENA
        ):
            arena = self._arenas.pop()
            self._usable = int(len(self._arenas) * _USABLE_PER_ARENA)
            with self._shim.allocator_guard(thread):
                self._shim.free(arena, thread=thread)

    # -- allocation API -----------------------------------------------------

    def alloc(self, nbytes: int, thread=None) -> PyAllocation:
        """Allocate a Python object of ``nbytes``."""
        if nbytes < 0:
            raise HeapError(f"pymalloc alloc of negative size {nbytes}")
        self.total_allocs += 1
        self.total_bytes_allocated += nbytes
        if nbytes <= SMALL_THRESHOLD:
            if self._small_in_use + nbytes > self._usable:
                self._ensure_capacity(nbytes, thread)
            self._small_in_use += nbytes
            address = self._next_address
            self._next_address = address + (nbytes if nbytes > 16 else 16)
            py_alloc = PyAllocation(address, nbytes, "small")
        else:
            with self._shim.allocator_guard(thread):
                backing = self._shim.malloc(nbytes, thread=thread, touch=True, tag="pyobj-large")
            py_alloc = PyAllocation(backing.address, nbytes, "large", backing)
        self._live[py_alloc.address] = py_alloc
        return py_alloc

    def free(self, py_alloc: PyAllocation, thread=None) -> None:
        """Release a Python object allocation."""
        live = self._live.pop(py_alloc.address, None)
        if live is None:
            raise HeapError(f"pymalloc double free at {py_alloc.address:#x}")
        nbytes = py_alloc.nbytes
        self.total_frees += 1
        self.total_bytes_freed += nbytes
        if py_alloc.kind == "small":
            in_use = self._small_in_use - nbytes
            self._small_in_use = in_use
            if len(self._arenas) > 1 and in_use < self._usable - 2 * _USABLE_PER_ARENA:
                self._maybe_release_arenas(thread)
        else:
            assert py_alloc.backing is not None
            with self._shim.allocator_guard(thread):
                self._shim.free(py_alloc.backing, thread=thread)

    # -- introspection -----------------------------------------------------

    @property
    def live_bytes(self) -> int:
        """Bytes currently held by live Python objects."""
        return self.total_bytes_allocated - self.total_bytes_freed

    @property
    def live_count(self) -> int:
        return len(self._live)

    @property
    def arena_count(self) -> int:
        return len(self._arenas)
