"""The ``PyMem_SetAllocator`` analog.

Every Python-object allocation the interpreter performs goes through a
:class:`PyMemHooks` instance. A profiler may *wrap* the current allocator
(exactly what Scalene does with ``PyMem_SetAllocator``): the wrapper
observes each request, then delegates to the previous allocator.
"""

from __future__ import annotations

from typing import Protocol

from repro.memory.pymalloc import PyAllocation, PyMalloc


class PyMemAllocator(Protocol):
    """The allocator interface installable via :class:`PyMemHooks`."""

    def alloc(self, nbytes: int, thread=None) -> PyAllocation:  # pragma: no cover
        ...

    def free(self, handle: PyAllocation, thread=None) -> None:  # pragma: no cover
        ...


class PyMemHooks:
    """Replaceable dispatch point for the interpreter's object allocations."""

    def __init__(self, pymalloc: PyMalloc) -> None:
        self._default = pymalloc
        self._current: PyMemAllocator = pymalloc

    # -- PyMem_GetAllocator / PyMem_SetAllocator -------------------------------

    def get_allocator(self) -> PyMemAllocator:
        """Return the currently installed allocator (for wrapping)."""
        return self._current

    def set_allocator(self, allocator: PyMemAllocator) -> None:
        """Install ``allocator`` as the Python object allocator."""
        self._current = allocator

    def reset(self) -> None:
        """Restore the default (pymalloc) allocator."""
        self._current = self._default

    # -- interpreter-facing API -------------------------------

    def alloc(self, nbytes: int, thread=None) -> PyAllocation:
        return self._current.alloc(nbytes, thread=thread)

    def free(self, handle: PyAllocation, thread=None) -> None:
        self._current.free(handle, thread=thread)

    @property
    def pymalloc(self) -> PyMalloc:
        """The underlying default allocator (for statistics)."""
        return self._default
