"""The sampling file connecting allocator hooks to the profiler (§3.3).

Scalene's shim appends one line per sample to a file that a background
Python thread tails and folds into the profile statistics. The simulation
keeps records in memory but accounts their encoded size in bytes so the
log-growth comparison of §6.5 (Scalene ≈ 32 KB vs. Austin 27 MB vs. Memray
~100 MB on ``mdp``) can be reproduced faithfully.
"""

from __future__ import annotations

from typing import List


class SampleFile:
    """Append-only record channel with byte-size accounting."""

    def __init__(self, name: str = "samples") -> None:
        self.name = name
        self._records: List[str] = []
        self._read_cursor = 0
        self._size_bytes = 0
        self._uncounted_records = 0

    def append(self, record: str) -> None:
        """Append one record (a single line, newline added implicitly)."""
        self._records.append(record)
        self._size_bytes += len(record.encode("utf-8")) + 1  # +1 for '\n'

    def append_bytes(self, nbytes: int) -> None:
        """Account for ``nbytes`` of output without retaining content.

        High-volume loggers (Memray, Austin) write megabytes per second;
        only their *size* matters to the experiments, so retaining every
        record in host memory would be waste.
        """
        self._uncounted_records += 1
        self._size_bytes += nbytes

    def drain(self) -> List[str]:
        """Return records appended since the last drain (tail -f analog)."""
        new = self._records[self._read_cursor :]
        self._read_cursor = len(self._records)
        return new

    @property
    def size_bytes(self) -> int:
        """Total encoded size of everything ever appended."""
        return self._size_bytes

    @property
    def record_count(self) -> int:
        return len(self._records) + self._uncounted_records

    def all_records(self) -> List[str]:
        """Every record, regardless of the drain cursor (for post-mortem)."""
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()
        self._read_cursor = 0
        self._size_bytes = 0
        self._uncounted_records = 0
