"""Simulated memory subsystem.

Layers, bottom to top (mirroring the real stack Scalene interposes on):

* :mod:`repro.memory.sysalloc` — the "system allocator" (glibc malloc /
  mmap analog). Tracks mapped regions and resident (touched) pages, which
  is what makes RSS an *inaccurate proxy* for allocated memory (paper §6.3).
* :mod:`repro.memory.shim` — the LD_PRELOAD-style interposition layer. All
  system-allocator traffic flows through it; profilers register listeners.
  Implements the per-thread *in-allocator* flag of §3.1 that prevents
  double-counting when the Python allocator itself calls malloc.
* :mod:`repro.memory.pymalloc` — a pymalloc-style object allocator (pools
  carved from arenas obtained via the shim; large requests fall through to
  the system allocator).
* :mod:`repro.memory.hooks` — the ``PyMem_SetAllocator`` analog: the domain
  API the interpreter uses for every Python object, replaceable at runtime.
* :mod:`repro.memory.samplefile` — the append-only sampling file connecting
  the shim to the profiler, with byte-size accounting (used by the
  log-growth experiment of §6.5).
"""

from repro.memory.sysalloc import Allocation, SystemAllocator
from repro.memory.shim import AllocatorShim, AllocEvent, MemcpyEvent
from repro.memory.pymalloc import PyMalloc
from repro.memory.hooks import PyMemHooks
from repro.memory.samplefile import SampleFile

__all__ = [
    "Allocation",
    "SystemAllocator",
    "AllocatorShim",
    "AllocEvent",
    "MemcpyEvent",
    "PyMalloc",
    "PyMemHooks",
    "SampleFile",
]
