"""Scalene's sampling memory-leak detector (paper §3.4).

Piggybacks on threshold sampling: whenever a growth sample establishes a
new high-water mark, the triggering allocation becomes the *tracked
object*. Every ``free`` performs one pointer comparison against it. At the
next high-water crossing the tracked object's site is scored — ``mallocs``
incremented when tracking started, ``frees`` incremented only if the
object was reclaimed — and a new object is tracked.

The leak likelihood uses Laplace's Rule of Succession over the site's
history::

    P(leak) = 1 - (frees + 1) / (mallocs + 2)

Reports are filtered to likelihood ≥ 95 % with overall footprint growth of
at least 1 %, and prioritized by *leak rate* (MB/s allocated at the site).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import ScaleneConfig
from repro.units import MiB

Location = Tuple[str, int, str]


def leak_likelihood(mallocs: int, frees: int) -> float:
    """Laplace's Rule of Succession: P(not freed) with add-one smoothing.

    Always a valid probability in [0, 1). Equivalently
    ``(mallocs - frees + 1) / (mallocs + 2)``, so with ``frees == 0`` it
    matches the paper's never-freed progression (>= 95 % after 18
    observations) exactly.
    """
    if mallocs < 0 or frees < 0 or frees > mallocs:
        raise ValueError(f"invalid leak score ({mallocs} mallocs, {frees} frees)")
    return 1.0 - (frees + 1) / (mallocs + 2)


@dataclass
class _TrackedAllocation:
    address: int
    nbytes: int
    location: Optional[Location]
    freed: bool = False


@dataclass
class _SiteScore:
    mallocs: int = 0
    frees: int = 0
    bytes_observed: int = 0
    first_seen_wall: float = 0.0
    last_seen_wall: float = 0.0


@dataclass
class LeakReport:
    """One reported leak site, ready for display."""

    filename: str
    lineno: int
    function: str
    likelihood: float
    leak_rate_mb_s: float
    mallocs: int
    frees: int

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.filename}:{self.lineno} ({self.function}) — "
            f"likelihood {self.likelihood:.0%}, rate {self.leak_rate_mb_s:.2f} MB/s"
        )


class LeakDetector:
    """High-water-mark piggyback leak scoring."""

    def __init__(self, config: ScaleneConfig) -> None:
        self._config = config
        self._high_water = 0
        self._tracked: Optional[_TrackedAllocation] = None
        self._sites: Dict[Location, _SiteScore] = {}
        #: Pointer comparisons performed (to demonstrate cheapness).
        self.free_checks = 0

    # -- hot-path hooks -------------------------------------------------------

    def on_free(self, address: int) -> None:
        """Called for every free: one almost-always-false comparison."""
        self.free_checks += 1
        tracked = self._tracked
        if tracked is not None and tracked.address == address:
            tracked.freed = True

    def on_growth_sample(
        self,
        *,
        footprint: int,
        address: int,
        nbytes: int,
        location: Optional[Location],
        wall: float,
    ) -> None:
        """Called by the threshold sampler on growth samples."""
        if footprint <= self._high_water:
            return
        self._high_water = footprint
        self._close_current()
        if location is None:
            return
        site = self._sites.get(location)
        if site is None:
            site = _SiteScore(first_seen_wall=wall)
            self._sites[location] = site
        site.mallocs += 1
        site.bytes_observed += nbytes
        site.last_seen_wall = wall
        self._tracked = _TrackedAllocation(address=address, nbytes=nbytes, location=location)

    def _close_current(self) -> None:
        tracked = self._tracked
        if tracked is None or tracked.location is None:
            self._tracked = None
            return
        if tracked.freed:
            self._sites[tracked.location].frees += 1
        self._tracked = None

    # -- reporting -------------------------------------------------------

    def finalize(self) -> None:
        """Close out the in-flight tracked object before reporting."""
        self._close_current()

    def site_score(self, location: Location) -> Tuple[int, int]:
        site = self._sites.get(location)
        return (site.mallocs, site.frees) if site else (0, 0)

    def report(
        self,
        memory_timeline: List[Tuple[float, float]],
        elapsed: float,
    ) -> List[LeakReport]:
        """Filtered, prioritized leak reports (§3.4)."""
        if not self._overall_growth_significant(memory_timeline):
            return []
        reports: List[LeakReport] = []
        for location, site in self._sites.items():
            likelihood = leak_likelihood(site.mallocs, site.frees)
            if likelihood < self._config.leak_likelihood_threshold:
                continue
            span = max(elapsed, 1e-9)
            rate = site.bytes_observed / MiB / span
            filename, lineno, function = location
            reports.append(
                LeakReport(
                    filename=filename,
                    lineno=lineno,
                    function=function,
                    likelihood=likelihood,
                    leak_rate_mb_s=rate,
                    mallocs=site.mallocs,
                    frees=site.frees,
                )
            )
        reports.sort(key=lambda r: r.leak_rate_mb_s, reverse=True)
        return reports

    def _overall_growth_significant(self, timeline: List[Tuple[float, float]]) -> bool:
        """The ≥1 % overall-growth filter."""
        if len(timeline) < 2:
            return False
        first = timeline[0][1]
        last = timeline[-1][1]
        peak = max(mb for _t, mb in timeline)
        if peak <= 0:
            return False
        return (last - first) / peak >= self._config.leak_growth_slope_threshold
