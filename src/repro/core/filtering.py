"""Profile-line filtering (paper §5).

Scalene reports only lines responsible for at least 1 % of execution time
(CPU or GPU) or at least 1 % of total memory consumption — *plus the
preceding and following line* for context — and guarantees the profile
never exceeds 300 lines.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.stats import LineKey, LineStats


def significant_lines(
    lines: Dict[LineKey, LineStats],
    total_cpu_time: float,
    total_alloc_mb: float,
    *,
    min_percent: float = 1.0,
    max_lines: int = 300,
) -> List[LineKey]:
    """Select the line keys to report, ordered by file and line number."""
    threshold = min_percent / 100.0
    significant: List[Tuple[float, LineKey]] = []
    for key, stats in lines.items():
        cpu_share = stats.total_cpu_time / total_cpu_time if total_cpu_time > 0 else 0.0
        gpu_share = stats.gpu_utilization
        mem_share = stats.malloc_mb / total_alloc_mb if total_alloc_mb > 0 else 0.0
        score = max(cpu_share, gpu_share, mem_share)
        if score >= threshold:
            significant.append((score, key))

    # Keep the most significant lines within the budget; each selected line
    # brings its two neighbours, so budget at a third of the cap.
    significant.sort(reverse=True)
    core_budget = max(max_lines // 3, 1)
    selected = {key for _score, key in significant[:core_budget]}

    with_neighbours = set()
    for filename, lineno in selected:
        with_neighbours.add((filename, lineno))
        with_neighbours.add((filename, lineno - 1))
        with_neighbours.add((filename, lineno + 1))
    # Drop non-existent line numbers (e.g. line 0).
    result = sorted(k for k in with_neighbours if k[1] >= 1)
    if len(result) > max_lines:  # the hard guarantee
        result = result[:max_lines]
    return result
