"""Copy-volume profiling (paper §3.5).

The shim's ``memcpy`` interposition feeds a classical *rate-based* sampler
(unlike the allocation path, which is threshold-based): every
``copy_sampling_rate`` bytes of copying produces one sample attributing
that many bytes to the current line. The metric surfaces hidden copying
across the Python/native divide and between CPU and GPU.
"""

from __future__ import annotations

from repro.core.attribution import thread_location
from repro.core.config import ScaleneConfig
from repro.core.stats import ScaleneStats
from repro.errors import ProfilerError
from repro.memory.samplefile import SampleFile
from repro.memory.shim import ShimListener


class CopyVolumeProfiler(ShimListener):
    """Rate-based memcpy sampler."""

    def __init__(self, process, config: ScaleneConfig, stats: ScaleneStats) -> None:
        self._process = process
        self._config = config
        self._stats = stats
        self.samplefile = SampleFile("scalene-memcpy")
        self._counter = 0
        self.event_count = 0
        self.sample_count = 0
        self._installed = False
        self.paused = False

    # -- lifecycle -------------------------------------------------------

    def install(self) -> None:
        if self._installed:
            raise ProfilerError("copy-volume profiler already installed")
        self._process.mem.shim.add_listener(self)
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        self._process.mem.shim.remove_listener(self)
        self._installed = False

    # -- shim listener -------------------------------------------------------

    def on_memcpy(self, event) -> None:
        process = self._process
        config = self._config
        op_cost = process.vm.config.op_cost
        process.charge_overhead(event.thread, config.memcpy_hook_cost_ops * op_cost)
        self.event_count += 1
        if self.paused:
            return
        self._counter += event.nbytes
        rate = config.copy_sampling_rate
        while self._counter >= rate:
            self._counter -= rate
            self._take_sample(event, rate)

    def _take_sample(self, event, nbytes: int) -> None:
        process = self._process
        op_cost = process.vm.config.op_cost
        process.charge_overhead(
            event.thread, self._config.sample_write_cost_ops * op_cost
        )
        self.sample_count += 1
        location = thread_location(event.thread, process.profiled_filenames)
        where = f"{location[0]}:{location[1]}" if location else "?"
        self.samplefile.append(
            f"memcpy,{process.clock.wall:.6f},{nbytes},{event.direction},{where}"
        )
        self._stats.record_copy(location, nbytes)
