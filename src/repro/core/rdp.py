"""Ramer–Douglas–Peucker timeline reduction (paper §5).

Scalene bounds the number of points it ships in its JSON payload by
running RDP over each memory-footprint log with an ε chosen to reduce the
series to ~100 points, then — because RDP alone cannot *guarantee* a bound
— randomly downsampling to exactly the target if needed.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

Point = Tuple[float, float]


def _perpendicular_distance(point: Point, start: Point, end: Point) -> float:
    (px, py), (sx, sy), (ex, ey) = point, start, end
    dx, dy = ex - sx, ey - sy
    if dx == 0.0 and dy == 0.0:
        return ((px - sx) ** 2 + (py - sy) ** 2) ** 0.5
    # Distance from point to the infinite line through start-end.
    return abs(dy * px - dx * py + ex * sy - ey * sx) / (dx * dx + dy * dy) ** 0.5


def rdp(points: Sequence[Point], epsilon: float) -> List[Point]:
    """Classic recursive RDP. Endpoints are always preserved."""
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    n = len(points)
    if n <= 2:
        return list(points)
    # Iterative stack formulation to avoid deep host recursion.
    keep = [False] * n
    keep[0] = keep[-1] = True
    stack = [(0, n - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2:
            continue
        max_dist = -1.0
        max_index = start + 1
        p_start, p_end = points[start], points[end]
        for i in range(start + 1, end):
            dist = _perpendicular_distance(points[i], p_start, p_end)
            if dist > max_dist:
                max_dist = dist
                max_index = i
        if max_dist > epsilon:
            keep[max_index] = True
            stack.append((start, max_index))
            stack.append((max_index, end))
    return [p for p, k in zip(points, keep) if k]


def _epsilon_for_target(points: Sequence[Point], target: int) -> float:
    """Binary-search an ε that brings RDP output near ``target`` points."""
    if not points:
        return 0.0
    ys = [p[1] for p in points]
    span = max(ys) - min(ys)
    if span == 0.0:
        return 0.0
    low, high = 0.0, span
    best = high
    for _ in range(24):
        mid = (low + high) / 2
        count = len(rdp(points, mid))
        if count > target:
            low = mid
        else:
            best = mid
            high = mid
    return best


def reduce_timeline(points: Sequence[Point], target: int = 100, seed: int = 0) -> List[Point]:
    """Reduce ``points`` to at most ``target`` points, Scalene-style.

    First RDP with an ε tuned to approach ``target``; if the result still
    exceeds the bound, randomly downsample to *exactly* ``target`` points
    (endpoints preserved, order maintained, deterministic via ``seed``).
    """
    if target < 2:
        raise ValueError(f"target must be at least 2, got {target}")
    points = list(points)
    if len(points) <= target:
        return points
    epsilon = _epsilon_for_target(points, target)
    reduced = rdp(points, epsilon)
    if len(reduced) <= target:
        return reduced
    rng = random.Random(seed)
    interior = list(range(1, len(reduced) - 1))
    chosen = sorted(rng.sample(interior, target - 2))
    return [reduced[0]] + [reduced[i] for i in chosen] + [reduced[-1]]
