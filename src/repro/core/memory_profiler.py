"""Scalene's memory profiler (paper §3.1–§3.3).

Installs two interposition points:

* a listener on the system-allocator shim (the LD_PRELOAD layer), which
  observes *native* allocations and frees; and
* a wrapper around the Python object allocator via the PyMem hooks
  (``PyMem_SetAllocator``), which observes *Python* allocations and frees
  — delegating to the previous allocator while holding the shim's
  in-allocator guard so the backing system traffic is not double counted.

Both streams feed one **threshold-based sampler**: a running footprint
counter triggers a sample whenever it moves more than ``T`` bytes (the
prime just above 10 MB) away from the footprint at the previous sample —
capturing every significant change while ignoring the torrent of
footprint-neutral churn that rate-based samplers pay for (§3.2).

Each sample appends one line to a sampling file (byte-accounted, for the
log-growth comparison of §6.5) and updates the per-line statistics; the
leak detector piggybacks on growth samples (§3.4).
"""

from __future__ import annotations

from typing import Optional

from repro.core.attribution import thread_location
from repro.core.config import ScaleneConfig
from repro.core.leak_detector import LeakDetector
from repro.core.stats import ScaleneStats
from repro.errors import ProfilerError
from repro.memory.samplefile import SampleFile
from repro.memory.shim import DOMAIN_PYTHON, ShimListener


class _ScalenePyMemAllocator:
    """The PyMem_SetAllocator wrapper: observe, then delegate under guard."""

    def __init__(self, profiler: "MemoryProfiler", inner, shim) -> None:
        self._profiler = profiler
        self._inner = inner
        self._shim = shim

    def alloc(self, nbytes: int, thread=None):
        with self._shim.allocator_guard(thread):
            handle = self._inner.alloc(nbytes, thread=thread)
        self._profiler.observe(+nbytes, DOMAIN_PYTHON, handle.address, thread)
        return handle

    def free(self, handle, thread=None) -> None:
        self._profiler.observe(-handle.nbytes, DOMAIN_PYTHON, handle.address, thread)
        with self._shim.allocator_guard(thread):
            self._inner.free(handle, thread=thread)

    @property
    def inner(self):
        return self._inner


class MemoryProfiler(ShimListener):
    """Threshold-based allocation sampler over both allocation domains."""

    def __init__(
        self,
        process,
        config: ScaleneConfig,
        stats: ScaleneStats,
        leak_detector: Optional[LeakDetector] = None,
    ) -> None:
        self._process = process
        self._config = config
        self._stats = stats
        self._leaks = leak_detector
        self.samplefile = SampleFile("scalene-mem")
        # Footprint tracking (profiler's view, built purely from events).
        self._footprint = 0
        self._footprint_at_last_sample = 0
        # Window counters since the last sample (python fraction, §3.3).
        self._window_alloc_bytes = 0
        self._window_python_alloc_bytes = 0
        #: Total allocation events observed (diagnostics / Table 2).
        self.event_count = 0
        self.sample_count = 0
        self._installed = False
        self._saved_allocator = None
        #: While paused, footprint tracking continues (the interposition
        #: cannot be detached without losing consistency) but no samples,
        #: statistics, or leak tracking are recorded.
        self.paused = False

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> None:
        if self._installed:
            raise ProfilerError("memory profiler already installed")
        mem = self._process.mem
        mem.shim.add_listener(self)
        self._saved_allocator = mem.hooks.get_allocator()
        mem.hooks.set_allocator(
            _ScalenePyMemAllocator(self, self._saved_allocator, mem.shim)
        )
        self._footprint = mem.logical_footprint()
        self._footprint_at_last_sample = self._footprint
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        mem = self._process.mem
        mem.shim.remove_listener(self)
        mem.hooks.set_allocator(self._saved_allocator)
        self._installed = False
        # Final timeline point so the last footprint is visible.
        self._stats.memory_timeline.append(
            (self._process.clock.wall, self._footprint / (1024 * 1024))
        )

    # -- shim listener (native domain) ---------------------------------------

    def on_malloc(self, event) -> None:
        self.observe(+event.nbytes, event.domain, event.address, event.thread)

    def on_free(self, event) -> None:
        self.observe(-event.nbytes, event.domain, event.address, event.thread)

    # -- the sampler ----------------------------------------------------------

    def observe(self, signed_bytes: int, domain: str, address: int, thread) -> None:
        """One allocation (+) or free (-) event, either domain."""
        process = self._process
        config = self._config
        op_cost = process.vm.config.op_cost
        self.event_count += 1
        if signed_bytes >= 0:
            process.charge_overhead(thread, config.alloc_hook_cost_ops * op_cost)
            self._window_alloc_bytes += signed_bytes
            if domain == DOMAIN_PYTHON:
                self._window_python_alloc_bytes += signed_bytes
        else:
            process.charge_overhead(
                thread,
                (config.alloc_hook_cost_ops + config.free_check_cost_ops) * op_cost,
            )
            if self._leaks is not None:
                # The cheap, highly predictable pointer comparison (§3.4).
                self._leaks.on_free(address)
        self._footprint += signed_bytes
        if self.paused:
            return

        delta = self._footprint - self._footprint_at_last_sample
        if abs(delta) >= config.memory_threshold:
            self._take_sample(delta, address, abs(signed_bytes), thread)

    def _take_sample(self, delta: int, address: int, trigger_nbytes: int, thread) -> None:
        process = self._process
        config = self._config
        op_cost = process.vm.config.op_cost
        process.charge_overhead(thread, config.sample_write_cost_ops * op_cost)
        self.sample_count += 1

        if self._window_alloc_bytes > 0:
            python_fraction = self._window_python_alloc_bytes / self._window_alloc_bytes
        else:
            python_fraction = 0.0
        location = thread_location(thread, process.profiled_filenames)
        wall = process.clock.wall

        # The sampling-file record: what the background thread would read.
        kind = "malloc" if delta > 0 else "free"
        where = f"{location[0]}:{location[1]}" if location else "?"
        self.samplefile.append(
            f"{kind},{wall:.6f},{delta},{python_fraction:.3f},{address:#x},{where}"
        )

        self._stats.record_memory_sample(
            location, delta, python_fraction, self._footprint, wall
        )
        if self._leaks is not None and delta > 0:
            self._leaks.on_growth_sample(
                footprint=self._footprint,
                address=address,
                nbytes=trigger_nbytes,
                location=location,
                wall=wall,
            )

        self._footprint_at_last_sample = self._footprint
        self._window_alloc_bytes = 0
        self._window_python_alloc_bytes = 0

    # -- pause/resume (region profiling) ---------------------------------------

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        """Resume sampling; footprint drift during the pause is skipped
        (it belongs to the unprofiled region)."""
        self._footprint_at_last_sample = self._footprint
        self._window_alloc_bytes = 0
        self._window_python_alloc_bytes = 0
        self.paused = False

    # -- introspection ----------------------------------------------------------

    @property
    def footprint(self) -> int:
        return self._footprint
