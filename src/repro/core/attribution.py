"""Stack-walking attribution.

Scalene attributes every sample "by obtaining the current thread's call
stack from the interpreter and skipping over frames until one within
profiled source code is found" (§3.3). In the real system this runs as a
C++ extension module for speed; here it is a plain function over simulated
frames.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

Location = Tuple[str, int, str]  # (filename, lineno, function)


def profiled_location(frame, profiled_filenames: Set[str]) -> Optional[Location]:
    """Walk ``frame`` outward to the innermost frame in profiled code."""
    while frame is not None:
        if frame.code.filename in profiled_filenames:
            return (frame.code.filename, frame.lineno, frame.code.name)
        frame = frame.back
    return None


def thread_location(thread, profiled_filenames: Set[str]) -> Optional[Location]:
    """Attribution for a thread (None when it has no profiled frame)."""
    if thread is None or thread.frame is None:
        return None
    return profiled_location(thread.frame, profiled_filenames)
