"""SCALENE — the paper's contribution, reimplemented on the simulated runtime.

The public entry point is :class:`~repro.core.scalene.Scalene`; the
submodules implement the paper's individual algorithms:

* :mod:`~repro.core.cpu_profiler` — signal-delay CPU attribution (§2.1)
* :mod:`~repro.core.thread_attrib` — subthread attribution (§2.2)
* :mod:`~repro.core.memory_profiler` — threshold-based sampling (§3.1–3.3)
* :mod:`~repro.core.leak_detector` — sampling leak detection (§3.4)
* :mod:`~repro.core.copy_volume` — copy-volume profiling (§3.5)
* :mod:`~repro.core.gpu_profiler` — GPU sampling (§4)
* :mod:`~repro.core.rdp`, :mod:`~repro.core.filtering` — UI data reduction (§5)
"""

from repro.core.config import MODE_CPU, MODE_CPU_GPU, MODE_FULL, ScaleneConfig
from repro.core.scalene import Scalene
from repro.core.profile_data import ProfileData

__all__ = [
    "Scalene",
    "ScaleneConfig",
    "ProfileData",
    "MODE_CPU",
    "MODE_CPU_GPU",
    "MODE_FULL",
]
