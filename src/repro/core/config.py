"""Scalene configuration.

All profiler *overhead* costs are expressed in interpreter-opcode
equivalents (``*_ops``): the simulated interpreter's opcode is tens of
virtual microseconds (versus tens of real nanoseconds in CPython), so
expressing hook costs relative to the opcode cost keeps the
overhead-to-work ratio — the quantity the paper's Tables 3/Figure 7
measure — faithful under the time scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProfilerError
from repro.units import SCALENE_CPU_INTERVAL, SCALENE_THRESHOLD

MODE_CPU = "cpu"
MODE_CPU_GPU = "cpu+gpu"
MODE_FULL = "full"

_MODES = (MODE_CPU, MODE_CPU_GPU, MODE_FULL)


@dataclass
class ScaleneConfig:
    """Tunables for a Scalene run (defaults match the paper/release)."""

    mode: str = MODE_FULL
    #: CPU sampling interval q (§2.1).
    cpu_sampling_interval: float = SCALENE_CPU_INTERVAL
    #: Memory sampling threshold T: "a prime number slightly above 10MB".
    memory_threshold: int = SCALENE_THRESHOLD
    #: memcpy sampling rate, "a multiple of the allocation sampling rate"
    #: (§3.5) — here half the allocation threshold.
    copy_sampling_rate: int = SCALENE_THRESHOLD // 2
    #: Leak-report filters (§3.4).
    leak_likelihood_threshold: float = 0.95
    leak_growth_slope_threshold: float = 0.01
    #: UI reduction (§5).
    timeline_points: int = 100
    report_min_percent: float = 1.0
    report_max_lines: int = 300
    #: Offer/enable NVML per-PID accounting at startup (§4).
    enable_gpu_per_pid_accounting: bool = True
    #: Start with profiling paused; the program turns it on around the
    #: region of interest via the ``profile_start()``/``profile_stop()``
    #: builtins (the real Scalene's ``--off`` + programmatic API).
    start_paused: bool = False
    #: Ablation switch: disable the §2.1 signal-delay inference and
    #: attribute each sample's full elapsed time as Python time (what a
    #: naive sampling profiler does). For the ablation benchmark only.
    use_delay_inference: bool = True

    # -- overhead model (opcode-equivalents, see module docstring) ----------
    signal_handler_cost_ops: float = 2.0
    stack_walk_cost_ops: float = 0.5
    gpu_query_cost_ops: float = 1.0
    alloc_hook_cost_ops: float = 0.73
    free_check_cost_ops: float = 0.02
    memcpy_hook_cost_ops: float = 0.4
    sample_write_cost_ops: float = 10.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ProfilerError(f"unknown Scalene mode {self.mode!r}; use one of {_MODES}")
        if self.cpu_sampling_interval <= 0:
            raise ProfilerError("cpu_sampling_interval must be positive")
        if self.memory_threshold <= 0:
            raise ProfilerError("memory_threshold must be positive")
        if self.copy_sampling_rate <= 0:
            raise ProfilerError("copy_sampling_rate must be positive")

    @property
    def profiles_memory(self) -> bool:
        return self.mode == MODE_FULL

    @property
    def profiles_gpu(self) -> bool:
        return self.mode in (MODE_CPU_GPU, MODE_FULL)
