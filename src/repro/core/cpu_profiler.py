"""Scalene's CPU profiler (paper §2).

A wall-clock interval timer delivers a signal every ``q`` seconds. Because
the interpreter defers signals during native calls, the handler observes
the *delay* between expected and actual delivery on the process CPU clock
and infers:

* ``python_time += q`` — the interpreter was responsive for the quantum;
* ``native_time += T - q`` — any additional CPU elapsed (T) must have been
  spent outside the interpreter;
* ``system_time += wall_elapsed - T`` — wall time with no CPU behind it is
  time blocked in the kernel (IO, GPU waits).

For subthreads — which never receive signals — attribution uses the
§2.2 combination: the status flags maintained by the monkey-patched
blocking calls, ``sys._current_frames()``, and the CALL-opcode map from
bytecode disassembly.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.attribution import thread_location
from repro.core.config import ScaleneConfig
from repro.core.stats import ScaleneStats
from repro.core.thread_attrib import ThreadStatusTable, is_in_native_call
from repro.errors import ProfilerError
from repro.runtime.signals import SIGALRM, Timers


class CpuProfiler:
    """Signal-delay CPU profiler with subthread attribution."""

    def __init__(
        self,
        process,
        config: ScaleneConfig,
        stats: ScaleneStats,
        status: ThreadStatusTable,
        on_sample: Optional[Callable[[], None]] = None,
    ) -> None:
        self._process = process
        self._config = config
        self._stats = stats
        self._status = status
        #: Extra per-sample callbacks (the GPU profiler piggybacks here, §4).
        self._on_sample = on_sample
        self._last_wall = 0.0
        self._last_cpu = 0.0
        self._previous_handler = None
        self._running = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise ProfilerError("CPU profiler already started")
        process = self._process
        self._last_wall = process.clock.wall
        self._last_cpu = process.clock.cpu
        self._previous_handler = process.signals.get_handler(SIGALRM)
        process.signals.set_handler(SIGALRM, self._handler)
        process.signals.setitimer(Timers.ITIMER_REAL, self._config.cpu_sampling_interval)
        self._running = True

    def stop(self) -> None:
        if not self._running:
            raise ProfilerError("CPU profiler not running")
        process = self._process
        process.signals.setitimer(Timers.ITIMER_REAL, 0)
        process.signals.set_handler(SIGALRM, self._previous_handler)
        self._running = False

    def pause(self) -> None:
        """Disarm the sampling timer (region profiling)."""
        self._process.signals.setitimer(Timers.ITIMER_REAL, 0)

    def resume(self) -> None:
        """Re-arm the timer, restarting the measurement window now."""
        process = self._process
        self._last_wall = process.clock.wall
        self._last_cpu = process.clock.cpu
        process.signals.setitimer(
            Timers.ITIMER_REAL, self._config.cpu_sampling_interval
        )

    # -- the signal handler ----------------------------------------------------------

    def _handler(self, signum: int) -> None:
        process = self._process
        config = self._config
        op_cost = process.vm.config.op_cost
        process.charge_overhead(process.main_thread, config.signal_handler_cost_ops * op_cost)

        now_wall = process.clock.wall
        now_cpu = process.clock.cpu
        wall_elapsed = now_wall - self._last_wall
        cpu_elapsed = now_cpu - self._last_cpu
        self._last_wall = now_wall
        self._last_cpu = now_cpu
        if wall_elapsed <= 0:
            return

        q = config.cpu_sampling_interval
        if config.use_delay_inference:
            python_t = min(q, cpu_elapsed)
            native_t = max(cpu_elapsed - q, 0.0)
            system_t = max(wall_elapsed - cpu_elapsed, 0.0)
        else:
            # Ablated: the naive attribution every pre-Scalene sampler
            # uses — all observed time is "Python" time.
            python_t = cpu_elapsed
            native_t = 0.0
            system_t = max(wall_elapsed - cpu_elapsed, 0.0)

        self._stats.cpu_sample_count += 1
        executing = self._executing_threads()
        profiled = self._process.profiled_filenames

        main_location = thread_location(process.main_thread, profiled)
        if not executing:
            # Everything is blocked: all elapsed wall time is system time,
            # attributed to the main thread's blocking line.
            self._stats.record_cpu(main_location, 0.0, 0.0, system_t)
        else:
            share_cpu = (python_t + native_t) / len(executing)
            share_sys = system_t / len(executing)
            cpu_total = python_t + native_t
            for thread in executing:
                process.charge_overhead(
                    process.main_thread, config.stack_walk_cost_ops * op_cost
                )
                location = thread_location(thread, profiled)
                if thread.is_main:
                    # Signal-delay inference splits the main thread's share.
                    if cpu_total > 0:
                        p = share_cpu * (python_t / cpu_total)
                        n = share_cpu - p
                    else:
                        p = n = 0.0
                    self._stats.record_cpu(location, p, n, share_sys)
                else:
                    # §2.2: CALL-opcode heuristic decides Python vs native.
                    if is_in_native_call(thread, process.call_opcode_map):
                        self._stats.record_cpu(location, 0.0, share_cpu, share_sys)
                    else:
                        self._stats.record_cpu(location, share_cpu, 0.0, share_sys)

        if self._on_sample is not None:
            self._on_sample()

    def _executing_threads(self) -> List:
        """Live threads Scalene considers to be executing right now."""
        process = self._process
        result = []
        for thread in process.threading.enumerate():
            if thread.frame is None:
                continue
            if not self._status.is_executing(thread):
                continue
            # Threads blocked in *unpatched* waits still look "executing"
            # to Scalene's flags, matching the real system's behaviour —
            # except the main thread, which is demonstrably in the handler.
            result.append(thread)
        return result
