"""The finished profile: Scalene's output data model (paper §5).

Built from :class:`~repro.core.stats.ScaleneStats` when profiling stops:
lines are filtered to the significant ones (≥1 % plus neighbours, ≤300),
memory timelines are reduced with RDP + downsampling to ≤100 points, and
the result renders as rich text (CLI) or JSON (the web UI payload).

Profiles also *round-trip*: :meth:`ProfileData.to_dict` emits a
schema-versioned payload and :meth:`ProfileData.from_dict` restores it
exactly (every counter, leak score, and lint finding), refusing any
other schema version. :func:`merge_profiles` combines N profiles of the
same program — concurrent workers or repeated runs — into one
statistically coherent profile (see its docstring for the semantics);
both are the foundation of the :mod:`repro.serve` profile store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import ScaleneConfig
from repro.core.filtering import significant_lines
from repro.core.leak_detector import LeakReport, leak_likelihood
from repro.core.rdp import reduce_timeline
from repro.core.stats import ScaleneStats
from repro.errors import ProfilerError, ProfileSchemaError

#: Version of the JSON payload emitted by :meth:`ProfileData.to_dict`.
#: Bump whenever the shape changes; :meth:`ProfileData.from_dict` reads
#: the current version plus the listed older ones (absent fields default)
#: and fails loudly on anything else rather than guessing.
#: v3 added the degraded-mode fields (``degraded``, ``faults``).
#: v4 added native-boundary crossing counters (per line and totals) and
#: cross-flow findings (``crossflow``).
#: v5 added the concurrency planes: per-line lock-contention counters,
#: the who-blocks-whom edge list (``locks``), per-task accounting
#: (``tasks``), and process lineage (``processes``).
#: v6 added the optional ``sketch`` payload — the serialized streaming
#: aggregate (:class:`repro.serve.streaming.KeySketch`) a merged profile
#: carries so consumers can read per-line run-to-run distributions
#: (mean/variance/quantiles) without the constituent profiles.
SCHEMA_VERSION = 6

#: Older payload versions :meth:`ProfileData.from_dict` still accepts.
#: Fields introduced later default: v2 payloads load with
#: ``degraded=False`` / no fault counters, v2/v3 with zero crossing
#: counters and no cross-flow findings, v2–v4 with zero lock counters
#: and empty task/process lists, v2–v5 with ``sketch=None``.
READABLE_SCHEMAS = frozenset({2, 3, 4, 5, SCHEMA_VERSION})


@dataclass
class LineReport:
    """One reported line (a row of the paper's Fig. 2 table)."""

    filename: str
    lineno: int
    function: str
    source: str
    cpu_python_percent: float
    cpu_native_percent: float
    cpu_system_percent: float
    mem_avg_mb: float
    mem_peak_mb: float
    mem_python_percent: float
    #: Share of the program's total allocation activity on this line
    #: (the "activity" column of the paper's Fig. 2), percent.
    mem_activity_percent: float
    timeline: List[Tuple[float, float]]
    copy_mb_s: float
    gpu_percent: float
    gpu_mem_peak_mb: float
    #: Native-boundary crossing counters (exact, from the runtime's
    #: CrossingRecorder). Absolute quantities, so merges sum them.
    crossings: int = 0
    crossing_overhead_s: float = 0.0
    crossing_native_s: float = 0.0
    bytes_to_native: int = 0
    bytes_to_python: int = 0
    #: Lock/semaphore contention counters (exact, from the runtime's
    #: LockContentionRecorder), attributed to the acquiring line.
    #: Absolute quantities, so merges sum them.
    lock_blocked_s: float = 0.0
    lock_contentions: int = 0
    lock_acquisitions: int = 0

    @property
    def cpu_total_percent(self) -> float:
        return (
            self.cpu_python_percent
            + self.cpu_native_percent
            + self.cpu_system_percent
        )


@dataclass
class FunctionReport:
    """Per-function aggregate (Scalene reports lines *and* functions)."""

    filename: str
    function: str
    cpu_python_percent: float
    cpu_native_percent: float
    cpu_system_percent: float
    malloc_mb: float
    copy_mb: float
    gpu_percent: float

    @property
    def cpu_total_percent(self) -> float:
        return (
            self.cpu_python_percent
            + self.cpu_native_percent
            + self.cpu_system_percent
        )


@dataclass
class LockEdge:
    """One who-blocks-whom edge: ``waiter`` blocked on ``lock`` held by
    ``holder`` for a cumulative ``blocked_s`` across ``count`` waits."""

    waiter: str
    holder: str
    lock: str
    blocked_s: float = 0.0
    count: int = 0

    def to_dict(self) -> Dict:
        return {
            "waiter": self.waiter,
            "holder": self.holder,
            "lock": self.lock,
            "blocked_s": self.blocked_s,
            "count": self.count,
        }


@dataclass
class TaskReport:
    """Per-task accounting for one cooperative event-loop task."""

    name: str
    cpu_s: float = 0.0
    wait_s: float = 0.0
    switches: int = 0
    #: ``file:lineno`` of the task's last await point ("" when it never
    #: awaited — the starvation signature).
    awaiting: str = ""

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "cpu_s": self.cpu_s,
            "wait_s": self.wait_s,
            "switches": self.switches,
            "awaiting": self.awaiting,
        }


@dataclass
class ProcessReport:
    """One process of the profiled tree (fork/spawn lineage)."""

    pid: int
    parent_pid: Optional[int]
    elapsed_s: float = 0.0
    cpu_s: float = 0.0
    peak_mb: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "pid": self.pid,
            "parent_pid": self.parent_pid,
            "elapsed_s": self.elapsed_s,
            "cpu_s": self.cpu_s,
            "peak_mb": self.peak_mb,
        }


@dataclass
class ProfileData:
    """Everything Scalene reports for one run."""

    mode: str
    elapsed: float
    cpu_python_time: float
    cpu_native_time: float
    cpu_system_time: float
    cpu_samples: int
    mem_samples: int
    peak_footprint_mb: float
    total_copy_mb: float
    gpu_mean_utilization: float
    gpu_mem_peak_mb: float
    lines: List[LineReport] = field(default_factory=list)
    functions: List[FunctionReport] = field(default_factory=list)
    memory_timeline: List[Tuple[float, float]] = field(default_factory=list)
    leaks: List[LeakReport] = field(default_factory=list)
    sample_log_bytes: int = 0
    #: Total allocation volume (the denominator of every line's
    #: ``mem_activity_percent`` — kept so merges can recover absolute
    #: per-line malloc volume from the percentages).
    total_alloc_mb: float = 0.0
    #: GPU sample count (the weight of ``gpu_mean_utilization`` in merges).
    gpu_samples: int = 0
    #: Triangulated static-analysis findings
    #: (:class:`repro.analysis.triangulate.TriangulatedFinding`), attached
    #: via :func:`repro.analysis.triangulate.attach_lint`; rendered by
    #: every output backend.
    lint_findings: List = field(default_factory=list)
    #: True when the run executed under injected (or detected) event-source
    #: faults: the statistics are still bounded — see
    #: :meth:`invariant_violations` — but sample counts and attributions
    #: may be perturbed. Set by :func:`repro.faults.apply_fault_counters`.
    degraded: bool = False
    #: Per-fault-family counts of the faults that fired during the run
    #: (e.g. ``{"signals_dropped": 3, "clock_jumps": 1}``); empty when the
    #: run was clean.
    fault_counters: Dict[str, int] = field(default_factory=dict)
    #: Whole-program native-boundary crossing totals (exact counts).
    total_crossings: int = 0
    total_crossing_overhead_s: float = 0.0
    total_bytes_to_native: int = 0
    total_bytes_to_python: int = 0
    #: Cross-flow findings (:class:`repro.analysis.crossflow.CrossFlowFinding`):
    #: static boundary findings joined with the measured crossing counters,
    #: attached via :func:`repro.analysis.crossflow.attach_crossflow`.
    crossflow_findings: List = field(default_factory=list)
    #: Whole-program lock/semaphore contention totals (exact counts).
    total_lock_blocked_s: float = 0.0
    total_lock_contentions: int = 0
    total_lock_acquisitions: int = 0
    #: Who-blocks-whom contention edges, sorted by blocked time.
    lock_edges: List[LockEdge] = field(default_factory=list)
    #: Per-task accounting for cooperative event-loop tasks.
    tasks: List[TaskReport] = field(default_factory=list)
    #: Process lineage (fork/spawn tree); empty for single-process runs.
    processes: List[ProcessReport] = field(default_factory=list)
    #: Serialized streaming aggregate (schema v6, optional): a
    #: :class:`repro.serve.streaming.KeySketch` payload carried by
    #: merged profiles so consumers can read per-line run-to-run
    #: distributions without the constituent profiles. ``None`` for
    #: single-run profiles and anything loaded from schema ≤ 5.
    sketch: Optional[Dict] = None

    # -- rendering -------------------------------------------------------

    #: Valid sort keys for :meth:`render_text` (Fig. 2's sortable columns).
    SORT_KEYS = {
        "line": lambda l: (l.filename, l.lineno),
        "cpu": lambda l: -l.cpu_total_percent,
        "memory": lambda l: -l.mem_peak_mb,
        "copy": lambda l: -l.copy_mb_s,
        "gpu": lambda l: -l.gpu_percent,
    }

    def render_text(self, max_width: int = 100, sort_by: str = "line") -> str:
        """Rich-text-style CLI report.

        ``sort_by`` mirrors the web UI's sortable column headers:
        ``line`` (default), ``cpu``, ``memory``, ``copy``, or ``gpu``.
        """
        key = self.SORT_KEYS.get(sort_by)
        if key is None:
            raise ValueError(
                f"unknown sort_by {sort_by!r}; use one of {sorted(self.SORT_KEYS)}"
            )
        out: List[str] = []
        total = self.cpu_python_time + self.cpu_native_time + self.cpu_system_time
        out.append(f"Scalene profile [{self.mode}] — elapsed {self.elapsed:.2f}s "
                   f"(CPU samples: {self.cpu_samples}, memory samples: {self.mem_samples})")
        if self.degraded:
            counters = ", ".join(
                f"{name}={count}" for name, count in sorted(self.fault_counters.items())
            )
            out.append(
                f"  DEGRADED run — event-source faults observed: "
                f"{counters or 'none recorded'}"
            )
        if total > 0:
            out.append(
                f"  time: {100 * self.cpu_python_time / total:.0f}% Python | "
                f"{100 * self.cpu_native_time / total:.0f}% native | "
                f"{100 * self.cpu_system_time / total:.0f}% system"
            )
        if self.mem_samples:
            out.append(f"  peak memory: {self.peak_footprint_mb:.1f} MB | "
                       f"copy volume: {self.total_copy_mb:.1f} MB")
        if self.gpu_mean_utilization > 0:
            out.append(f"  GPU: {100 * self.gpu_mean_utilization:.0f}% util | "
                       f"peak {self.gpu_mem_peak_mb:.1f} MB")
        header = (
            f"{'line':>5} {'py%':>5} {'nat%':>5} {'sys%':>5} "
            f"{'avgMB':>7} {'pkMB':>7} {'cp MB/s':>8} {'gpu%':>5}  source"
        )
        out.append(header)
        out.append("-" * min(len(header) + 20, max_width))
        for line in sorted(self.lines, key=key):
            src = line.source[: max_width - 60]
            out.append(
                f"{line.lineno:>5} {line.cpu_python_percent:>5.1f} "
                f"{line.cpu_native_percent:>5.1f} {line.cpu_system_percent:>5.1f} "
                f"{line.mem_avg_mb:>7.1f} {line.mem_peak_mb:>7.1f} "
                f"{line.copy_mb_s:>8.2f} {100 * line.gpu_percent:>5.1f}  {src}"
            )
        hot_functions = [f for f in self.functions if f.cpu_total_percent >= 1.0]
        if hot_functions:
            out.append("")
            out.append(f"{'function':<22} {'py%':>5} {'nat%':>5} {'sys%':>5} "
                       f"{'allocMB':>8} {'gpu%':>5}")
            for fn in hot_functions:
                out.append(
                    f"{fn.function:<22} {fn.cpu_python_percent:>5.1f} "
                    f"{fn.cpu_native_percent:>5.1f} {fn.cpu_system_percent:>5.1f} "
                    f"{fn.malloc_mb:>8.1f} {100 * fn.gpu_percent:>5.1f}"
                )
        if self.leaks:
            out.append("")
            out.append("Possible memory leaks (likelihood ≥ 95%):")
            for leak in self.leaks:
                out.append(f"  {leak}")
        if self.lint_findings:
            active = [t for t in self.lint_findings if not t.suppressed]
            suppressed = [t for t in self.lint_findings if t.suppressed]
            out.append("")
            out.append("Performance lints (static analysis × profile):")
            for rank, t in enumerate(active, start=1):
                out.append(
                    f"  #{rank} line {t.finding.lineno:>4} [{t.finding.detector}] "
                    f"{t.score:5.1f}% measured — {t.finding.message}"
                )
                out.append(f"       fix: {t.finding.suggestion}")
            if suppressed:
                out.append(
                    f"  ({len(suppressed)} finding(s) suppressed: "
                    f"lines below the significance threshold)"
                )
        if self.total_crossings > 0:
            out.append("")
            out.append(
                f"Native boundary: {self.total_crossings} crossings | "
                f"overhead {self.total_crossing_overhead_s * 1000:.1f} ms | "
                f"converted {self.total_bytes_to_native / 1e6:.2f} MB → native, "
                f"{self.total_bytes_to_python / 1e6:.2f} MB → Python"
            )
            chatty = [
                line
                for line in sorted(self.lines, key=lambda l: -l.crossings)
                if line.crossings > 0
            ][:5]
            for line in chatty:
                out.append(
                    f"  line {line.lineno:>4}: {line.crossings} crossings, "
                    f"overhead {line.crossing_overhead_s * 1000:.1f} ms, "
                    f"native {line.crossing_native_s * 1000:.1f} ms"
                )
        if self.crossflow_findings:
            out.append("")
            out.append("Cross-flow findings (boundary lints × measured crossings):")
            for rank, f in enumerate(self.crossflow_findings, start=1):
                out.append(
                    f"  #{rank} line {f.lineno:>4} [{f.detector}] "
                    f"{f.crossings} crossings"
                    + (
                        f" ({f.crossings_per_iteration:.1f}/iteration)"
                        if f.crossings_per_iteration > 0
                        else ""
                    )
                    + f", overhead {f.overhead_share_percent:.0f}% of line time "
                    f"— {f.message}"
                )
                out.append(f"       fix: {f.suggestion}")
                if f.estimated_savings_s > 0:
                    out.append(
                        f"       estimated savings if batched: "
                        f"{f.estimated_savings_s * 1000:.1f} ms"
                    )
        if self.total_lock_contentions > 0 or self.total_lock_blocked_s > 0:
            out.append("")
            out.append(
                f"Lock contention: {self.total_lock_blocked_s * 1000:.1f} ms "
                f"blocked | {self.total_lock_contentions} contended / "
                f"{self.total_lock_acquisitions} acquisitions"
            )
            contended = [
                line
                for line in sorted(self.lines, key=lambda l: -l.lock_blocked_s)
                if line.lock_contentions > 0
            ][:5]
            for line in contended:
                out.append(
                    f"  line {line.lineno:>4}: blocked "
                    f"{line.lock_blocked_s * 1000:.1f} ms over "
                    f"{line.lock_contentions} waits "
                    f"({line.lock_acquisitions} acquisitions)"
                )
            for edge in sorted(self.lock_edges, key=lambda e: -e.blocked_s)[:5]:
                out.append(
                    f"  {edge.waiter} blocked by {edge.holder} on "
                    f"{edge.lock!r}: {edge.blocked_s * 1000:.1f} ms "
                    f"({edge.count}x)"
                )
        if self.tasks:
            out.append("")
            out.append(f"Async tasks ({len(self.tasks)}):")
            for task in sorted(self.tasks, key=lambda t: -t.cpu_s):
                awaiting = f" @ {task.awaiting}" if task.awaiting else " (never awaited)"
                out.append(
                    f"  {task.name:<22} cpu {task.cpu_s * 1000:8.1f} ms | "
                    f"idle {task.wait_s * 1000:8.1f} ms | "
                    f"{task.switches} switches{awaiting}"
                )
        if self.processes:
            out.append("")
            out.append(f"Process tree ({len(self.processes)} processes):")
            for proc in sorted(self.processes, key=lambda p: p.pid):
                parent = (
                    f"parent {proc.parent_pid}" if proc.parent_pid is not None else "root"
                )
                out.append(
                    f"  pid {proc.pid:>5} ({parent}): elapsed "
                    f"{proc.elapsed_s:.3f}s | cpu {proc.cpu_s:.3f}s | "
                    f"peak {proc.peak_mb:.1f} MB"
                )
        return "\n".join(out)

    def to_dict(self) -> Dict:
        """JSON-ready payload (what the web UI consumes).

        The payload is schema-versioned and complete: every counter needed
        to rebuild an identical :class:`ProfileData` via :meth:`from_dict`
        is present.
        """
        return {
            "schema": SCHEMA_VERSION,
            "mode": self.mode,
            "degraded": self.degraded,
            "faults": dict(self.fault_counters),
            "elapsed_s": self.elapsed,
            "cpu": {
                "python_s": self.cpu_python_time,
                "native_s": self.cpu_native_time,
                "system_s": self.cpu_system_time,
                "samples": self.cpu_samples,
            },
            "memory": {
                "samples": self.mem_samples,
                "peak_mb": self.peak_footprint_mb,
                "total_alloc_mb": self.total_alloc_mb,
                "timeline": self.memory_timeline,
                "sample_log_bytes": self.sample_log_bytes,
            },
            "copy_volume_mb": self.total_copy_mb,
            "gpu": {
                "mean_utilization": self.gpu_mean_utilization,
                "peak_mb": self.gpu_mem_peak_mb,
                "samples": self.gpu_samples,
            },
            "crossings": {
                "total": self.total_crossings,
                "overhead_s": self.total_crossing_overhead_s,
                "bytes_to_native": self.total_bytes_to_native,
                "bytes_to_python": self.total_bytes_to_python,
            },
            "crossflow": [f.to_dict() for f in self.crossflow_findings],
            "locks": {
                "blocked_s": self.total_lock_blocked_s,
                "contentions": self.total_lock_contentions,
                "acquisitions": self.total_lock_acquisitions,
                "edges": [edge.to_dict() for edge in self.lock_edges],
            },
            "tasks": [task.to_dict() for task in self.tasks],
            "processes": [proc.to_dict() for proc in self.processes],
            "sketch": self.sketch,
            "lint": [t.to_dict() for t in self.lint_findings],
            "leaks": [
                {
                    "filename": leak.filename,
                    "lineno": leak.lineno,
                    "function": leak.function,
                    "likelihood": leak.likelihood,
                    "leak_rate_mb_s": leak.leak_rate_mb_s,
                    "mallocs": leak.mallocs,
                    "frees": leak.frees,
                }
                for leak in self.leaks
            ],
            "functions": [
                {
                    "filename": fn.filename,
                    "function": fn.function,
                    "cpu_python_percent": fn.cpu_python_percent,
                    "cpu_native_percent": fn.cpu_native_percent,
                    "cpu_system_percent": fn.cpu_system_percent,
                    "malloc_mb": fn.malloc_mb,
                    "copy_mb": fn.copy_mb,
                    "gpu_percent": fn.gpu_percent,
                }
                for fn in self.functions
            ],
            "lines": [
                {
                    "filename": line.filename,
                    "lineno": line.lineno,
                    "function": line.function,
                    "source": line.source,
                    "cpu_python_percent": line.cpu_python_percent,
                    "cpu_native_percent": line.cpu_native_percent,
                    "cpu_system_percent": line.cpu_system_percent,
                    "mem_avg_mb": line.mem_avg_mb,
                    "mem_peak_mb": line.mem_peak_mb,
                    "mem_python_percent": line.mem_python_percent,
                    "mem_activity_percent": line.mem_activity_percent,
                    "timeline": line.timeline,
                    "copy_mb_s": line.copy_mb_s,
                    "gpu_percent": line.gpu_percent,
                    "gpu_mem_peak_mb": line.gpu_mem_peak_mb,
                    "crossings": line.crossings,
                    "crossing_overhead_s": line.crossing_overhead_s,
                    "crossing_native_s": line.crossing_native_s,
                    "bytes_to_native": line.bytes_to_native,
                    "bytes_to_python": line.bytes_to_python,
                    "lock_blocked_s": line.lock_blocked_s,
                    "lock_contentions": line.lock_contentions,
                    "lock_acquisitions": line.lock_acquisitions,
                }
                for line in self.lines
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    # -- deserialization -------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict) -> "ProfileData":
        """Rebuild a profile from a :meth:`to_dict` payload, exactly.

        Accepts the current schema plus the older versions listed in
        ``READABLE_SCHEMAS`` (fields added since then default). Raises
        :class:`~repro.errors.ProfileSchemaError` when the payload is not
        a dict, carries any other schema version, or is missing required
        keys — a misread profile must never silently enter a merge or a
        trend.
        """
        if not isinstance(payload, dict):
            raise ProfileSchemaError(
                f"profile payload must be a dict, got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema not in READABLE_SCHEMAS:
            raise ProfileSchemaError(
                f"unsupported profile schema {schema!r}; "
                f"this build reads schemas {sorted(READABLE_SCHEMAS)}"
            )
        crossings = payload.get("crossings", {})
        # v2-v4 predate the concurrency planes.
        locks = payload.get("locks", {})
        try:
            cpu = payload["cpu"]
            memory = payload["memory"]
            gpu = payload["gpu"]
            profile = cls(
                mode=payload["mode"],
                # v2 predates degraded-mode accounting.
                degraded=payload["degraded"] if schema >= 3 else False,
                fault_counters=dict(payload["faults"]) if schema >= 3 else {},
                # v2/v3 predate crossing counters (the .get defaults above
                # and the per-line .get defaults below cover them).
                total_crossings=crossings.get("total", 0),
                total_crossing_overhead_s=crossings.get("overhead_s", 0.0),
                total_bytes_to_native=crossings.get("bytes_to_native", 0),
                total_bytes_to_python=crossings.get("bytes_to_python", 0),
                crossflow_findings=[
                    _crossflow_from_dict(entry)
                    for entry in payload.get("crossflow", [])
                ],
                total_lock_blocked_s=locks.get("blocked_s", 0.0),
                total_lock_contentions=locks.get("contentions", 0),
                total_lock_acquisitions=locks.get("acquisitions", 0),
                lock_edges=[
                    LockEdge(
                        waiter=entry["waiter"],
                        holder=entry["holder"],
                        lock=entry["lock"],
                        blocked_s=entry["blocked_s"],
                        count=entry["count"],
                    )
                    for entry in locks.get("edges", [])
                ],
                tasks=[
                    TaskReport(
                        name=entry["name"],
                        cpu_s=entry["cpu_s"],
                        wait_s=entry["wait_s"],
                        switches=entry["switches"],
                        awaiting=entry["awaiting"],
                    )
                    for entry in payload.get("tasks", [])
                ],
                processes=[
                    ProcessReport(
                        pid=entry["pid"],
                        parent_pid=entry["parent_pid"],
                        elapsed_s=entry["elapsed_s"],
                        cpu_s=entry["cpu_s"],
                        peak_mb=entry["peak_mb"],
                    )
                    for entry in payload.get("processes", [])
                ],
                # v2–v5 predate the streaming-aggregate payload.
                sketch=payload.get("sketch"),
                elapsed=payload["elapsed_s"],
                cpu_python_time=cpu["python_s"],
                cpu_native_time=cpu["native_s"],
                cpu_system_time=cpu["system_s"],
                cpu_samples=cpu["samples"],
                mem_samples=memory["samples"],
                peak_footprint_mb=memory["peak_mb"],
                total_copy_mb=payload["copy_volume_mb"],
                gpu_mean_utilization=gpu["mean_utilization"],
                gpu_mem_peak_mb=gpu["peak_mb"],
                sample_log_bytes=memory["sample_log_bytes"],
                total_alloc_mb=memory["total_alloc_mb"],
                gpu_samples=gpu["samples"],
                memory_timeline=_as_timeline(memory["timeline"]),
                lines=[
                    LineReport(
                        filename=entry["filename"],
                        lineno=entry["lineno"],
                        function=entry["function"],
                        source=entry["source"],
                        cpu_python_percent=entry["cpu_python_percent"],
                        cpu_native_percent=entry["cpu_native_percent"],
                        cpu_system_percent=entry["cpu_system_percent"],
                        mem_avg_mb=entry["mem_avg_mb"],
                        mem_peak_mb=entry["mem_peak_mb"],
                        mem_python_percent=entry["mem_python_percent"],
                        mem_activity_percent=entry["mem_activity_percent"],
                        timeline=_as_timeline(entry["timeline"]),
                        copy_mb_s=entry["copy_mb_s"],
                        gpu_percent=entry["gpu_percent"],
                        gpu_mem_peak_mb=entry["gpu_mem_peak_mb"],
                        crossings=entry.get("crossings", 0),
                        crossing_overhead_s=entry.get("crossing_overhead_s", 0.0),
                        crossing_native_s=entry.get("crossing_native_s", 0.0),
                        bytes_to_native=entry.get("bytes_to_native", 0),
                        bytes_to_python=entry.get("bytes_to_python", 0),
                        lock_blocked_s=entry.get("lock_blocked_s", 0.0),
                        lock_contentions=entry.get("lock_contentions", 0),
                        lock_acquisitions=entry.get("lock_acquisitions", 0),
                    )
                    for entry in payload["lines"]
                ],
                functions=[
                    FunctionReport(
                        filename=entry["filename"],
                        function=entry["function"],
                        cpu_python_percent=entry["cpu_python_percent"],
                        cpu_native_percent=entry["cpu_native_percent"],
                        cpu_system_percent=entry["cpu_system_percent"],
                        malloc_mb=entry["malloc_mb"],
                        copy_mb=entry["copy_mb"],
                        gpu_percent=entry["gpu_percent"],
                    )
                    for entry in payload["functions"]
                ],
                leaks=[
                    LeakReport(
                        filename=entry["filename"],
                        lineno=entry["lineno"],
                        function=entry["function"],
                        likelihood=entry["likelihood"],
                        leak_rate_mb_s=entry["leak_rate_mb_s"],
                        mallocs=entry["mallocs"],
                        frees=entry["frees"],
                    )
                    for entry in payload["leaks"]
                ],
                lint_findings=[_lint_from_dict(entry) for entry in payload["lint"]],
            )
        except KeyError as exc:
            raise ProfileSchemaError(
                f"profile payload (schema {schema}) is missing key {exc}"
            ) from None
        return profile

    @classmethod
    def from_json(cls, text: str) -> "ProfileData":
        """Parse :meth:`to_json` output back into a :class:`ProfileData`."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ProfileSchemaError(f"profile is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    # -- lookups used by tests and benchmarks -----------------------------------

    def line(self, lineno: int, filename: Optional[str] = None) -> Optional[LineReport]:
        for entry in self.lines:
            if entry.lineno == lineno and (filename is None or entry.filename == filename):
                return entry
        return None

    def function(self, name: str) -> Optional[FunctionReport]:
        for entry in self.functions:
            if entry.function == name:
                return entry
        return None

    # -- bounded invariants (the degraded-mode contract) -------------------

    def invariant_violations(self) -> List[str]:
        """The bounded invariants every profile — degraded or not — obeys.

        Returns human-readable violation strings (empty when the profile
        is well-formed):

        * no CPU time, sample count, footprint, copy/alloc volume, or
          fault counter is negative;
        * each line's three CPU percentages are in [0, 100] and sum to
          ≤ 100 (within float tolerance);
        * memory share/activity percentages are in [0, 100];
        * leak likelihoods and GPU utilizations are in [0, 1].
        """
        violations: List[str] = []
        eps = 1e-6

        def check_nonneg(name: str, value) -> None:
            if value < 0:
                violations.append(f"{name} is negative: {value!r}")

        check_nonneg("elapsed", self.elapsed)
        check_nonneg("cpu_python_time", self.cpu_python_time)
        check_nonneg("cpu_native_time", self.cpu_native_time)
        check_nonneg("cpu_system_time", self.cpu_system_time)
        check_nonneg("cpu_samples", self.cpu_samples)
        check_nonneg("mem_samples", self.mem_samples)
        check_nonneg("peak_footprint_mb", self.peak_footprint_mb)
        check_nonneg("total_copy_mb", self.total_copy_mb)
        check_nonneg("total_alloc_mb", self.total_alloc_mb)
        check_nonneg("sample_log_bytes", self.sample_log_bytes)
        check_nonneg("total_crossings", self.total_crossings)
        check_nonneg("total_crossing_overhead_s", self.total_crossing_overhead_s)
        check_nonneg("total_bytes_to_native", self.total_bytes_to_native)
        check_nonneg("total_bytes_to_python", self.total_bytes_to_python)
        check_nonneg("total_lock_blocked_s", self.total_lock_blocked_s)
        check_nonneg("total_lock_contentions", self.total_lock_contentions)
        check_nonneg("total_lock_acquisitions", self.total_lock_acquisitions)
        for edge in self.lock_edges:
            where = f"lock edge {edge.waiter}->{edge.holder} on {edge.lock}"
            check_nonneg(f"{where} blocked_s", edge.blocked_s)
            check_nonneg(f"{where} count", edge.count)
        for task in self.tasks:
            check_nonneg(f"task {task.name} cpu_s", task.cpu_s)
            check_nonneg(f"task {task.name} wait_s", task.wait_s)
            check_nonneg(f"task {task.name} switches", task.switches)
        for proc in self.processes:
            check_nonneg(f"process {proc.pid} elapsed_s", proc.elapsed_s)
            check_nonneg(f"process {proc.pid} cpu_s", proc.cpu_s)
            check_nonneg(f"process {proc.pid} peak_mb", proc.peak_mb)
        if not 0.0 <= self.gpu_mean_utilization <= 1.0 + eps:
            violations.append(
                f"gpu_mean_utilization outside [0, 1]: {self.gpu_mean_utilization!r}"
            )
        for name, count in self.fault_counters.items():
            check_nonneg(f"fault counter {name!r}", count)
        for line in self.lines:
            where = f"line {line.filename}:{line.lineno}"
            for col in (
                "cpu_python_percent",
                "cpu_native_percent",
                "cpu_system_percent",
                "mem_python_percent",
                "mem_activity_percent",
            ):
                value = getattr(line, col)
                if not 0.0 <= value <= 100.0 + eps:
                    violations.append(f"{where} {col} outside [0, 100]: {value!r}")
            if line.cpu_total_percent > 100.0 + eps:
                violations.append(
                    f"{where} CPU percentages sum to "
                    f"{line.cpu_total_percent:.4f} > 100"
                )
            check_nonneg(f"{where} mem_avg_mb", line.mem_avg_mb)
            check_nonneg(f"{where} mem_peak_mb", line.mem_peak_mb)
            check_nonneg(f"{where} copy_mb_s", line.copy_mb_s)
            check_nonneg(f"{where} gpu_mem_peak_mb", line.gpu_mem_peak_mb)
            check_nonneg(f"{where} crossings", line.crossings)
            check_nonneg(f"{where} crossing_overhead_s", line.crossing_overhead_s)
            check_nonneg(f"{where} crossing_native_s", line.crossing_native_s)
            check_nonneg(f"{where} bytes_to_native", line.bytes_to_native)
            check_nonneg(f"{where} bytes_to_python", line.bytes_to_python)
            check_nonneg(f"{where} lock_blocked_s", line.lock_blocked_s)
            check_nonneg(f"{where} lock_contentions", line.lock_contentions)
            check_nonneg(f"{where} lock_acquisitions", line.lock_acquisitions)
            if not 0.0 <= line.gpu_percent <= 1.0 + eps:
                violations.append(
                    f"{where} gpu_percent outside [0, 1]: {line.gpu_percent!r}"
                )
        for leak in self.leaks:
            where = f"leak {leak.filename}:{leak.lineno}"
            if not 0.0 <= leak.likelihood <= 1.0 + eps:
                violations.append(
                    f"{where} likelihood outside [0, 1]: {leak.likelihood!r}"
                )
            check_nonneg(f"{where} leak_rate_mb_s", leak.leak_rate_mb_s)
            check_nonneg(f"{where} mallocs", leak.mallocs)
            check_nonneg(f"{where} frees", leak.frees)
        return violations

    def clamp_bounded(self) -> "ProfileData":
        """Force the bounded invariants to hold, in place.

        Used on degraded profiles: injected event-source faults may
        perturb sample counts and attribution, but the published numbers
        must still be *bounded* — negatives clamp to zero, percentages to
        [0, 100] (a line's three CPU percentages are rescaled
        proportionally if their sum exceeds 100), likelihoods and GPU
        utilizations to [0, 1]. Returns ``self`` for chaining.
        """
        clamp01 = lambda v: min(max(v, 0.0), 1.0)
        self.elapsed = max(self.elapsed, 0.0)
        self.cpu_python_time = max(self.cpu_python_time, 0.0)
        self.cpu_native_time = max(self.cpu_native_time, 0.0)
        self.cpu_system_time = max(self.cpu_system_time, 0.0)
        self.cpu_samples = max(self.cpu_samples, 0)
        self.mem_samples = max(self.mem_samples, 0)
        self.peak_footprint_mb = max(self.peak_footprint_mb, 0.0)
        self.total_copy_mb = max(self.total_copy_mb, 0.0)
        self.total_alloc_mb = max(self.total_alloc_mb, 0.0)
        self.sample_log_bytes = max(self.sample_log_bytes, 0)
        self.gpu_mean_utilization = clamp01(self.gpu_mean_utilization)
        self.gpu_mem_peak_mb = max(self.gpu_mem_peak_mb, 0.0)
        self.total_crossings = max(self.total_crossings, 0)
        self.total_crossing_overhead_s = max(self.total_crossing_overhead_s, 0.0)
        self.total_bytes_to_native = max(self.total_bytes_to_native, 0)
        self.total_bytes_to_python = max(self.total_bytes_to_python, 0)
        self.total_lock_blocked_s = max(self.total_lock_blocked_s, 0.0)
        self.total_lock_contentions = max(self.total_lock_contentions, 0)
        self.total_lock_acquisitions = max(self.total_lock_acquisitions, 0)
        for edge in self.lock_edges:
            edge.blocked_s = max(edge.blocked_s, 0.0)
            edge.count = max(edge.count, 0)
        for task in self.tasks:
            task.cpu_s = max(task.cpu_s, 0.0)
            task.wait_s = max(task.wait_s, 0.0)
            task.switches = max(task.switches, 0)
        for proc in self.processes:
            proc.elapsed_s = max(proc.elapsed_s, 0.0)
            proc.cpu_s = max(proc.cpu_s, 0.0)
            proc.peak_mb = max(proc.peak_mb, 0.0)
        for name in list(self.fault_counters):
            self.fault_counters[name] = max(self.fault_counters[name], 0)
        for line in self.lines:
            line.cpu_python_percent = min(max(line.cpu_python_percent, 0.0), 100.0)
            line.cpu_native_percent = min(max(line.cpu_native_percent, 0.0), 100.0)
            line.cpu_system_percent = min(max(line.cpu_system_percent, 0.0), 100.0)
            total = line.cpu_total_percent
            if total > 100.0:
                scale = 100.0 / total
                line.cpu_python_percent *= scale
                line.cpu_native_percent *= scale
                line.cpu_system_percent *= scale
            line.mem_python_percent = min(max(line.mem_python_percent, 0.0), 100.0)
            line.mem_activity_percent = min(max(line.mem_activity_percent, 0.0), 100.0)
            line.mem_avg_mb = max(line.mem_avg_mb, 0.0)
            line.mem_peak_mb = max(line.mem_peak_mb, 0.0)
            line.copy_mb_s = max(line.copy_mb_s, 0.0)
            line.gpu_percent = clamp01(line.gpu_percent)
            line.gpu_mem_peak_mb = max(line.gpu_mem_peak_mb, 0.0)
            line.crossings = max(line.crossings, 0)
            line.crossing_overhead_s = max(line.crossing_overhead_s, 0.0)
            line.crossing_native_s = max(line.crossing_native_s, 0.0)
            line.bytes_to_native = max(line.bytes_to_native, 0)
            line.bytes_to_python = max(line.bytes_to_python, 0)
            line.lock_blocked_s = max(line.lock_blocked_s, 0.0)
            line.lock_contentions = max(line.lock_contentions, 0)
            line.lock_acquisitions = max(line.lock_acquisitions, 0)
        for leak in self.leaks:
            leak.likelihood = clamp01(leak.likelihood)
            leak.leak_rate_mb_s = max(leak.leak_rate_mb_s, 0.0)
            leak.mallocs = max(leak.mallocs, 0)
            leak.frees = max(leak.frees, 0)
        return self


def build_profile(
    stats: ScaleneStats,
    config: ScaleneConfig,
    *,
    source_lines: Dict[str, List[str]],
    leaks: List[LeakReport],
    sample_log_bytes: int = 0,
) -> ProfileData:
    """Assemble the final :class:`ProfileData` from raw statistics."""
    elapsed = stats.elapsed
    total_cpu = stats.total_cpu_time
    keys = significant_lines(
        stats.lines,
        total_cpu,
        stats.total_alloc_mb,
        min_percent=config.report_min_percent,
        max_lines=config.report_max_lines,
    )
    line_reports: List[LineReport] = []
    for filename, lineno in keys:
        stats_line = stats.lines.get((filename, lineno))
        lines_of_file = source_lines.get(filename, [])
        source = (
            lines_of_file[lineno - 1] if 1 <= lineno <= len(lines_of_file) else ""
        )
        if stats_line is None:
            # A context neighbour with no samples of its own.
            line_reports.append(
                LineReport(
                    filename=filename,
                    lineno=lineno,
                    function="",
                    source=source,
                    cpu_python_percent=0.0,
                    cpu_native_percent=0.0,
                    cpu_system_percent=0.0,
                    mem_avg_mb=0.0,
                    mem_peak_mb=0.0,
                    mem_python_percent=0.0,
                    mem_activity_percent=0.0,
                    timeline=[],
                    copy_mb_s=0.0,
                    gpu_percent=0.0,
                    gpu_mem_peak_mb=0.0,
                )
            )
            continue
        share = (lambda t: 100.0 * t / total_cpu if total_cpu > 0 else 0.0)
        mem_python_percent = (
            100.0 * stats_line.python_alloc_mb / stats_line.malloc_mb
            if stats_line.malloc_mb > 0
            else 0.0
        )
        line_reports.append(
            LineReport(
                filename=filename,
                lineno=lineno,
                function=stats_line.function,
                source=source,
                cpu_python_percent=share(stats_line.python_time),
                cpu_native_percent=share(stats_line.native_time),
                cpu_system_percent=share(stats_line.system_time),
                mem_avg_mb=stats_line.avg_footprint_mb,
                mem_peak_mb=stats_line.peak_footprint_mb,
                mem_python_percent=mem_python_percent,
                mem_activity_percent=(
                    100.0 * stats_line.malloc_mb / stats.total_alloc_mb
                    if stats.total_alloc_mb > 0
                    else 0.0
                ),
                timeline=reduce_timeline(stats_line.timeline, config.timeline_points),
                copy_mb_s=stats_line.copy_mb / elapsed if elapsed > 0 else 0.0,
                gpu_percent=stats_line.gpu_utilization,
                gpu_mem_peak_mb=stats_line.gpu_mem_peak_mb,
            )
        )
    gpu_mean = (
        stats.gpu_util_sum / stats.gpu_sample_count if stats.gpu_sample_count else 0.0
    )
    function_reports = _aggregate_functions(stats, total_cpu, elapsed)
    return ProfileData(
        mode=config.mode,
        elapsed=elapsed,
        cpu_python_time=stats.total_python_time,
        cpu_native_time=stats.total_native_time,
        cpu_system_time=stats.total_system_time,
        cpu_samples=stats.cpu_sample_count,
        mem_samples=stats.mem_sample_count,
        peak_footprint_mb=stats.peak_footprint_mb,
        total_copy_mb=stats.total_copy_mb,
        gpu_mean_utilization=gpu_mean,
        gpu_mem_peak_mb=stats.gpu_mem_peak_mb,
        lines=line_reports,
        functions=function_reports,
        memory_timeline=reduce_timeline(stats.memory_timeline, config.timeline_points),
        leaks=leaks,
        sample_log_bytes=sample_log_bytes,
        total_alloc_mb=stats.total_alloc_mb,
        gpu_samples=stats.gpu_sample_count,
    )


def _aggregate_functions(
    stats: ScaleneStats, total_cpu: float, elapsed: float
) -> List[FunctionReport]:
    """Aggregate per-line counters into per-function rows."""
    grouped: Dict[Tuple[str, str], List] = {}
    for stats_line in stats.lines.values():
        if not stats_line.function:
            continue
        grouped.setdefault((stats_line.filename, stats_line.function), []).append(
            stats_line
        )
    share = (lambda t: 100.0 * t / total_cpu if total_cpu > 0 else 0.0)
    reports = []
    for (filename, function), group in sorted(grouped.items()):
        gpu_samples = sum(line.gpu_samples for line in group)
        gpu_util = (
            sum(line.gpu_util_sum for line in group) / gpu_samples
            if gpu_samples
            else 0.0
        )
        reports.append(
            FunctionReport(
                filename=filename,
                function=function,
                cpu_python_percent=share(sum(l.python_time for l in group)),
                cpu_native_percent=share(sum(l.native_time for l in group)),
                cpu_system_percent=share(sum(l.system_time for l in group)),
                malloc_mb=sum(l.malloc_mb for l in group),
                copy_mb=sum(l.copy_mb for l in group),
                gpu_percent=gpu_util,
            )
        )
    reports.sort(key=lambda r: r.cpu_total_percent, reverse=True)
    return reports


# ---------------------------------------------------------------------------
# Serialization helpers
# ---------------------------------------------------------------------------


def _as_timeline(points: Iterable) -> List[Tuple[float, float]]:
    """JSON turns timeline tuples into lists; restore the tuples."""
    return [(wall, mb) for wall, mb in points]


def _lint_from_dict(entry: Dict):
    """Rebuild a triangulated lint finding from its ``to_dict`` payload.

    Imported lazily: :mod:`repro.analysis.triangulate` imports this module,
    so the reverse import must happen at call time.
    """
    from repro.analysis.triangulate import TriangulatedFinding
    from repro.staticcheck.lints import Finding

    return TriangulatedFinding(
        finding=Finding(
            detector=entry["detector"],
            filename=entry["filename"],
            lineno=entry["lineno"],
            function=entry["function"],
            message=entry["message"],
            suggestion=entry["suggestion"],
        ),
        cpu_percent=entry["cpu_percent"],
        mem_activity_percent=entry["mem_activity_percent"],
        copy_percent=entry["copy_percent"],
        score=entry["score"],
        suppressed=entry["suppressed"],
        reason=entry["reason"],
    )


def _crossflow_from_dict(entry: Dict):
    """Rebuild a cross-flow finding from its ``to_dict`` payload.

    Imported lazily for the same reason as :func:`_lint_from_dict`:
    :mod:`repro.analysis.crossflow` imports this module.
    """
    from repro.analysis.crossflow import CrossFlowFinding

    return CrossFlowFinding(
        detector=entry["detector"],
        filename=entry["filename"],
        lineno=entry["lineno"],
        function=entry["function"],
        message=entry["message"],
        suggestion=entry["suggestion"],
        crossings=entry["crossings"],
        crossings_per_iteration=entry["crossings_per_iteration"],
        overhead_s=entry["overhead_s"],
        native_s=entry["native_s"],
        overhead_share_percent=entry["overhead_share_percent"],
        bytes_to_native=entry["bytes_to_native"],
        bytes_to_python=entry["bytes_to_python"],
        estimated_savings_s=entry["estimated_savings_s"],
    )


# ---------------------------------------------------------------------------
# Merging (the repro.serve aggregation semantics)
# ---------------------------------------------------------------------------
#
# A merged profile answers "what did this program do across these runs?"
# as if the runs had been one longer profiling session:
#
# * additive counters — CPU seconds (Python/native/system), CPU and
#   memory sample counts, allocation volume, copy volume, sample-log
#   bytes, elapsed time, leak malloc/free observations — are summed;
# * high-water marks — whole-program and per-line peak footprint, GPU
#   peak memory — take the max;
# * fractions are *recombined from the underlying absolute quantities*,
#   never averaged: per-line CPU percentages are converted back to
#   seconds against their own profile's total, summed, and re-expressed
#   against the merged total (i.e. sample-weighted); allocation-activity
#   and Python-share percentages are recombined the same way via each
#   profile's total_alloc_mb; GPU utilization is weighted by GPU sample
#   counts; per-line average footprint is weighted by memory samples;
# * leak likelihoods are re-derived by applying Laplace's Rule of
#   Succession, 1 - (frees + 1) / (mallocs + 2), to the *summed*
#   counters — never by averaging probabilities;
# * timelines are concatenated on a shared virtual clock (each run's
#   points shifted by the cumulative elapsed time of the runs before
#   it) and re-reduced to the usual point budget;
# * degraded-mode accounting is pessimistic: the merged profile is
#   degraded if *any* input was, and fault counters are summed key-wise
#   (a merge never launders a faulty run into a clean one).
#
# Because every combination rule is a sum, a max, or a weighted mean
# whose weight is itself a summed counter carried on the profile, the
# merge is associative and commutative up to float rounding.


@dataclass
class _LineAccumulator:
    filename: str
    lineno: int
    function: str = ""
    source: str = ""
    python_s: float = 0.0
    native_s: float = 0.0
    system_s: float = 0.0
    malloc_mb: float = 0.0
    python_alloc_mb: float = 0.0
    mem_avg_weighted: float = 0.0
    mem_avg_weight: float = 0.0
    mem_peak_mb: float = 0.0
    copy_mb: float = 0.0
    gpu_util_weighted: float = 0.0
    gpu_weight: float = 0.0
    gpu_mem_peak_mb: float = 0.0
    crossings: int = 0
    crossing_overhead_s: float = 0.0
    crossing_native_s: float = 0.0
    bytes_to_native: int = 0
    bytes_to_python: int = 0
    lock_blocked_s: float = 0.0
    lock_contentions: int = 0
    lock_acquisitions: int = 0
    timeline: List[Tuple[float, float]] = field(default_factory=list)


@dataclass
class _FunctionAccumulator:
    filename: str
    function: str
    python_s: float = 0.0
    native_s: float = 0.0
    system_s: float = 0.0
    malloc_mb: float = 0.0
    copy_mb: float = 0.0
    gpu_util_weighted: float = 0.0
    gpu_weight: float = 0.0


@dataclass
class _LeakAccumulator:
    filename: str
    lineno: int
    function: str
    mallocs: int = 0
    frees: int = 0
    leaked_mb: float = 0.0


def merge_profiles(
    profiles: Sequence["ProfileData"], *, timeline_points: int = 100
) -> "ProfileData":
    """Merge N profiles of the same program into one (semantics above).

    All profiles must share a mode; merging a ``cpu`` profile into a
    ``full`` one would silently zero the memory columns, so it is an
    error instead.
    """
    if not profiles:
        raise ProfilerError("merge_profiles needs at least one profile")
    modes = {p.mode for p in profiles}
    if len(modes) > 1:
        raise ProfilerError(
            f"cannot merge profiles with different modes: {sorted(modes)}"
        )
    if len(profiles) == 1:
        return profiles[0]

    merged_elapsed = sum(p.elapsed for p in profiles)
    merged_python = sum(p.cpu_python_time for p in profiles)
    merged_native = sum(p.cpu_native_time for p in profiles)
    merged_system = sum(p.cpu_system_time for p in profiles)
    merged_total_cpu = merged_python + merged_native + merged_system
    merged_alloc = sum(p.total_alloc_mb for p in profiles)
    merged_gpu_samples = sum(p.gpu_samples for p in profiles)
    gpu_util_weighted = sum(p.gpu_mean_utilization * p.gpu_samples for p in profiles)

    lines: Dict[Tuple[str, int], _LineAccumulator] = {}
    functions: Dict[Tuple[str, str], _FunctionAccumulator] = {}
    leaks: Dict[Tuple[str, int, str], _LeakAccumulator] = {}
    memory_timeline: List[Tuple[float, float]] = []
    lint_findings: List = []
    seen_lints = set()
    crossflow_findings: List = []
    seen_crossflow = set()
    # Concurrency-plane counters are all absolute quantities: edges sum
    # by (waiter, holder, lock), tasks by name, processes by (pid,
    # parent_pid) — each key is stable across runs of the same program.
    edges: Dict[Tuple[str, str, str], LockEdge] = {}
    tasks: Dict[str, TaskReport] = {}
    processes: Dict[Tuple[int, Optional[int]], ProcessReport] = {}

    offset = 0.0
    for profile in profiles:
        total_cpu = (
            profile.cpu_python_time
            + profile.cpu_native_time
            + profile.cpu_system_time
        )
        seconds = (lambda pct: pct / 100.0 * total_cpu)
        for line in profile.lines:
            acc = lines.get((line.filename, line.lineno))
            if acc is None:
                acc = _LineAccumulator(filename=line.filename, lineno=line.lineno)
                lines[(line.filename, line.lineno)] = acc
            acc.function = acc.function or line.function
            acc.source = acc.source or line.source
            acc.python_s += seconds(line.cpu_python_percent)
            acc.native_s += seconds(line.cpu_native_percent)
            acc.system_s += seconds(line.cpu_system_percent)
            # Recover absolute allocation volume from the percentages.
            line_malloc = line.mem_activity_percent / 100.0 * profile.total_alloc_mb
            acc.malloc_mb += line_malloc
            acc.python_alloc_mb += line.mem_python_percent / 100.0 * line_malloc
            acc.mem_avg_weighted += line.mem_avg_mb * profile.mem_samples
            acc.mem_avg_weight += profile.mem_samples
            acc.mem_peak_mb = max(acc.mem_peak_mb, line.mem_peak_mb)
            acc.copy_mb += line.copy_mb_s * profile.elapsed
            acc.gpu_util_weighted += line.gpu_percent * profile.gpu_samples
            acc.gpu_weight += profile.gpu_samples
            acc.gpu_mem_peak_mb = max(acc.gpu_mem_peak_mb, line.gpu_mem_peak_mb)
            acc.crossings += line.crossings
            acc.crossing_overhead_s += line.crossing_overhead_s
            acc.crossing_native_s += line.crossing_native_s
            acc.bytes_to_native += line.bytes_to_native
            acc.bytes_to_python += line.bytes_to_python
            acc.lock_blocked_s += line.lock_blocked_s
            acc.lock_contentions += line.lock_contentions
            acc.lock_acquisitions += line.lock_acquisitions
            acc.timeline.extend((wall + offset, mb) for wall, mb in line.timeline)
        for fn in profile.functions:
            facc = functions.get((fn.filename, fn.function))
            if facc is None:
                facc = _FunctionAccumulator(filename=fn.filename, function=fn.function)
                functions[(fn.filename, fn.function)] = facc
            facc.python_s += seconds(fn.cpu_python_percent)
            facc.native_s += seconds(fn.cpu_native_percent)
            facc.system_s += seconds(fn.cpu_system_percent)
            facc.malloc_mb += fn.malloc_mb
            facc.copy_mb += fn.copy_mb
            facc.gpu_util_weighted += fn.gpu_percent * profile.gpu_samples
            facc.gpu_weight += profile.gpu_samples
        for leak in profile.leaks:
            key = (leak.filename, leak.lineno, leak.function)
            lacc = leaks.get(key)
            if lacc is None:
                lacc = _LeakAccumulator(*key)
                leaks[key] = lacc
            lacc.mallocs += leak.mallocs
            lacc.frees += leak.frees
            lacc.leaked_mb += leak.leak_rate_mb_s * profile.elapsed
        for lint in profile.lint_findings:
            identity = (
                lint.finding.detector,
                lint.finding.filename,
                lint.finding.lineno,
                lint.finding.message,
            )
            if identity not in seen_lints:
                seen_lints.add(identity)
                lint_findings.append(lint)
        for finding in profile.crossflow_findings:
            identity = (
                finding.detector,
                finding.filename,
                finding.lineno,
                finding.message,
            )
            if identity not in seen_crossflow:
                seen_crossflow.add(identity)
                crossflow_findings.append(finding)
        for edge in profile.lock_edges:
            key = (edge.waiter, edge.holder, edge.lock)
            eacc = edges.get(key)
            if eacc is None:
                eacc = LockEdge(waiter=edge.waiter, holder=edge.holder, lock=edge.lock)
                edges[key] = eacc
            eacc.blocked_s += edge.blocked_s
            eacc.count += edge.count
        for task in profile.tasks:
            tacc = tasks.get(task.name)
            if tacc is None:
                tacc = TaskReport(name=task.name)
                tasks[task.name] = tacc
            tacc.cpu_s += task.cpu_s
            tacc.wait_s += task.wait_s
            tacc.switches += task.switches
            tacc.awaiting = tacc.awaiting or task.awaiting
        for proc in profile.processes:
            pkey = (proc.pid, proc.parent_pid)
            pacc = processes.get(pkey)
            if pacc is None:
                pacc = ProcessReport(pid=proc.pid, parent_pid=proc.parent_pid)
                processes[pkey] = pacc
            pacc.elapsed_s += proc.elapsed_s
            pacc.cpu_s += proc.cpu_s
            pacc.peak_mb = max(pacc.peak_mb, proc.peak_mb)
        memory_timeline.extend(
            (wall + offset, mb) for wall, mb in profile.memory_timeline
        )
        offset += profile.elapsed

    pct = (
        (lambda s: 100.0 * s / merged_total_cpu)
        if merged_total_cpu > 0
        else (lambda s: 0.0)
    )
    line_reports = [
        LineReport(
            filename=acc.filename,
            lineno=acc.lineno,
            function=acc.function,
            source=acc.source,
            cpu_python_percent=pct(acc.python_s),
            cpu_native_percent=pct(acc.native_s),
            cpu_system_percent=pct(acc.system_s),
            mem_avg_mb=(
                acc.mem_avg_weighted / acc.mem_avg_weight if acc.mem_avg_weight else 0.0
            ),
            mem_peak_mb=acc.mem_peak_mb,
            mem_python_percent=(
                100.0 * acc.python_alloc_mb / acc.malloc_mb if acc.malloc_mb > 0 else 0.0
            ),
            mem_activity_percent=(
                100.0 * acc.malloc_mb / merged_alloc if merged_alloc > 0 else 0.0
            ),
            timeline=reduce_timeline(acc.timeline, timeline_points),
            copy_mb_s=acc.copy_mb / merged_elapsed if merged_elapsed > 0 else 0.0,
            gpu_percent=(
                acc.gpu_util_weighted / acc.gpu_weight if acc.gpu_weight else 0.0
            ),
            gpu_mem_peak_mb=acc.gpu_mem_peak_mb,
            crossings=acc.crossings,
            crossing_overhead_s=acc.crossing_overhead_s,
            crossing_native_s=acc.crossing_native_s,
            bytes_to_native=acc.bytes_to_native,
            bytes_to_python=acc.bytes_to_python,
            lock_blocked_s=acc.lock_blocked_s,
            lock_contentions=acc.lock_contentions,
            lock_acquisitions=acc.lock_acquisitions,
        )
        for acc in sorted(lines.values(), key=lambda a: (a.filename, a.lineno))
    ]
    function_reports = [
        FunctionReport(
            filename=facc.filename,
            function=facc.function,
            cpu_python_percent=pct(facc.python_s),
            cpu_native_percent=pct(facc.native_s),
            cpu_system_percent=pct(facc.system_s),
            malloc_mb=facc.malloc_mb,
            copy_mb=facc.copy_mb,
            gpu_percent=(
                facc.gpu_util_weighted / facc.gpu_weight if facc.gpu_weight else 0.0
            ),
        )
        for facc in functions.values()
    ]
    function_reports.sort(key=lambda r: r.cpu_total_percent, reverse=True)
    leak_reports = [
        LeakReport(
            filename=lacc.filename,
            lineno=lacc.lineno,
            function=lacc.function,
            likelihood=leak_likelihood(lacc.mallocs, lacc.frees),
            leak_rate_mb_s=(
                lacc.leaked_mb / merged_elapsed if merged_elapsed > 0 else 0.0
            ),
            mallocs=lacc.mallocs,
            frees=lacc.frees,
        )
        for lacc in leaks.values()
    ]
    leak_reports.sort(key=lambda r: r.leak_rate_mb_s, reverse=True)

    merged_faults: Dict[str, int] = {}
    for profile in profiles:
        for name, count in profile.fault_counters.items():
            merged_faults[name] = merged_faults.get(name, 0) + count

    return ProfileData(
        mode=profiles[0].mode,
        elapsed=merged_elapsed,
        cpu_python_time=merged_python,
        cpu_native_time=merged_native,
        cpu_system_time=merged_system,
        cpu_samples=sum(p.cpu_samples for p in profiles),
        mem_samples=sum(p.mem_samples for p in profiles),
        peak_footprint_mb=max(p.peak_footprint_mb for p in profiles),
        total_copy_mb=sum(p.total_copy_mb for p in profiles),
        gpu_mean_utilization=(
            gpu_util_weighted / merged_gpu_samples if merged_gpu_samples else 0.0
        ),
        gpu_mem_peak_mb=max(p.gpu_mem_peak_mb for p in profiles),
        lines=line_reports,
        functions=function_reports,
        memory_timeline=reduce_timeline(memory_timeline, timeline_points),
        leaks=leak_reports,
        sample_log_bytes=sum(p.sample_log_bytes for p in profiles),
        total_alloc_mb=merged_alloc,
        gpu_samples=merged_gpu_samples,
        lint_findings=lint_findings,
        degraded=any(p.degraded for p in profiles),
        fault_counters=merged_faults,
        total_crossings=sum(p.total_crossings for p in profiles),
        total_crossing_overhead_s=sum(
            p.total_crossing_overhead_s for p in profiles
        ),
        total_bytes_to_native=sum(p.total_bytes_to_native for p in profiles),
        total_bytes_to_python=sum(p.total_bytes_to_python for p in profiles),
        crossflow_findings=crossflow_findings,
        total_lock_blocked_s=sum(p.total_lock_blocked_s for p in profiles),
        total_lock_contentions=sum(p.total_lock_contentions for p in profiles),
        total_lock_acquisitions=sum(p.total_lock_acquisitions for p in profiles),
        lock_edges=sorted(edges.values(), key=lambda e: -e.blocked_s),
        tasks=sorted(tasks.values(), key=lambda t: t.name),
        processes=sorted(processes.values(), key=lambda p: p.pid),
        sketch=_merged_sketch(profiles),
    )


def _merged_sketch(profiles: Sequence[ProfileData]) -> Optional[Dict]:
    """The schema-v6 streaming aggregate a merged profile carries.

    Each constituent contributes its own sketch when it has one (a
    merged profile being re-merged) or a singleton sketch derived from
    its lines, so N-way merges compose associatively. Imported lazily —
    :mod:`repro.serve.streaming` depends on this module.
    """
    from repro.serve.streaming import merge_sketch_payloads, sketch_of_profile

    return merge_sketch_payloads(
        [p.sketch if p.sketch else sketch_of_profile(p).to_dict() for p in profiles]
    )
