"""The finished profile: Scalene's output data model (paper §5).

Built from :class:`~repro.core.stats.ScaleneStats` when profiling stops:
lines are filtered to the significant ones (≥1 % plus neighbours, ≤300),
memory timelines are reduced with RDP + downsampling to ≤100 points, and
the result renders as rich text (CLI) or JSON (the web UI payload).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import ScaleneConfig
from repro.core.filtering import significant_lines
from repro.core.leak_detector import LeakReport
from repro.core.rdp import reduce_timeline
from repro.core.stats import ScaleneStats


@dataclass
class LineReport:
    """One reported line (a row of the paper's Fig. 2 table)."""

    filename: str
    lineno: int
    function: str
    source: str
    cpu_python_percent: float
    cpu_native_percent: float
    cpu_system_percent: float
    mem_avg_mb: float
    mem_peak_mb: float
    mem_python_percent: float
    #: Share of the program's total allocation activity on this line
    #: (the "activity" column of the paper's Fig. 2), percent.
    mem_activity_percent: float
    timeline: List[Tuple[float, float]]
    copy_mb_s: float
    gpu_percent: float
    gpu_mem_peak_mb: float

    @property
    def cpu_total_percent(self) -> float:
        return (
            self.cpu_python_percent
            + self.cpu_native_percent
            + self.cpu_system_percent
        )


@dataclass
class FunctionReport:
    """Per-function aggregate (Scalene reports lines *and* functions)."""

    filename: str
    function: str
    cpu_python_percent: float
    cpu_native_percent: float
    cpu_system_percent: float
    malloc_mb: float
    copy_mb: float
    gpu_percent: float

    @property
    def cpu_total_percent(self) -> float:
        return (
            self.cpu_python_percent
            + self.cpu_native_percent
            + self.cpu_system_percent
        )


@dataclass
class ProfileData:
    """Everything Scalene reports for one run."""

    mode: str
    elapsed: float
    cpu_python_time: float
    cpu_native_time: float
    cpu_system_time: float
    cpu_samples: int
    mem_samples: int
    peak_footprint_mb: float
    total_copy_mb: float
    gpu_mean_utilization: float
    gpu_mem_peak_mb: float
    lines: List[LineReport] = field(default_factory=list)
    functions: List[FunctionReport] = field(default_factory=list)
    memory_timeline: List[Tuple[float, float]] = field(default_factory=list)
    leaks: List[LeakReport] = field(default_factory=list)
    sample_log_bytes: int = 0
    #: Triangulated static-analysis findings
    #: (:class:`repro.analysis.triangulate.TriangulatedFinding`), attached
    #: via :func:`repro.analysis.triangulate.attach_lint`; rendered by
    #: every output backend.
    lint_findings: List = field(default_factory=list)

    # -- rendering -------------------------------------------------------

    #: Valid sort keys for :meth:`render_text` (Fig. 2's sortable columns).
    SORT_KEYS = {
        "line": lambda l: (l.filename, l.lineno),
        "cpu": lambda l: -l.cpu_total_percent,
        "memory": lambda l: -l.mem_peak_mb,
        "copy": lambda l: -l.copy_mb_s,
        "gpu": lambda l: -l.gpu_percent,
    }

    def render_text(self, max_width: int = 100, sort_by: str = "line") -> str:
        """Rich-text-style CLI report.

        ``sort_by`` mirrors the web UI's sortable column headers:
        ``line`` (default), ``cpu``, ``memory``, ``copy``, or ``gpu``.
        """
        key = self.SORT_KEYS.get(sort_by)
        if key is None:
            raise ValueError(
                f"unknown sort_by {sort_by!r}; use one of {sorted(self.SORT_KEYS)}"
            )
        out: List[str] = []
        total = self.cpu_python_time + self.cpu_native_time + self.cpu_system_time
        out.append(f"Scalene profile [{self.mode}] — elapsed {self.elapsed:.2f}s "
                   f"(CPU samples: {self.cpu_samples}, memory samples: {self.mem_samples})")
        if total > 0:
            out.append(
                f"  time: {100 * self.cpu_python_time / total:.0f}% Python | "
                f"{100 * self.cpu_native_time / total:.0f}% native | "
                f"{100 * self.cpu_system_time / total:.0f}% system"
            )
        if self.mem_samples:
            out.append(f"  peak memory: {self.peak_footprint_mb:.1f} MB | "
                       f"copy volume: {self.total_copy_mb:.1f} MB")
        if self.gpu_mean_utilization > 0:
            out.append(f"  GPU: {100 * self.gpu_mean_utilization:.0f}% util | "
                       f"peak {self.gpu_mem_peak_mb:.1f} MB")
        header = (
            f"{'line':>5} {'py%':>5} {'nat%':>5} {'sys%':>5} "
            f"{'avgMB':>7} {'pkMB':>7} {'cp MB/s':>8} {'gpu%':>5}  source"
        )
        out.append(header)
        out.append("-" * min(len(header) + 20, max_width))
        for line in sorted(self.lines, key=key):
            src = line.source[: max_width - 60]
            out.append(
                f"{line.lineno:>5} {line.cpu_python_percent:>5.1f} "
                f"{line.cpu_native_percent:>5.1f} {line.cpu_system_percent:>5.1f} "
                f"{line.mem_avg_mb:>7.1f} {line.mem_peak_mb:>7.1f} "
                f"{line.copy_mb_s:>8.2f} {100 * line.gpu_percent:>5.1f}  {src}"
            )
        hot_functions = [f for f in self.functions if f.cpu_total_percent >= 1.0]
        if hot_functions:
            out.append("")
            out.append(f"{'function':<22} {'py%':>5} {'nat%':>5} {'sys%':>5} "
                       f"{'allocMB':>8} {'gpu%':>5}")
            for fn in hot_functions:
                out.append(
                    f"{fn.function:<22} {fn.cpu_python_percent:>5.1f} "
                    f"{fn.cpu_native_percent:>5.1f} {fn.cpu_system_percent:>5.1f} "
                    f"{fn.malloc_mb:>8.1f} {100 * fn.gpu_percent:>5.1f}"
                )
        if self.leaks:
            out.append("")
            out.append("Possible memory leaks (likelihood ≥ 95%):")
            for leak in self.leaks:
                out.append(f"  {leak}")
        if self.lint_findings:
            active = [t for t in self.lint_findings if not t.suppressed]
            suppressed = [t for t in self.lint_findings if t.suppressed]
            out.append("")
            out.append("Performance lints (static analysis × profile):")
            for rank, t in enumerate(active, start=1):
                out.append(
                    f"  #{rank} line {t.finding.lineno:>4} [{t.finding.detector}] "
                    f"{t.score:5.1f}% measured — {t.finding.message}"
                )
                out.append(f"       fix: {t.finding.suggestion}")
            if suppressed:
                out.append(
                    f"  ({len(suppressed)} finding(s) suppressed: "
                    f"lines below the significance threshold)"
                )
        return "\n".join(out)

    def to_dict(self) -> Dict:
        """JSON-ready payload (what the web UI consumes)."""
        return {
            "mode": self.mode,
            "elapsed_s": self.elapsed,
            "cpu": {
                "python_s": self.cpu_python_time,
                "native_s": self.cpu_native_time,
                "system_s": self.cpu_system_time,
                "samples": self.cpu_samples,
            },
            "memory": {
                "samples": self.mem_samples,
                "peak_mb": self.peak_footprint_mb,
                "timeline": self.memory_timeline,
                "sample_log_bytes": self.sample_log_bytes,
            },
            "copy_volume_mb": self.total_copy_mb,
            "gpu": {
                "mean_utilization": self.gpu_mean_utilization,
                "peak_mb": self.gpu_mem_peak_mb,
            },
            "lint": [t.to_dict() for t in self.lint_findings],
            "leaks": [
                {
                    "filename": leak.filename,
                    "lineno": leak.lineno,
                    "function": leak.function,
                    "likelihood": leak.likelihood,
                    "leak_rate_mb_s": leak.leak_rate_mb_s,
                }
                for leak in self.leaks
            ],
            "functions": [
                {
                    "filename": fn.filename,
                    "function": fn.function,
                    "cpu_python_percent": fn.cpu_python_percent,
                    "cpu_native_percent": fn.cpu_native_percent,
                    "cpu_system_percent": fn.cpu_system_percent,
                    "malloc_mb": fn.malloc_mb,
                    "copy_mb": fn.copy_mb,
                    "gpu_percent": fn.gpu_percent,
                }
                for fn in self.functions
            ],
            "lines": [
                {
                    "filename": line.filename,
                    "lineno": line.lineno,
                    "function": line.function,
                    "source": line.source,
                    "cpu_python_percent": line.cpu_python_percent,
                    "cpu_native_percent": line.cpu_native_percent,
                    "cpu_system_percent": line.cpu_system_percent,
                    "mem_avg_mb": line.mem_avg_mb,
                    "mem_peak_mb": line.mem_peak_mb,
                    "mem_python_percent": line.mem_python_percent,
                    "mem_activity_percent": line.mem_activity_percent,
                    "timeline": line.timeline,
                    "copy_mb_s": line.copy_mb_s,
                    "gpu_percent": line.gpu_percent,
                    "gpu_mem_peak_mb": line.gpu_mem_peak_mb,
                }
                for line in self.lines
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    # -- lookups used by tests and benchmarks -----------------------------------

    def line(self, lineno: int, filename: Optional[str] = None) -> Optional[LineReport]:
        for entry in self.lines:
            if entry.lineno == lineno and (filename is None or entry.filename == filename):
                return entry
        return None

    def function(self, name: str) -> Optional[FunctionReport]:
        for entry in self.functions:
            if entry.function == name:
                return entry
        return None


def build_profile(
    stats: ScaleneStats,
    config: ScaleneConfig,
    *,
    source_lines: Dict[str, List[str]],
    leaks: List[LeakReport],
    sample_log_bytes: int = 0,
) -> ProfileData:
    """Assemble the final :class:`ProfileData` from raw statistics."""
    elapsed = stats.elapsed
    total_cpu = stats.total_cpu_time
    keys = significant_lines(
        stats.lines,
        total_cpu,
        stats.total_alloc_mb,
        min_percent=config.report_min_percent,
        max_lines=config.report_max_lines,
    )
    line_reports: List[LineReport] = []
    for filename, lineno in keys:
        stats_line = stats.lines.get((filename, lineno))
        lines_of_file = source_lines.get(filename, [])
        source = (
            lines_of_file[lineno - 1] if 1 <= lineno <= len(lines_of_file) else ""
        )
        if stats_line is None:
            # A context neighbour with no samples of its own.
            line_reports.append(
                LineReport(
                    filename=filename,
                    lineno=lineno,
                    function="",
                    source=source,
                    cpu_python_percent=0.0,
                    cpu_native_percent=0.0,
                    cpu_system_percent=0.0,
                    mem_avg_mb=0.0,
                    mem_peak_mb=0.0,
                    mem_python_percent=0.0,
                    mem_activity_percent=0.0,
                    timeline=[],
                    copy_mb_s=0.0,
                    gpu_percent=0.0,
                    gpu_mem_peak_mb=0.0,
                )
            )
            continue
        share = (lambda t: 100.0 * t / total_cpu if total_cpu > 0 else 0.0)
        mem_python_percent = (
            100.0 * stats_line.python_alloc_mb / stats_line.malloc_mb
            if stats_line.malloc_mb > 0
            else 0.0
        )
        line_reports.append(
            LineReport(
                filename=filename,
                lineno=lineno,
                function=stats_line.function,
                source=source,
                cpu_python_percent=share(stats_line.python_time),
                cpu_native_percent=share(stats_line.native_time),
                cpu_system_percent=share(stats_line.system_time),
                mem_avg_mb=stats_line.avg_footprint_mb,
                mem_peak_mb=stats_line.peak_footprint_mb,
                mem_python_percent=mem_python_percent,
                mem_activity_percent=(
                    100.0 * stats_line.malloc_mb / stats.total_alloc_mb
                    if stats.total_alloc_mb > 0
                    else 0.0
                ),
                timeline=reduce_timeline(stats_line.timeline, config.timeline_points),
                copy_mb_s=stats_line.copy_mb / elapsed if elapsed > 0 else 0.0,
                gpu_percent=stats_line.gpu_utilization,
                gpu_mem_peak_mb=stats_line.gpu_mem_peak_mb,
            )
        )
    gpu_mean = (
        stats.gpu_util_sum / stats.gpu_sample_count if stats.gpu_sample_count else 0.0
    )
    function_reports = _aggregate_functions(stats, total_cpu, elapsed)
    return ProfileData(
        mode=config.mode,
        elapsed=elapsed,
        cpu_python_time=stats.total_python_time,
        cpu_native_time=stats.total_native_time,
        cpu_system_time=stats.total_system_time,
        cpu_samples=stats.cpu_sample_count,
        mem_samples=stats.mem_sample_count,
        peak_footprint_mb=stats.peak_footprint_mb,
        total_copy_mb=stats.total_copy_mb,
        gpu_mean_utilization=gpu_mean,
        gpu_mem_peak_mb=stats.gpu_mem_peak_mb,
        lines=line_reports,
        functions=function_reports,
        memory_timeline=reduce_timeline(stats.memory_timeline, config.timeline_points),
        leaks=leaks,
        sample_log_bytes=sample_log_bytes,
    )


def _aggregate_functions(
    stats: ScaleneStats, total_cpu: float, elapsed: float
) -> List[FunctionReport]:
    """Aggregate per-line counters into per-function rows."""
    grouped: Dict[Tuple[str, str], List] = {}
    for stats_line in stats.lines.values():
        if not stats_line.function:
            continue
        grouped.setdefault((stats_line.filename, stats_line.function), []).append(
            stats_line
        )
    share = (lambda t: 100.0 * t / total_cpu if total_cpu > 0 else 0.0)
    reports = []
    for (filename, function), group in sorted(grouped.items()):
        gpu_samples = sum(line.gpu_samples for line in group)
        gpu_util = (
            sum(line.gpu_util_sum for line in group) / gpu_samples
            if gpu_samples
            else 0.0
        )
        reports.append(
            FunctionReport(
                filename=filename,
                function=function,
                cpu_python_percent=share(sum(l.python_time for l in group)),
                cpu_native_percent=share(sum(l.native_time for l in group)),
                cpu_system_percent=share(sum(l.system_time for l in group)),
                malloc_mb=sum(l.malloc_mb for l in group),
                copy_mb=sum(l.copy_mb for l in group),
                gpu_percent=gpu_util,
            )
        )
    reports.sort(key=lambda r: r.cpu_total_percent, reverse=True)
    return reports
