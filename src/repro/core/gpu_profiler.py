"""GPU profiling (paper §4).

Piggybacks on the CPU sampler: at every CPU sample the profiler reads the
device's current utilization and memory through the NVML-style query and
attributes them to the currently executing line. When the device supports
per-PID accounting, Scalene enables it at startup (on real hardware this
requires one privileged invocation; the simulation just flips the mode).
"""

from __future__ import annotations

from repro.core.attribution import thread_location
from repro.core.config import ScaleneConfig
from repro.core.stats import ScaleneStats


class GpuProfiler:
    """Samples GPU utilization/memory alongside CPU samples."""

    def __init__(self, process, config: ScaleneConfig, stats: ScaleneStats) -> None:
        self._process = process
        self._config = config
        self._stats = stats
        self.samples = 0

    def start(self) -> None:
        device = self._process.gpu
        if self._config.enable_gpu_per_pid_accounting and not device.per_pid_accounting:
            # "SCALENE offers to enable it" (§4); the simulation accepts.
            device.enable_per_pid_accounting()

    def stop(self) -> None:
        # Bound device-side kernel history (the profiler read it already).
        self._process.gpu.prune(before=self._process.clock.wall - 5.0)

    def sample(self) -> None:
        """Take one GPU sample (called from the CPU signal handler)."""
        process = self._process
        op_cost = process.vm.config.op_cost
        process.charge_overhead(
            process.main_thread, self._config.gpu_query_cost_ops * op_cost
        )
        utilization, memory = process.nvml.snapshot(process.clock.wall, process.pid)
        location = thread_location(process.main_thread, process.profiled_filenames)
        self._stats.record_gpu(location, utilization, memory)
        self.samples += 1
