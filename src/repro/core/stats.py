"""Per-line statistics accumulated while Scalene runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.units import MiB

LineKey = Tuple[str, int]  # (filename, lineno)


@dataclass
class LineStats:
    """Counters for one line of profiled source (paper Fig. 2 columns)."""

    filename: str = ""
    lineno: int = 0
    function: str = ""

    # CPU (§2): seconds attributed by the signal-delay algorithm.
    python_time: float = 0.0
    native_time: float = 0.0
    system_time: float = 0.0
    cpu_samples: int = 0

    # Memory (§3): megabytes attributed by threshold sampling.
    malloc_mb: float = 0.0
    free_mb: float = 0.0
    python_alloc_mb: float = 0.0  # the python-domain share of malloc_mb
    mem_samples: int = 0
    #: Footprint observed at samples attributed to this line.
    footprint_sum_mb: float = 0.0
    peak_footprint_mb: float = 0.0
    #: Per-line memory timeline (wall seconds, footprint MB).
    timeline: List[Tuple[float, float]] = field(default_factory=list)

    # Copy volume (§3.5).
    copy_mb: float = 0.0

    # GPU (§4).
    gpu_util_sum: float = 0.0
    gpu_samples: int = 0
    gpu_mem_peak_mb: float = 0.0

    # -- derived ---------------------------------------------------------

    @property
    def total_cpu_time(self) -> float:
        return self.python_time + self.native_time + self.system_time

    @property
    def avg_footprint_mb(self) -> float:
        if not self.mem_samples:
            return 0.0
        return self.footprint_sum_mb / self.mem_samples

    @property
    def net_mb(self) -> float:
        return self.malloc_mb - self.free_mb

    @property
    def gpu_utilization(self) -> float:
        """Mean utilization over samples landing on this line (0..1)."""
        if not self.gpu_samples:
            return 0.0
        return self.gpu_util_sum / self.gpu_samples


class ScaleneStats:
    """All statistics for one profiling session."""

    def __init__(self) -> None:
        self.lines: Dict[LineKey, LineStats] = {}
        self.start_wall = 0.0
        self.start_cpu = 0.0
        self.stop_wall = 0.0
        self.stop_cpu = 0.0
        self.total_python_time = 0.0
        self.total_native_time = 0.0
        self.total_system_time = 0.0
        self.cpu_sample_count = 0
        self.mem_sample_count = 0
        #: Whole-program memory timeline (wall seconds, footprint MB).
        self.memory_timeline: List[Tuple[float, float]] = []
        self.peak_footprint_mb = 0.0
        self.current_footprint_mb = 0.0
        self.total_copy_mb = 0.0
        self.total_alloc_mb = 0.0
        self.gpu_util_sum = 0.0
        self.gpu_sample_count = 0
        self.gpu_mem_peak_mb = 0.0

    # -- accessors -------------------------------------------------------

    def line(self, filename: str, lineno: int, function: str = "") -> LineStats:
        key = (filename, lineno)
        stats = self.lines.get(key)
        if stats is None:
            stats = LineStats(filename=filename, lineno=lineno, function=function)
            self.lines[key] = stats
        elif function and not stats.function:
            stats.function = function
        return stats

    @property
    def elapsed(self) -> float:
        return max(self.stop_wall - self.start_wall, 0.0)

    @property
    def total_cpu_time(self) -> float:
        return self.total_python_time + self.total_native_time + self.total_system_time

    # -- recording helpers -------------------------------------------------------

    def record_cpu(
        self,
        location: Optional[Tuple[str, int, str]],
        python: float,
        native: float,
        system: float,
    ) -> None:
        self.total_python_time += python
        self.total_native_time += native
        self.total_system_time += system
        if location is None:
            return
        filename, lineno, function = location
        stats = self.line(filename, lineno, function)
        stats.python_time += python
        stats.native_time += native
        stats.system_time += system
        stats.cpu_samples += 1

    def record_memory_sample(
        self,
        location: Optional[Tuple[str, int, str]],
        delta_bytes: int,
        python_fraction: float,
        footprint_bytes: int,
        wall: float,
    ) -> None:
        self.mem_sample_count += 1
        footprint_mb = footprint_bytes / MiB
        self.current_footprint_mb = footprint_mb
        if footprint_mb > self.peak_footprint_mb:
            self.peak_footprint_mb = footprint_mb
        self.memory_timeline.append((wall, footprint_mb))
        delta_mb = delta_bytes / MiB
        if delta_mb > 0:
            self.total_alloc_mb += delta_mb
        if location is None:
            return
        filename, lineno, function = location
        stats = self.line(filename, lineno, function)
        stats.mem_samples += 1
        stats.footprint_sum_mb += footprint_mb
        if footprint_mb > stats.peak_footprint_mb:
            stats.peak_footprint_mb = footprint_mb
        stats.timeline.append((wall, footprint_mb))
        if delta_mb > 0:
            stats.malloc_mb += delta_mb
            stats.python_alloc_mb += delta_mb * python_fraction
        else:
            stats.free_mb += -delta_mb

    def record_copy(self, location: Optional[Tuple[str, int, str]], nbytes: int) -> None:
        mb = nbytes / MiB
        self.total_copy_mb += mb
        if location is None:
            return
        filename, lineno, function = location
        self.line(filename, lineno, function).copy_mb += mb

    def record_gpu(
        self,
        location: Optional[Tuple[str, int, str]],
        utilization: float,
        memory_bytes: int,
    ) -> None:
        self.gpu_sample_count += 1
        self.gpu_util_sum += utilization
        mem_mb = memory_bytes / MiB
        if mem_mb > self.gpu_mem_peak_mb:
            self.gpu_mem_peak_mb = mem_mb
        if location is None:
            return
        filename, lineno, function = location
        stats = self.line(filename, lineno, function)
        stats.gpu_util_sum += utilization
        stats.gpu_samples += 1
        if mem_mb > stats.gpu_mem_peak_mb:
            stats.gpu_mem_peak_mb = mem_mb
