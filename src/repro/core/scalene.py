"""The Scalene orchestrator: wires all the profiling components together.

Usage::

    process = SimProcess(source, filename="app.py")
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()

or, equivalently, ``profile = Scalene.run(process, mode="full")``.

Modes mirror the paper's evaluation rows: ``cpu`` (CPU only),
``cpu+gpu`` (adds GPU sampling), and ``full`` (adds memory, leak and
copy-volume profiling).

Trace-JIT observation-point contract
------------------------------------

The VM's trace-JIT tier (``repro.interp.jit``) is required to be
invisible to every observer this class installs; profiles are
tier-invariant by construction, not by sampling luck. The contract has
three legs, enforced at the VM's trace-entry guard and inside generated
trace code:

1. **Signals.** A trace is only entered when the entry guard proves the
   whole pass fits before the next CPU *and* wall deadline
   (``margin_ops`` — see :class:`repro.interp.jit.CompiledTrace`), so a
   pending profiling signal is always delivered by the interpreter tier
   at the exact instruction boundary it would have fired on untraced.
2. **Memory hooks.** While :meth:`start` has allocation hooks installed
   (``hooks._current`` is not the default), traces take the *loud* path:
   every allocation site inside a trace performs the same
   writeback/reload safepoint the interpreter does, so hooks observe
   identical frame/line state — and the reloaded check keeps the
   ``margin_ops`` slack, exiting the trace whenever hook overhead leaves
   too little room for the rest of the region, so a deadline crossed by
   hook-charged time is still delivered at the interpreter's exact op
   boundary. The *quiet* fast path is used only when no profiler and no
   fault plane is attached.
3. **Tracing and fault injection.** An active line-trace callback or a
   scheduled fault disables trace entry entirely; those runs execute on
   the interpreter tier with per-op observation points.

Guard failures inside a trace deoptimize: state is written back and the
interpreter re-executes the faulting op, so attribution lands on the
same line either way. :meth:`Scalene.jit_stats` exposes the tier
counters for asserting this contract in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import MODE_FULL, ScaleneConfig
from repro.core.copy_volume import CopyVolumeProfiler
from repro.core.cpu_profiler import CpuProfiler
from repro.core.gpu_profiler import GpuProfiler
from repro.core.leak_detector import LeakDetector
from repro.core.memory_profiler import MemoryProfiler
from repro.core.profile_data import (
    LockEdge,
    ProcessReport,
    ProfileData,
    TaskReport,
    build_profile,
    merge_profiles,
)
from repro.core.stats import ScaleneStats
from repro.core.thread_attrib import ThreadPatches, ThreadStatusTable
from repro.errors import ProfilerError


class Scalene:
    """The profiler: attach to a :class:`~repro.runtime.process.SimProcess`."""

    def __init__(
        self,
        process,
        config: Optional[ScaleneConfig] = None,
        *,
        mode: Optional[str] = None,
        stats: Optional[ScaleneStats] = None,
        stitch_children: bool = False,
    ) -> None:
        if config is not None and mode is not None and config.mode != mode:
            raise ProfilerError("pass either a config or a mode, not conflicting both")
        if config is None:
            config = ScaleneConfig(mode=mode or MODE_FULL)
        self.process = process
        self.config = config
        # Child-profile stitching (the alternative to shared stats): each
        # forked child gets its OWN stats and profile, and ``stop()``
        # merges parent + children via the exact ``merge_profiles``
        # semantics — counters of the merged profile equal the sum of the
        # per-process profiles.
        self.stitch_children = stitch_children
        self._child_sessions: List["Scalene"] = []
        # ``stats`` may be shared: child-process profilers merge their
        # attribution into the parent's statistics (multiprocessing).
        self._owns_stats = stats is None
        self.stats = stats if stats is not None else ScaleneStats()
        self.status = ThreadStatusTable()
        self.patches = ThreadPatches(process, self.status)
        self.leak_detector = LeakDetector(config) if config.profiles_memory else None
        self.memory_profiler = (
            MemoryProfiler(process, config, self.stats, self.leak_detector)
            if config.profiles_memory
            else None
        )
        self.copy_profiler = (
            CopyVolumeProfiler(process, config, self.stats)
            if config.profiles_memory
            else None
        )
        self.gpu_profiler = (
            GpuProfiler(process, config, self.stats) if config.profiles_gpu else None
        )
        on_sample = self.gpu_profiler.sample if self.gpu_profiler else None
        self.cpu_profiler = CpuProfiler(
            process, config, self.stats, self.status, on_sample=on_sample
        )
        self._started = False
        self._detached = False
        self._stopped = False
        self.paused = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Install all hooks; call before ``process.run()``."""
        if self._started:
            raise ProfilerError("Scalene already started")
        self._started = True
        process = self.process
        if self._owns_stats:
            self.stats.start_wall = process.clock.wall
            self.stats.start_cpu = process.clock.cpu
        self.patches.install()
        if self.memory_profiler is not None:
            self.memory_profiler.install()
        if self.copy_profiler is not None:
            self.copy_profiler.install()
        if self.gpu_profiler is not None:
            self.gpu_profiler.start()
        self.cpu_profiler.start()
        # Detach before interpreter teardown, like the real Scalene's
        # atexit handling — exit-time frees of module globals are not part
        # of the profiled program's behaviour.
        process.atexit_hooks.append(self._detach)
        # Multiprocessing support (Figure 1): profile forked children too,
        # merging their per-line attribution into this session's stats.
        process.child_observers.append(self._profile_child)
        # Region profiling: the profiled program may toggle sampling with
        # the profile_start()/profile_stop() builtins.
        process.profiler_control = self
        if self.config.start_paused:
            self.pause()

    # -- region profiling (the scalene_profiler.start()/stop() API) --------

    def pause(self) -> None:
        """Suspend sampling; hooks stay installed (cheap, consistent)."""
        if self.paused or not self._started or self._detached:
            return
        self.paused = True
        self.cpu_profiler.pause()
        if self.memory_profiler is not None:
            self.memory_profiler.pause()
        if self.copy_profiler is not None:
            self.copy_profiler.paused = True

    def resume(self) -> None:
        """Resume sampling after :meth:`pause`."""
        if not self.paused or self._detached:
            return
        self.paused = False
        self.cpu_profiler.resume()
        if self.memory_profiler is not None:
            self.memory_profiler.resume()
        if self.copy_profiler is not None:
            self.copy_profiler.paused = False

    def _profile_child(self, child) -> None:
        if self.stitch_children:
            # Stitching mode: the child profiles into its own stats; its
            # finished profile is merged into ours at stop().
            child_scalene = Scalene(
                child, config=self.config, stitch_children=True
            )
            child_scalene.start()
            self._child_sessions.append(child_scalene)
            return
        child_scalene = Scalene(child, config=self.config, stats=self.stats)
        child_scalene.start()
        # The child's atexit hook detaches its profiler; the shared stats
        # already carry its attribution, so no explicit stop() is needed.

    def _detach(self) -> None:
        """Remove all hooks (idempotent)."""
        if self._detached:
            return
        self._detached = True
        process = self.process
        self.cpu_profiler.stop()
        if self.gpu_profiler is not None:
            self.gpu_profiler.stop()
        if self.copy_profiler is not None:
            self.copy_profiler.uninstall()
        if self.memory_profiler is not None:
            self.memory_profiler.uninstall()
        self.patches.uninstall()
        if getattr(process, "profiler_control", None) is self:
            process.profiler_control = None
        if self._owns_stats:
            self.stats.stop_wall = process.clock.wall
            self.stats.stop_cpu = process.clock.cpu

    def stop(self) -> ProfileData:
        """Remove any remaining hooks and build the final profile."""
        if not self._started:
            raise ProfilerError("Scalene was never started")
        if self._stopped:
            raise ProfilerError("Scalene already stopped")
        self._stopped = True
        self._detach()

        leaks = []
        if self.leak_detector is not None:
            self.leak_detector.finalize()
            leaks = self.leak_detector.report(
                self.stats.memory_timeline, self.stats.elapsed
            )
        profile = build_profile(
            self.stats,
            self.config,
            source_lines=self._source_lines(),
            leaks=leaks,
            sample_log_bytes=self.sample_log_bytes,
        )
        self._attach_crossings(profile)
        self._attach_locks(profile)
        self._attach_tasks(profile)
        self._attach_processes(profile)
        # Degraded-mode accounting: if a fault injector was threaded
        # through the runtime, the profile says so (and how), and its
        # bounded invariants are clamped rather than trusted.
        faults = getattr(self.process, "faults", None)
        if faults is not None:
            from repro.faults import apply_fault_counters

            apply_fault_counters(profile, faults)
        if self._child_sessions:
            # Stitch: the merged profile's counters exactly equal the sum
            # of the per-process profiles (merge_profiles semantics).
            profile = merge_profiles(
                [profile] + [child.stop() for child in self._child_sessions]
            )
        return profile

    # -- helpers -------------------------------------------------------

    def _attach_crossings(self, profile: ProfileData) -> None:
        """Fold the runtime's exact crossing counters into the profile.

        Unlike the sampled columns, crossings come straight from the
        CrossingRecorder (exact counts); only lines that survived the
        significance filter carry per-line counters, but the totals cover
        the whole run.
        """
        recorder = getattr(self.process, "crossings", None)
        if recorder is None:
            return
        profile.total_crossings = recorder.total_crossings
        profile.total_crossing_overhead_s = recorder.total_overhead_s
        profile.total_bytes_to_native = recorder.total_bytes_to_native
        profile.total_bytes_to_python = recorder.total_bytes_to_python
        for line in profile.lines:
            counters = recorder.lines.get((line.filename, line.lineno))
            if counters is None:
                continue
            line.crossings = counters.crossings
            line.crossing_overhead_s = counters.overhead_s
            line.crossing_native_s = counters.native_s
            line.bytes_to_native = counters.bytes_to_native
            line.bytes_to_python = counters.bytes_to_python

    def _attach_locks(self, profile: ProfileData) -> None:
        """Fold the runtime's exact lock-contention counters in.

        Blocked time is attributed to the *acquiring* line (where the
        thread stalled); the edge list names who blocked whom on which
        lock. Like crossings: totals are whole-run, per-line counters
        only land on lines that survived the significance filter.
        """
        recorder = getattr(self.process, "lock_contention", None)
        if recorder is None:
            return
        profile.total_lock_blocked_s = recorder.total_blocked_s
        profile.total_lock_contentions = recorder.total_contentions
        profile.total_lock_acquisitions = recorder.total_acquisitions
        for line in profile.lines:
            stats = recorder.lines.get((line.filename, line.lineno))
            if stats is None:
                continue
            line.lock_blocked_s = stats.blocked_s
            line.lock_contentions = stats.contentions
            line.lock_acquisitions = stats.acquisitions
        profile.lock_edges = [
            LockEdge(
                waiter=waiter,
                holder=holder,
                lock=lock,
                blocked_s=entry.blocked_s,
                count=entry.count,
            )
            for (waiter, holder, lock), entry in sorted(
                recorder.edges.items(), key=lambda kv: -kv[1].blocked_s
            )
        ]

    def _attach_tasks(self, profile: ProfileData) -> None:
        """Fold per-task event-loop accounting in (exact counters)."""
        runtime = getattr(self.process, "async_runtime", None)
        if runtime is None:
            return
        records = runtime.task_records()
        if not records:
            return
        profile.tasks = [
            TaskReport(
                name=record.name,
                cpu_s=record.cpu_s,
                wait_s=record.wait_s,
                switches=record.switches,
                awaiting=(
                    f"{record.await_location[0]}:{record.await_location[1]}"
                    if record.await_location is not None
                    else ""
                ),
            )
            for record in records
        ]

    def _attach_processes(self, profile: ProfileData) -> None:
        """Record process lineage for fork/spawn runs.

        In the default shared-stats mode this session's profile covers
        the whole subtree, so the full lineage is listed here. In
        stitching mode every session reports only its own process — the
        merge assembles the tree with each pid appearing exactly once.
        """
        process = self.process
        if not process.children and process.parent_pid is None:
            return
        tree = [process] if self.stitch_children else process.process_tree()
        profile.processes = [
            ProcessReport(
                pid=proc.pid,
                parent_pid=proc.parent_pid,
                elapsed_s=proc.clock.wall,
                cpu_s=proc.clock.cpu,
                peak_mb=proc.mem.peak_footprint / (1024 * 1024),
            )
            for proc in tree
        ]

    @property
    def sample_log_bytes(self) -> int:
        """Total bytes written to the sampling files (§6.5 log growth)."""
        total = 0
        if self.memory_profiler is not None:
            total += self.memory_profiler.samplefile.size_bytes
        if self.copy_profiler is not None:
            total += self.copy_profiler.samplefile.size_bytes
        return total

    def jit_stats(self) -> Dict[str, int]:
        """Trace-JIT tier counters summed over the profiled program's code.

        Part of the observation-point contract surface (see the module
        docstring): profiles must be identical whatever these counters
        say, and runs with a fault plane attached must report zero
        ``enters``. Keys: ``hot_sites``, ``compiled``, ``failed``,
        ``enters``, ``deopts``.
        """
        from repro.interp.disassembler import iter_code_objects
        from repro.interp.jit import jit_stats

        totals = {"hot_sites": 0, "compiled": 0, "failed": 0, "enters": 0, "deopts": 0}
        for code_object in iter_code_objects(self.process.code):
            for key, value in jit_stats(code_object).items():
                totals[key] += value
        return totals

    def _source_lines(self) -> Dict[str, List[str]]:
        source = self.process.source or ""
        return {self.process.filename: source.splitlines()}

    @classmethod
    def run(
        cls,
        process,
        mode: str = MODE_FULL,
        config: Optional[ScaleneConfig] = None,
        *,
        stitch_children: bool = False,
    ) -> ProfileData:
        """Convenience: attach, run the process, and return the profile."""
        scalene = cls(
            process,
            config=config,
            mode=None if config else mode,
            stitch_children=stitch_children,
        )
        scalene.start()
        process.run()
        return scalene.stop()
