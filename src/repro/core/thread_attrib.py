"""Subthread attribution support (paper §2.2).

Two cooperating pieces:

* :class:`ThreadStatusTable` — Scalene's per-thread *executing/sleeping*
  flags, updated by the monkey-patched blocking calls.
* :class:`ThreadPatches` — the monkey patches themselves: ``join`` and
  ``lock.acquire`` are replaced with versions that block in slices of the
  interpreter switch interval (``sys.getswitchinterval()``), so the main
  thread keeps re-entering the interpreter loop and signals keep flowing.

Classification of a subthread as running Python vs. native code uses the
call-opcode map built at startup by bytecode disassembly: a thread whose
current instruction index parks on a CALL/CALL_METHOD opcode is — with
high likelihood — inside a long native call.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.interp.objects import BlockRequest

EXECUTING = "executing"
SLEEPING = "sleeping"


class ThreadStatusTable:
    """Scalene's own view of which threads are currently executing."""

    def __init__(self) -> None:
        self._status: Dict[int, str] = {}

    def set_executing(self, thread) -> None:
        self._status[thread.ident] = EXECUTING

    def set_sleeping(self, thread) -> None:
        self._status[thread.ident] = SLEEPING

    def is_executing(self, thread) -> bool:
        """Threads default to executing until a patched call marks them."""
        return self._status.get(thread.ident, EXECUTING) == EXECUTING


def is_in_native_call(thread, call_opcode_map: Dict[int, frozenset]) -> bool:
    """The §2.2 heuristic: is the thread parked on a call opcode?"""
    frame = thread.frame
    if frame is None:
        return False
    indices = call_opcode_map.get(id(frame.code))
    if not indices:
        return False
    return frame.lasti in indices


class ThreadPatches:
    """Monkey patches for blocking threading calls (install/uninstall)."""

    def __init__(self, process, status: ThreadStatusTable) -> None:
        self._process = process
        self._status = status
        self._original_join = None
        self._original_acquire = None
        self._original_task_block = None
        self._original_loop_wait = None
        self.installed = False

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> None:
        if self.installed:
            return
        threading = self._process.threading
        self._original_join = threading.join_impl
        self._original_acquire = threading.acquire_impl
        threading.join_impl = self._patched_join
        threading.acquire_impl = self._patched_acquire
        runtime = getattr(self._process, "async_runtime", None)
        if runtime is not None:
            self._original_task_block = runtime.task_block_impl
            self._original_loop_wait = runtime.loop_wait_impl
            runtime.task_block_impl = self._patched_task_block
            runtime.loop_wait_impl = self._patched_task_block
        self.installed = True

    def uninstall(self) -> None:
        if not self.installed:
            return
        threading = self._process.threading
        threading.join_impl = self._original_join
        threading.acquire_impl = self._original_acquire
        runtime = getattr(self._process, "async_runtime", None)
        if runtime is not None and self._original_task_block is not None:
            runtime.task_block_impl = self._original_task_block
            runtime.loop_wait_impl = self._original_loop_wait
        self.installed = False

    # -- the patched implementations ----------------------------------------------

    def _patched_join(self, ctx, target, timeout: Optional[float] = None):
        """Join in switch-interval slices so signals keep being delivered."""
        process = self._process
        status = self._status
        thread = ctx.thread
        interval = process.getswitchinterval()
        deadline = None if timeout is None else process.clock.wall + timeout

        if target.state == "finished":
            return None
        status.set_sleeping(thread)

        def on_wake():
            done = target.state == "finished"
            timed_out = deadline is not None and process.clock.wall >= deadline
            if done or timed_out:
                status.set_executing(thread)
                return None
            return BlockRequest(
                deadline=process.clock.wall + interval,
                wake_check=lambda: target.state == "finished",
                on_wake=on_wake,
                interruptible=False,
            )

        return BlockRequest(
            deadline=process.clock.wall + interval,
            wake_check=lambda: target.state == "finished",
            on_wake=on_wake,
            interruptible=False,
        )

    def _patched_acquire(self, ctx, lock, timeout: Optional[float] = None):
        """Acquire in switch-interval slices (same rationale as join)."""
        process = self._process
        status = self._status
        thread = ctx.thread
        interval = process.getswitchinterval()
        deadline = None if timeout is None else process.clock.wall + timeout

        if lock.try_acquire(thread):
            return None
        status.set_sleeping(thread)

        def on_wake():
            if lock.try_acquire(thread):
                status.set_executing(thread)
                return None
            if deadline is not None and process.clock.wall >= deadline:
                lock.give_up(thread)
                status.set_executing(thread)
                return None
            return BlockRequest(
                deadline=process.clock.wall + interval,
                wake_check=lambda: not lock.locked,
                on_wake=on_wake,
                interruptible=False,
            )

        return BlockRequest(
            deadline=process.clock.wall + interval,
            wake_check=lambda: not lock.locked,
            on_wake=on_wake,
            interruptible=False,
        )

    def _patched_task_block(self, ctx, request: BlockRequest) -> BlockRequest:
        """Mark an awaiting task *sleeping* until its final wake.

        The ``replacement_asyncio`` analog: without it, a task parked on
        an await looks executing to the sampler and soaks up CPU share it
        never spent. Re-blocks (an ``on_wake`` returning another request)
        keep the task sleeping; only the wake that actually resumes it
        flips the status back.
        """
        status = self._status
        thread = ctx.thread
        status.set_sleeping(thread)

        def wrap(on_wake):
            def wrapped():
                result = on_wake() if on_wake is not None else None
                if isinstance(result, BlockRequest):
                    result.on_wake = wrap(result.on_wake)
                    return result
                status.set_executing(thread)
                return result

            return wrapped

        request.on_wake = wrap(request.on_wake)
        return request
