"""Version of the Scalene reproduction package."""

__version__ = "1.0.0"
