"""Self-contained HTML profile output (paper §5).

The real Scalene ships a JavaScript/Vega-Lite UI; "to avoid CORS issues,
SCALENE produces a single HTML payload that includes the actual JSON-based
profile", which also makes profiles trivial to upload, share, or archive.
This backend reproduces that design: one HTML file, the profile JSON
embedded in a ``<script type="application/json">`` block, and a small
dependency-free renderer that draws the per-line table and a memory
timeline as inline SVG.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import List, Tuple, Union

from repro.core.profile_data import ProfileData

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Scalene profile — {title}</title>
<style>
  body {{ font-family: -apple-system, "Segoe UI", sans-serif; margin: 2rem; }}
  h1 {{ font-size: 1.2rem; }}
  table {{ border-collapse: collapse; font-size: 0.85rem; }}
  th, td {{ padding: 2px 8px; text-align: right; }}
  td.src {{ text-align: left; font-family: monospace; white-space: pre; }}
  .bar {{ display: inline-block; height: 10px; }}
  .py  {{ background: #4878cf; }}
  .nat {{ background: #9ecae9; }}
  .sys {{ background: #c9d6e8; }}
  .mem {{ background: #6acc65; }}
  .cp  {{ background: #e8c24a; }}
  .gpu {{ background: #d65f5f; }}
  .leak {{ color: #b30000; font-weight: bold; }}
  .lint {{ margin: 4px 0; }}
  .lint .det {{ font-family: monospace; background: #eef2f8; padding: 1px 4px; }}
  .lint.cold {{ color: #888; }}
</style>
</head>
<body>
<h1>Scalene profile [{mode}] — {title}</h1>
<p>elapsed {elapsed:.2f}s · peak memory {peak:.1f} MB ·
copy volume {copy:.1f} MB · GPU {gpu:.0f}%</p>
<h2>Memory timeline</h2>
{timeline_svg}
<h2>Line profile</h2>
<table>
<tr><th>line</th><th>time</th><th>py%</th><th>nat%</th><th>sys%</th>
<th>avg MB</th><th>peak MB</th><th>copy MB/s</th><th>gpu%</th>
<th class="src">source</th></tr>
{rows}
</table>
{lints}
{crossings}
{concurrency}
{leaks}
<script type="application/json" id="scalene-profile">
{payload}
</script>
</body>
</html>
"""


def _timeline_svg(points: List[Tuple[float, float]], width: int = 640, height: int = 120) -> str:
    if len(points) < 2:
        return "<p>(no memory timeline)</p>"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y1 = max(ys) or 1.0
    span_x = (x1 - x0) or 1.0

    def sx(x: float) -> float:
        return (x - x0) / span_x * (width - 10) + 5

    def sy(y: float) -> float:
        return height - 5 - y / y1 * (height - 20)

    path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
    return (
        f'<svg width="{width}" height="{height}">'
        f'<polyline points="{path}" fill="none" stroke="#4878cf" stroke-width="1.5"/>'
        f'<text x="5" y="12" font-size="10">{y1:.1f} MB</text>'
        "</svg>"
    )


def _cpu_bar(line) -> str:
    total = line.cpu_total_percent
    if total <= 0:
        return ""
    parts = []
    for cls, pct in (
        ("py", line.cpu_python_percent),
        ("nat", line.cpu_native_percent),
        ("sys", line.cpu_system_percent),
    ):
        if pct > 0:
            parts.append(f'<span class="bar {cls}" style="width:{pct * 2:.0f}px"></span>')
    return "".join(parts)


def render_html(profile: ProfileData, title: str = "profile") -> str:
    """Render the profile as one self-contained HTML page."""
    rows = []
    for line in profile.lines:
        rows.append(
            "<tr>"
            f"<td>{line.lineno}</td>"
            f"<td>{_cpu_bar(line)}</td>"
            f"<td>{line.cpu_python_percent:.1f}</td>"
            f"<td>{line.cpu_native_percent:.1f}</td>"
            f"<td>{line.cpu_system_percent:.1f}</td>"
            f"<td>{line.mem_avg_mb:.1f}</td>"
            f"<td>{line.mem_peak_mb:.1f}</td>"
            f"<td>{line.copy_mb_s:.2f}</td>"
            f"<td>{100 * line.gpu_percent:.0f}</td>"
            f'<td class="src">{html.escape(line.source)}</td>'
            "</tr>"
        )
    leaks = ""
    if profile.leaks:
        items = "".join(
            f'<li class="leak">{html.escape(str(leak))}</li>' for leak in profile.leaks
        )
        leaks = f"<h2>Possible leaks</h2><ul>{items}</ul>"
    lints = ""
    if profile.lint_findings:
        items = []
        for t in profile.lint_findings:
            cls = "lint cold" if t.suppressed else "lint"
            cost = (
                "suppressed (below threshold)"
                if t.suppressed
                else f"{t.score:.1f}% measured"
            )
            items.append(
                f'<li class="{cls}"><span class="det">{html.escape(t.finding.detector)}</span> '
                f"line {t.finding.lineno} — {cost}: "
                f"{html.escape(t.finding.message)}; {html.escape(t.finding.suggestion)}</li>"
            )
        lints = f"<h2>Performance lints</h2><ul>{''.join(items)}</ul>"
    crossings = ""
    if profile.total_crossings > 0:
        chatty_rows = "".join(
            "<tr>"
            f"<td>{line.lineno}</td>"
            f"<td>{line.crossings}</td>"
            f"<td>{line.crossing_overhead_s * 1000:.1f}</td>"
            f"<td>{line.crossing_native_s * 1000:.1f}</td>"
            f"<td>{line.bytes_to_native}</td>"
            f"<td>{line.bytes_to_python}</td>"
            "</tr>"
            for line in sorted(profile.lines, key=lambda l: -l.crossings)
            if line.crossings > 0
        )
        crossings = (
            "<h2>Native boundary</h2>"
            f"<p>{profile.total_crossings} crossings · "
            f"overhead {profile.total_crossing_overhead_s * 1000:.1f} ms · "
            f"{profile.total_bytes_to_native / 1e6:.2f} MB → native · "
            f"{profile.total_bytes_to_python / 1e6:.2f} MB → Python</p>"
            "<table><tr><th>line</th><th>crossings</th><th>overhead ms</th>"
            "<th>native ms</th><th>B → native</th><th>B → Python</th></tr>"
            f"{chatty_rows}</table>"
        )
    if profile.crossflow_findings:
        items = []
        for f in profile.crossflow_findings:
            per_iter = (
                f" ({f.crossings_per_iteration:.1f}/iteration)"
                if f.crossings_per_iteration > 0
                else ""
            )
            items.append(
                f'<li class="lint"><span class="det">{html.escape(f.detector)}</span> '
                f"line {f.lineno} — {f.crossings} crossings{per_iter}, "
                f"overhead {f.overhead_share_percent:.0f}% of boundary time: "
                f"{html.escape(f.message)}; {html.escape(f.suggestion)}"
                + (
                    f" (est. savings {f.estimated_savings_s * 1000:.1f} ms)"
                    if f.estimated_savings_s > 0
                    else ""
                )
                + "</li>"
            )
        crossings += f"<h2>Cross-flow findings</h2><ul>{''.join(items)}</ul>"
    concurrency = ""
    if profile.total_lock_contentions > 0 or profile.total_lock_blocked_s > 0:
        contended_rows = "".join(
            "<tr>"
            f"<td>{line.lineno}</td>"
            f"<td>{line.lock_blocked_s * 1000:.1f}</td>"
            f"<td>{line.lock_contentions}</td>"
            f"<td>{line.lock_acquisitions}</td>"
            "</tr>"
            for line in sorted(profile.lines, key=lambda l: -l.lock_blocked_s)
            if line.lock_contentions > 0
        )
        edge_rows = "".join(
            "<tr>"
            f"<td>{html.escape(edge.waiter)}</td>"
            f"<td>{html.escape(edge.holder)}</td>"
            f"<td>{html.escape(edge.lock)}</td>"
            f"<td>{edge.blocked_s * 1000:.1f}</td>"
            f"<td>{edge.count}</td>"
            "</tr>"
            for edge in profile.lock_edges
        )
        concurrency += (
            "<h2>Lock contention</h2>"
            f"<p>{profile.total_lock_blocked_s * 1000:.1f} ms blocked · "
            f"{profile.total_lock_contentions} contended of "
            f"{profile.total_lock_acquisitions} acquisitions</p>"
            "<table><tr><th>line</th><th>blocked ms</th><th>waits</th>"
            f"<th>acquisitions</th></tr>{contended_rows}</table>"
            "<table><tr><th>waiter</th><th>blocked by</th><th>lock</th>"
            f"<th>blocked ms</th><th>waits</th></tr>{edge_rows}</table>"
        )
    if profile.tasks:
        task_rows = "".join(
            "<tr>"
            f"<td>{html.escape(task.name)}</td>"
            f"<td>{task.cpu_s * 1000:.1f}</td>"
            f"<td>{task.wait_s * 1000:.1f}</td>"
            f"<td>{task.switches}</td>"
            f'<td class="src">{html.escape(task.awaiting or "(never awaited)")}</td>'
            "</tr>"
            for task in sorted(profile.tasks, key=lambda t: -t.cpu_s)
        )
        concurrency += (
            "<h2>Async tasks</h2>"
            "<table><tr><th>task</th><th>cpu ms</th><th>idle ms</th>"
            f"<th>switches</th><th class=\"src\">awaiting</th></tr>{task_rows}</table>"
        )
    if profile.processes:
        proc_rows = "".join(
            "<tr>"
            f"<td>{proc.pid}</td>"
            f"<td>{proc.parent_pid if proc.parent_pid is not None else '—'}</td>"
            f"<td>{proc.elapsed_s:.3f}</td>"
            f"<td>{proc.cpu_s:.3f}</td>"
            f"<td>{proc.peak_mb:.1f}</td>"
            "</tr>"
            for proc in sorted(profile.processes, key=lambda p: p.pid)
        )
        concurrency += (
            "<h2>Process tree</h2>"
            "<table><tr><th>pid</th><th>parent</th><th>elapsed s</th>"
            f"<th>cpu s</th><th>peak MB</th></tr>{proc_rows}</table>"
        )
    return _PAGE.format(
        title=html.escape(title),
        mode=profile.mode,
        elapsed=profile.elapsed,
        peak=profile.peak_footprint_mb,
        copy=profile.total_copy_mb,
        gpu=100 * profile.gpu_mean_utilization,
        timeline_svg=_timeline_svg(profile.memory_timeline),
        rows="\n".join(rows),
        lints=lints,
        crossings=crossings,
        concurrency=concurrency,
        leaks=leaks,
        payload=json.dumps(profile.to_dict()),
    )


def write_html(profile: ProfileData, path: Union[str, Path], title: str = "profile") -> Path:
    """Write the HTML payload to ``path``; returns the path written."""
    path = Path(path)
    path.write_text(render_html(profile, title), encoding="utf-8")
    return path
