"""Output backends for Scalene profiles (paper §5).

* :mod:`repro.ui.json_output` — the JSON profile payload.
* :mod:`repro.ui.html_output` — a single self-contained HTML page with
  the JSON embedded (avoiding CORS, trivially shareable — §5).
* Rich-text CLI rendering lives on
  :meth:`repro.core.profile_data.ProfileData.render_text`.
"""

from repro.ui.json_output import render_json, write_json
from repro.ui.html_output import render_html, write_html

__all__ = ["render_json", "write_json", "render_html", "write_html"]
