"""JSON profile output.

Scalene emits its profile as JSON both standalone and embedded in the
HTML payload; downstream tooling (CI dashboards, diffing) consumes it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.core.profile_data import ProfileData


def write_json(profile: ProfileData, path: Union[str, Path], indent: int = 2) -> Path:
    """Write the profile JSON to ``path``; returns the path written."""
    path = Path(path)
    path.write_text(profile.to_json(indent=indent) + "\n", encoding="utf-8")
    return path
