"""JSON profile output.

Scalene emits its profile as JSON both standalone and embedded in the
HTML payload; downstream tooling (CI dashboards, diffing) consumes it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.core.profile_data import ProfileData


def render_json(profile: ProfileData, indent: int = 2) -> str:
    """The profile JSON payload as a string (what the HTTP API serves)."""
    return profile.to_json(indent=indent) + "\n"


def write_json(profile: ProfileData, path: Union[str, Path], indent: int = 2) -> Path:
    """Write the profile JSON to ``path``; returns the path written."""
    path = Path(path)
    path.write_text(render_json(profile, indent=indent), encoding="utf-8")
    return path
