"""The GIL scheduler and the asyncio-style cooperative event loop.

Exactly one simulated thread executes at a time. The scheduler round-robins
runnable threads with a configurable switch interval (CPython's
``sys.getswitchinterval()``, default 5 ms), wakes blocked threads when
their deadlines pass or wait conditions become true, advances wall time
across idle gaps (all threads blocked in IO), and wakes an *interruptibly*
blocked main thread early when a signal is pending — mirroring EINTR
semantics for ``time.sleep`` while leaving ``join``/``acquire`` waits
signal-starved (the behaviour Scalene's monkey patches fix, §2.2).

The cooperative plane rides on top: an :class:`EventLoop` groups a set of
*task* threads and enforces asyncio semantics between them — a task runs
until it awaits (no preemptive switch between tasks of one loop; a task
that never awaits starves its siblings, exactly the asyncio hazard), and
every task switch is an observation point: the VM has flushed accounting
when the slice ends, the switch is counted on both the loop and the task,
and the per-task CPU/idle split is recorded exactly. Profilers reach the
loop through ``process.async_runtime`` — its ``task_block_impl`` patch
point is the simulation's analog of Scalene's ``replacement_asyncio``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import SchedulerError
from repro.interp import vm as vm_mod
from repro.runtime import threads as th


class TaskRecord:
    """Exact per-task accounting (one asyncio-style task == one record)."""

    __slots__ = (
        "name",
        "thread",
        "spawn_location",
        "await_location",
        "wait_s",
        "switches",
        "started_at",
        "finished_at",
    )

    def __init__(self, name: str, thread, spawn_location) -> None:
        self.name = name
        self.thread = thread
        #: (filename, lineno, function) of the spawn call.
        self.spawn_location = spawn_location
        #: Location of the most recent await (None until the first one).
        self.await_location = None
        #: Wall seconds spent blocked in awaits (idle), accumulated by the
        #: VM on every resume — exact, not sampled.
        self.wait_s = 0.0
        #: Times the loop switched execution to this task.
        self.switches = 0
        self.started_at = 0.0
        self.finished_at = 0.0

    @property
    def cpu_s(self) -> float:
        """Exact CPU seconds the task's thread has executed."""
        return self.thread.cpu_time

    @property
    def done(self) -> bool:
        return self.thread.state == th.FINISHED


class EventLoop:
    """One cooperative task group (an ``asyncio`` event loop analog)."""

    def __init__(self, loop_id: int) -> None:
        self.loop_id = loop_id
        self.tasks: List[TaskRecord] = []
        #: The task currently holding the loop (cooperative semantics:
        #: while it is runnable, sibling tasks are not eligible to run).
        self.current = None
        self.switch_count = 0

    def add_task(self, record: TaskRecord) -> None:
        self.tasks.append(record)

    @property
    def done(self) -> bool:
        return all(t.done for t in self.tasks)

    def eligible(self, thread) -> bool:
        """Cooperative gate: may ``thread`` (a task of this loop) run now?"""
        cur = self.current
        if cur is None or cur is thread:
            return True
        # The loop yields only when its current task awaits or finishes.
        return cur.state != th.RUNNABLE

    def note_pick(self, thread) -> None:
        """The scheduler granted ``thread`` the loop; count task switches."""
        if self.current is not thread:
            self.switch_count += 1
            record = thread.task_record
            if record is not None:
                record.switches += 1
        self.current = thread


class AsyncRuntime:
    """Process-level registry of event loops, with the profiler patch point."""

    def __init__(self, process) -> None:
        self._process = process
        self.loops: List[EventLoop] = []
        #: Monkey-patchable: called with ``(ctx, request)`` whenever a task
        #: is about to block at an await; returns the (possibly wrapped)
        #: BlockRequest. Scalene's async patch marks the task sleeping here
        #: (the ``replacement_asyncio`` analog) so idle awaits are not
        #: misattributed as native CPU by the sampler.
        self.task_block_impl: Callable = self.default_task_block_impl
        #: Monkey-patchable: called with ``(ctx, request)`` when the thread
        #: that called ``aio.run`` blocks waiting for the loop to drain.
        #: Scalene marks that thread sleeping so it does not soak up a
        #: share of the tasks' CPU samples.
        self.loop_wait_impl: Callable = self.default_task_block_impl

    def new_loop(self) -> EventLoop:
        loop = EventLoop(len(self.loops) + 1)
        self.loops.append(loop)
        return loop

    def task_records(self) -> List[TaskRecord]:
        return [t for loop in self.loops for t in loop.tasks]

    @property
    def total_task_switches(self) -> int:
        return sum(loop.switch_count for loop in self.loops)

    @staticmethod
    def default_task_block_impl(ctx, request):
        return request


class Scheduler:
    """Drives the VM over the process's threads until all finish."""

    def __init__(self, process, switch_interval: float = 0.005) -> None:
        self.process = process
        self.switch_interval = switch_interval
        self._rr_cursor = 0
        #: Number of context switches performed (diagnostics).
        self.switch_count = 0

    # -- wake handling ----------------------------------------------------------

    def _wake_ready(self) -> None:
        process = self.process
        now = process.clock.wall
        signals_pending = process.signals.has_pending
        for thread in process.threading.threads:
            if thread.state != th.WAITING or thread.block is None:
                continue
            block = thread.block
            if block.wake_check is not None and block.wake_check():
                thread.state = th.RUNNABLE
            elif block.deadline is not None and now >= block.deadline - 1e-12:
                thread.state = th.RUNNABLE
            elif signals_pending and block.interruptible and thread.is_main:
                thread.state = th.RUNNABLE

    def _earliest_deadline(self) -> Optional[float]:
        deadlines = [
            t.block.deadline
            for t in self.process.threading.threads
            if t.state == th.WAITING and t.block is not None and t.block.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    def _runnable(self) -> List:
        return [t for t in self.process.threading.threads if t.state == th.RUNNABLE]

    def _pick(self, runnable: List):
        # Cooperative gate first: a task of an event loop may only run when
        # its loop's current task has yielded (awaited) or finished. Every
        # runnable thread being gated out is impossible — the gate always
        # leaves at least the loop's own current task eligible.
        eligible = [
            t
            for t in runnable
            if t.event_loop is None or t.event_loop.eligible(t)
        ]
        if eligible:
            runnable = eligible
        # Round-robin over thread identities for fairness.
        runnable.sort(key=lambda t: t.ident)
        picked = None
        for thread in runnable:
            if thread.ident > self._rr_cursor:
                self._rr_cursor = thread.ident
                picked = thread
                break
        if picked is None:
            self._rr_cursor = runnable[0].ident
            picked = runnable[0]
        if picked.event_loop is not None:
            picked.event_loop.note_pick(picked)
        return picked

    # -- the main loop ----------------------------------------------------------

    def run(self, max_wall: Optional[float] = None) -> None:
        """Run all threads to completion (or until ``max_wall``)."""
        process = self.process
        vm = process.vm
        while True:
            self._wake_ready()
            runnable = self._runnable()
            if not runnable:
                waiting = [
                    t for t in process.threading.threads if t.state == th.WAITING
                ]
                if not waiting:
                    return  # all threads finished
                earliest = self._earliest_deadline()
                if earliest is None:
                    raise SchedulerError(
                        "deadlock: all threads waiting on conditions with no deadline"
                    )
                # If the main thread sleeps interruptibly, wall-clock timer
                # expirations must wake it (EINTR) — don't leap past them.
                main = process.main_thread
                if (
                    main.state == th.WAITING
                    and main.block is not None
                    and main.block.interruptible
                ):
                    timer_deadline = process.signals.next_wall_deadline()
                    if timer_deadline is not None and timer_deadline < earliest:
                        earliest = max(timer_deadline, process.clock.wall)
                gap = earliest - process.clock.wall
                if gap > 0:
                    process.clock.advance_wall(gap)
                # Signals may have become pending from a REAL timer during
                # the idle gap; the wake pass at loop top handles them.
                continue

            if max_wall is not None and process.clock.wall >= max_wall:
                raise SchedulerError(
                    f"run exceeded max_wall={max_wall}s (virtual); possible runaway workload"
                )

            thread = self._pick(runnable)
            self.switch_count += 1
            deadline = process.clock.wall + self.switch_interval
            earliest = self._earliest_deadline()
            if earliest is not None and earliest < deadline:
                deadline = max(earliest, process.clock.wall)
            status = vm.run_slice(thread, deadline)
            if status == vm_mod.FINISHED:
                thread.state = th.FINISHED
                thread.finished_at = process.clock.wall
                vm.flush_churn(thread)
            elif status == vm_mod.BLOCKED:
                thread.state = th.WAITING
            else:  # preempted
                thread.state = th.RUNNABLE
