"""The GIL scheduler.

Exactly one simulated thread executes at a time. The scheduler round-robins
runnable threads with a configurable switch interval (CPython's
``sys.getswitchinterval()``, default 5 ms), wakes blocked threads when
their deadlines pass or wait conditions become true, advances wall time
across idle gaps (all threads blocked in IO), and wakes an *interruptibly*
blocked main thread early when a signal is pending — mirroring EINTR
semantics for ``time.sleep`` while leaving ``join``/``acquire`` waits
signal-starved (the behaviour Scalene's monkey patches fix, §2.2).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SchedulerError
from repro.interp import vm as vm_mod
from repro.runtime import threads as th


class Scheduler:
    """Drives the VM over the process's threads until all finish."""

    def __init__(self, process, switch_interval: float = 0.005) -> None:
        self.process = process
        self.switch_interval = switch_interval
        self._rr_cursor = 0
        #: Number of context switches performed (diagnostics).
        self.switch_count = 0

    # -- wake handling ----------------------------------------------------------

    def _wake_ready(self) -> None:
        process = self.process
        now = process.clock.wall
        signals_pending = process.signals.has_pending
        for thread in process.threading.threads:
            if thread.state != th.WAITING or thread.block is None:
                continue
            block = thread.block
            if block.wake_check is not None and block.wake_check():
                thread.state = th.RUNNABLE
            elif block.deadline is not None and now >= block.deadline - 1e-12:
                thread.state = th.RUNNABLE
            elif signals_pending and block.interruptible and thread.is_main:
                thread.state = th.RUNNABLE

    def _earliest_deadline(self) -> Optional[float]:
        deadlines = [
            t.block.deadline
            for t in self.process.threading.threads
            if t.state == th.WAITING and t.block is not None and t.block.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    def _runnable(self) -> List:
        return [t for t in self.process.threading.threads if t.state == th.RUNNABLE]

    def _pick(self, runnable: List):
        # Round-robin over thread identities for fairness.
        runnable.sort(key=lambda t: t.ident)
        for thread in runnable:
            if thread.ident > self._rr_cursor:
                self._rr_cursor = thread.ident
                return thread
        self._rr_cursor = runnable[0].ident
        return runnable[0]

    # -- the main loop ----------------------------------------------------------

    def run(self, max_wall: Optional[float] = None) -> None:
        """Run all threads to completion (or until ``max_wall``)."""
        process = self.process
        vm = process.vm
        while True:
            self._wake_ready()
            runnable = self._runnable()
            if not runnable:
                waiting = [
                    t for t in process.threading.threads if t.state == th.WAITING
                ]
                if not waiting:
                    return  # all threads finished
                earliest = self._earliest_deadline()
                if earliest is None:
                    raise SchedulerError(
                        "deadlock: all threads waiting on conditions with no deadline"
                    )
                # If the main thread sleeps interruptibly, wall-clock timer
                # expirations must wake it (EINTR) — don't leap past them.
                main = process.main_thread
                if (
                    main.state == th.WAITING
                    and main.block is not None
                    and main.block.interruptible
                ):
                    timer_deadline = process.signals.next_wall_deadline()
                    if timer_deadline is not None and timer_deadline < earliest:
                        earliest = max(timer_deadline, process.clock.wall)
                gap = earliest - process.clock.wall
                if gap > 0:
                    process.clock.advance_wall(gap)
                # Signals may have become pending from a REAL timer during
                # the idle gap; the wake pass at loop top handles them.
                continue

            if max_wall is not None and process.clock.wall >= max_wall:
                raise SchedulerError(
                    f"run exceeded max_wall={max_wall}s (virtual); possible runaway workload"
                )

            thread = self._pick(runnable)
            self.switch_count += 1
            deadline = process.clock.wall + self.switch_interval
            earliest = self._earliest_deadline()
            if earliest is not None and earliest < deadline:
                deadline = max(earliest, process.clock.wall)
            status = vm.run_slice(thread, deadline)
            if status == vm_mod.FINISHED:
                thread.state = th.FINISHED
                thread.finished_at = process.clock.wall
                vm.flush_churn(thread)
            elif status == vm_mod.BLOCKED:
                thread.state = th.WAITING
            else:  # preempted
                thread.state = th.RUNNABLE
