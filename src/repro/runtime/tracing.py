"""The ``sys.settrace`` / ``PyEval_SetTrace`` analog.

Deterministic profilers (cProfile, profile, line_profiler, pprofile,
memory_profiler) are built on tracing callbacks. Tracing has a *probe
effect*: every callback invocation costs CPU time inside the profiled
process. The paper shows (§6.2) that this effect is biased — call events
fire on function entry/exit, so function-call-heavy code is dilated more
than inlined code ("function bias").

A trace function declares its per-event costs; the manager charges them to
the traced thread's virtual CPU time before invoking the callback. Setting
all costs to zero gives an idealized, physically impossible profiler —
useful for separating mechanism bias from overhead in the benchmarks.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

EVENT_CALL = "call"
EVENT_LINE = "line"
EVENT_RETURN = "return"
EVENT_C_CALL = "c_call"
EVENT_C_RETURN = "c_return"


class TraceFunction(Protocol):
    """Interface for trace callbacks (see module docstring for costs)."""

    #: Virtual CPU seconds charged per event of each kind.
    cost_call: float
    cost_line: float
    cost_return: float
    cost_c_call: float
    cost_c_return: float

    def __call__(self, frame, event: str, arg: Any) -> None:  # pragma: no cover
        ...


class TraceManager:
    """Dispatches interpreter events to the installed trace function."""

    def __init__(self, process) -> None:
        self._process = process
        self._trace_fn: Optional[TraceFunction] = None
        #: Events dispatched (for tests and diagnostics).
        self.events_fired = 0

    # -- sys.settrace ----------------------------------------------------------

    def settrace(self, trace_fn: Optional[TraceFunction]) -> None:
        self._trace_fn = trace_fn

    def gettrace(self) -> Optional[TraceFunction]:
        return self._trace_fn

    @property
    def active(self) -> bool:
        return self._trace_fn is not None

    # -- event dispatch ----------------------------------------------------------

    def fire(self, thread, frame, event: str, arg: Any = None) -> None:
        """Charge the probe cost and invoke the trace callback."""
        fn = self._trace_fn
        if fn is None:
            return
        cost = _COST_ATTR[event](fn)
        if cost:
            self._process.charge_overhead(thread, cost)
        self.events_fired += 1
        fn(frame, event, arg)


_COST_ATTR = {
    EVENT_CALL: lambda fn: fn.cost_call,
    EVENT_LINE: lambda fn: fn.cost_line,
    EVENT_RETURN: lambda fn: fn.cost_return,
    EVENT_C_CALL: lambda fn: fn.cost_c_call,
    EVENT_C_RETURN: lambda fn: fn.cost_c_return,
}
