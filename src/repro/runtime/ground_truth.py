"""Exact per-line resource accounting (the experiments' oracle).

When enabled on a :class:`~repro.runtime.process.SimProcess`, the VM and
native context report every quantum of CPU time, every logical allocation
and free, every memcpy, and every GPU kernel with its source-line
attribution. Accuracy experiments (Figs. 5 and 6) compare profiler output
against this record; the paper had to approximate it with high-resolution
timers (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

LineKey = Tuple[str, int]  # (filename, lineno)


@dataclass(slots=True)
class LineTruth:
    """Ground truth for one source line."""

    python_time: float = 0.0
    native_time: float = 0.0
    system_time: float = 0.0
    python_alloc_bytes: int = 0
    python_free_bytes: int = 0
    native_alloc_bytes: int = 0
    native_free_bytes: int = 0
    copy_bytes: int = 0
    gpu_time: float = 0.0
    native_calls: int = 0

    @property
    def total_time(self) -> float:
        return self.python_time + self.native_time + self.system_time

    @property
    def net_bytes(self) -> int:
        return (
            self.python_alloc_bytes
            - self.python_free_bytes
            + self.native_alloc_bytes
            - self.native_free_bytes
        )


class GroundTruth:
    """Collects exact per-line and per-function resource usage."""

    def __init__(self) -> None:
        self.lines: Dict[LineKey, LineTruth] = {}
        self.functions: Dict[Tuple[str, str], float] = {}  # (file, func) -> seconds
        self.profiler_overhead = 0.0
        self.footprint_series: List[Tuple[float, int]] = []
        self.peak_footprint = 0
        self.total_python_time = 0.0
        self.total_native_time = 0.0
        self.total_system_time = 0.0

    # -- helpers -------------------------------------------------------------

    def _line(self, key: LineKey) -> LineTruth:
        truth = self.lines.get(key)
        if truth is None:
            truth = LineTruth()
            self.lines[key] = truth
        return truth

    @staticmethod
    def _location(thread) -> Optional[Tuple[str, int, str]]:
        if thread is None or thread.frame is None:
            return None
        return thread.frame.location()

    # -- recording (called by the VM / native context) ---------------------------

    def record_python_time(self, thread, seconds: float) -> None:
        # Hot path: called by the VM on every line transition. Inlines
        # _location()/_line() to avoid tuple churn and extra calls.
        self.total_python_time += seconds
        if thread is None:
            return
        frame = thread.frame
        if frame is None:
            return
        filename, lineno, func = frame.location()
        lines = self.lines
        key = (filename, lineno)
        truth = lines.get(key)
        if truth is None:
            truth = lines[key] = LineTruth()
        truth.python_time += seconds
        functions = self.functions
        fkey = (filename, func)
        functions[fkey] = functions.get(fkey, 0.0) + seconds

    def record_native_time(self, thread, seconds: float) -> None:
        loc = self._location(thread)
        self.total_native_time += seconds
        if loc is None:
            return
        filename, lineno, func = loc
        self._line((filename, lineno)).native_time += seconds
        self.functions[(filename, func)] = self.functions.get((filename, func), 0.0) + seconds

    def record_system_time(self, thread, seconds: float, location=None) -> None:
        loc = location if location is not None else self._location(thread)
        self.total_system_time += seconds
        if loc is None:
            return
        filename, lineno, _func = loc
        self._line((filename, lineno)).system_time += seconds

    def record_alloc(self, thread, nbytes: int, domain: str) -> None:
        # Hot path: called for every churn allocation; see record_python_time.
        if thread is None:
            return
        frame = thread.frame
        if frame is None:
            return
        filename, lineno, _ = frame.location()
        lines = self.lines
        key = (filename, lineno)
        truth = lines.get(key)
        if truth is None:
            truth = lines[key] = LineTruth()
        if domain == "python":
            truth.python_alloc_bytes += nbytes
        else:
            truth.native_alloc_bytes += nbytes

    def record_free(self, thread, nbytes: int, domain: str) -> None:
        if thread is None:
            return
        frame = thread.frame
        if frame is None:
            return
        filename, lineno, _ = frame.location()
        lines = self.lines
        key = (filename, lineno)
        truth = lines.get(key)
        if truth is None:
            truth = lines[key] = LineTruth()
        if domain == "python":
            truth.python_free_bytes += nbytes
        else:
            truth.native_free_bytes += nbytes

    def record_native_call(self, thread) -> None:
        """One Python→native boundary crossing (the crossing-count oracle)."""
        loc = self._location(thread)
        if loc is None:
            return
        self._line(loc[:2]).native_calls += 1

    def record_memcpy(self, thread, nbytes: int) -> None:
        loc = self._location(thread)
        if loc is None:
            return
        self._line(loc[:2]).copy_bytes += nbytes

    def record_gpu_time(self, thread, seconds: float) -> None:
        loc = self._location(thread)
        if loc is None:
            return
        self._line(loc[:2]).gpu_time += seconds

    def record_overhead(self, seconds: float) -> None:
        self.profiler_overhead += seconds

    def record_footprint(self, wall: float, footprint: int) -> None:
        self.footprint_series.append((wall, footprint))
        if footprint > self.peak_footprint:
            self.peak_footprint = footprint

    # -- queries -------------------------------------------------------------

    @property
    def total_time(self) -> float:
        return self.total_python_time + self.total_native_time + self.total_system_time

    def function_time(self, func: str, filename: Optional[str] = None) -> float:
        total = 0.0
        for (file, name), seconds in self.functions.items():
            if name == func and (filename is None or file == filename):
                total += seconds
        return total
