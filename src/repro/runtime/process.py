"""The simulated process: composition root of the whole substrate.

A :class:`SimProcess` bundles the virtual clock, signal manager, memory
subsystem, GPU device, tracer, threading services, and the VM, and runs a
compiled workload to completion. Profilers attach to a process *before*
``run()`` through exactly the hook surface their real counterparts use:

* ``process.signals`` — ``signal.setitimer`` / handlers (sampling profilers)
* ``process.trace`` — ``sys.settrace`` (deterministic profilers)
* ``process.mem.hooks`` — ``PyMem_SetAllocator`` (Python allocations)
* ``process.mem.shim`` — LD_PRELOAD malloc/free/memcpy interposition
* ``process.threading`` — monkey-patchable blocking calls, ``enumerate()``
* ``process.current_frames()`` — ``sys._current_frames()``
* ``process.nvml`` — GPU utilization/memory queries
* ``process.rss()`` — ``/proc/self/status`` VmRSS (RSS-proxy profilers)
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import VMError
from repro.gpu.device import GpuDevice, NvmlQuery
from repro.interp.astcompile import compile_source
from repro.interp.code import CodeObject, SimFunction
from repro.interp.disassembler import build_call_opcode_map
from repro.interp.vm import VM, VMConfig
from repro.interp.objects import decref
from repro.runtime.clock import VirtualClock
from repro.runtime.crossings import CrossingRecorder
from repro.runtime.ground_truth import GroundTruth
from repro.runtime.memsys import MemSubsystem
from repro.runtime.scheduler import AsyncRuntime, Scheduler
from repro.runtime.signals import SignalManager
from repro.runtime.threads import (
    RUNNABLE,
    LockContentionRecorder,
    SimThread,
    SimThreading,
)
from repro.runtime.tracing import TraceManager
from repro.units import DEFAULT_SWITCH_INTERVAL


class SimProcess:
    """One simulated Python process executing one workload."""

    def __init__(
        self,
        source: Optional[str] = None,
        *,
        filename: str = "<workload>",
        vm_config: Optional[VMConfig] = None,
        collect_ground_truth: bool = False,
        switch_interval: float = DEFAULT_SWITCH_INTERVAL,
        gpu: Optional[GpuDevice] = None,
        base_rss_bytes: int = 24 * 1024 * 1024,
        pid: int = 4242,
        parent_pid: Optional[int] = None,
    ) -> None:
        self.pid = pid
        #: Pid of the process that forked this one (None for the root).
        self.parent_pid = parent_pid
        #: The forking SimProcess itself (process-tree navigation).
        self.parent: Optional["SimProcess"] = None
        #: Next pid handed out by :meth:`allocate_pid` (root-owned).
        self._pid_counter = pid
        self.clock = VirtualClock()
        self.signals = SignalManager(self.clock)
        self.ground_truth: Optional[GroundTruth] = GroundTruth() if collect_ground_truth else None
        self.mem = MemSubsystem(self.clock, ground_truth=self.ground_truth, base_rss_bytes=base_rss_bytes)
        #: Exact native-boundary crossing counters (always on; see
        #: runtime/crossings.py). Profilers fold these into ProfileData.
        self.crossings = CrossingRecorder()
        #: Exact lock/semaphore contention counters (always on; see
        #: runtime/threads.py). Profilers fold these into ProfileData.
        self.lock_contention = LockContentionRecorder(self.clock)
        self.gpu = gpu or GpuDevice()
        self.nvml = NvmlQuery(self.gpu)
        self.trace = TraceManager(self)
        self.threading = SimThreading(self)
        self.vm = VM(self, vm_config)
        self.scheduler = Scheduler(self, switch_interval)
        #: Asyncio-style cooperative event loops (see runtime/scheduler.py).
        self.async_runtime = AsyncRuntime(self)
        self.filename = filename
        #: Files whose lines profilers attribute to (the "profiled code").
        self.profiled_filenames = {filename}
        self.globals: Dict[str, Any] = {}
        self.builtins: Dict[str, Any] = {}
        self.stdout: list = []
        self.main_thread = SimThread("MainThread", is_main=True)
        self.threading.register(self.main_thread)
        self.source: Optional[str] = None
        self.code: Optional[CodeObject] = None
        #: Callables run when the program exits, *before* interpreter
        #: teardown (the ``atexit`` analog profilers detach through).
        self.atexit_hooks: list = []
        #: Observers invoked with each child SimProcess the program forks
        #: (before the child runs). Profilers with multiprocessing support
        #: attach to children through this hook.
        self.child_observers: list = []
        #: Children forked by this process (for inspection).
        self.children: list = []
        #: False inside an mp child (the ``__name__ == "__main__"`` analog;
        #: exposed to workloads as the ``is_main()`` builtin).
        self.is_main_process = True
        #: The attached profiler exposing pause()/resume(), if any — the
        #: target of the ``profile_start()``/``profile_stop()`` builtins.
        self.profiler_control = None
        #: The attached :class:`repro.faults.FaultInjector`, if any
        #: (see :meth:`install_faults`).
        self.faults = None
        self.call_opcode_map: Dict[int, frozenset] = {}
        self._ran = False
        # Populate builtins (import here to avoid a cycle at module level).
        from repro.interp.builtins import install_builtins

        install_builtins(self)
        if source is not None:
            self.load(source)

    # -- loading ------------------------------------------------------------

    def load(self, source: str) -> None:
        """Compile ``source`` and prepare the main thread to run it."""
        self.source = source
        self.code = compile_source(source, self.filename)
        self.call_opcode_map = build_call_opcode_map(self.code)
        frame = self.vm.make_module_frame(self.code, self.globals, self.main_thread)
        self.main_thread.frame = frame
        self.main_thread.state = RUNNABLE

    def install_library(self, name: str, library: Any) -> None:
        """Expose a native library object as a global (an ``import`` analog)."""
        self.globals[name] = library

    def install_faults(self, injector) -> None:
        """Thread a :class:`repro.faults.FaultInjector` through the runtime.

        Attaches the injector to the clock (jump faults), the signal
        manager (drop/coalesce/delay faults), and the memory subsystem
        (ENOMEM/reentrancy faults). Call before :meth:`run`; profilers
        pick the injector up from ``process.faults`` when building the
        final profile and flag it as degraded.
        """
        self.faults = injector
        self.clock.faults = injector
        self.signals.faults = injector
        self.mem.faults = injector

    # -- execution ------------------------------------------------------------

    def run(self, max_wall: Optional[float] = None) -> None:
        """Run every thread to completion."""
        if self.code is None:
            raise VMError("no workload loaded; call load() first")
        if self._ran:
            raise VMError("a SimProcess can only run once; create a fresh one")
        self._ran = True
        try:
            self.scheduler.run(max_wall=max_wall)
        finally:
            for hook in self.atexit_hooks:
                hook()
            self._finalize()

    def _finalize(self) -> None:
        # Interpreter shutdown: module globals are torn down, releasing any
        # retained containers (their frees are visible to profilers).
        for value in list(self.globals.values()):
            decref(value)
        self.globals.clear()
        for thread in self.threading.threads:
            self.vm.flush_churn(thread)

    # -- fork/spawn process trees -------------------------------------------

    def allocate_pid(self) -> int:
        """Hand out the next pid in this process *tree* (root-owned, so
        pids stay unique across nested forks)."""
        if self.parent is not None:
            return self.parent.allocate_pid()
        self._pid_counter += 1
        return self._pid_counter

    def spawn_child(self, source: str, *, install_libraries: bool = True) -> "SimProcess":
        """Fork a child process running ``source`` (spawn semantics).

        The child inherits the VM config, GPU device, and ground-truth
        collection flag; it gets its own clock, memory subsystem, crossing
        and contention recorders (there is no GIL between processes). The
        child is registered in :attr:`children` with lineage recorded, and
        every ``child_observers`` hook fires *before* it runs — the
        attach point for profilers with multiprocessing support.

        The caller runs the child (``child.run()``) and models the
        parent-side wait; see :mod:`repro.interp.libs.simmp`.
        """
        child = SimProcess(
            source,
            filename=self.filename,
            pid=self.allocate_pid(),
            parent_pid=self.pid,
            vm_config=self.vm.config,
            gpu=self.gpu,
            collect_ground_truth=self.ground_truth is not None,
        )
        child.parent = self
        child.is_main_process = False
        if install_libraries:
            from repro.interp.libs import install_standard_libraries

            install_standard_libraries(child)
        self.children.append(child)
        for observer in self.child_observers:
            observer(child)
        return child

    def process_tree(self) -> list:
        """This process and every descendant, preorder."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.process_tree())
        return nodes

    # -- thread support (called by SimThreading.spawn) ---------------------------

    def start_thread(self, thread: SimThread, fn: SimFunction, args: tuple) -> None:
        self.threading.register(thread)
        thread.frame = self.vm.make_frame(fn, args, thread, back=None)
        thread.state = RUNNABLE
        thread.started_at = self.clock.wall

    # -- profiler-facing conveniences ---------------------------

    def current_frames(self):
        """``sys._current_frames()`` analog."""
        return self.threading.current_frames()

    def charge_overhead(self, thread, seconds: float) -> None:
        """Charge profiler-hook CPU time to the running thread.

        Advances the virtual clocks (so timers keep firing on schedule,
        exactly as real profiler overhead perturbs timing) and books the
        time in the ground truth's overhead bucket rather than to any
        program line.
        """
        if seconds <= 0:
            return
        self.clock.advance_cpu(seconds)
        if thread is not None:
            thread.cpu_time += seconds
        if self.ground_truth is not None:
            self.ground_truth.record_overhead(seconds)

    def rss(self) -> int:
        """Resident set size in bytes (``/proc/self/status`` analog)."""
        return self.mem.rss()

    def cpu_time(self) -> float:
        """``time.process_time()`` analog."""
        return self.clock.cpu

    def wall_time(self) -> float:
        """``time.perf_counter()`` analog."""
        return self.clock.wall

    def getswitchinterval(self) -> float:
        """``sys.getswitchinterval()`` analog."""
        return self.scheduler.switch_interval
