"""Exact native-boundary crossing accounting.

Every call that leaves the interpreter for a simulated native library
(`np.*`, `pd.*`, `torch.*`, and bound methods on native-domain objects)
is one *crossing*. Because the runtime owns both sides of the boundary,
crossings are counted exactly — no sampling — and each one is split into
its fixed crossing overhead (argument marshalling, calling-convention
glue; charged by the VM) and the actual native work performed inside.

Conversion volume is tracked directionally: ``bytes_to_native`` covers
Python→native materialization (``np.asarray``, ``torch.tensor``) and
``bytes_to_python`` covers native→Python extraction (``tolist``,
``item``). The static boundary detectors (staticcheck/lints.py) and the
cross-flow join (analysis/crossflow.py) consume these counters per line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

LineKey = Tuple[str, int]  # (filename, lineno)


@dataclass(slots=True)
class LineCrossings:
    """Crossing counters for one source line (all absolute, mergeable)."""

    crossings: int = 0
    native_s: float = 0.0
    overhead_s: float = 0.0
    bytes_to_native: int = 0
    bytes_to_python: int = 0


class CrossingRecorder:
    """Per-(file, line) native-boundary crossing counters for one process.

    Always on: recording is a dict upsert per native call, cheap relative
    to the simulated work inside the call. Counters are exact (every
    crossing, not a sample) and additive, so profiles merge by summation.
    """

    def __init__(self) -> None:
        self.lines: Dict[LineKey, LineCrossings] = {}
        self.total_crossings = 0
        self.total_native_s = 0.0
        self.total_overhead_s = 0.0
        self.total_bytes_to_native = 0
        self.total_bytes_to_python = 0

    def _line(self, filename: str, lineno: int) -> LineCrossings:
        key = (filename, lineno)
        line = self.lines.get(key)
        if line is None:
            line = self.lines[key] = LineCrossings()
        return line

    def record_call(
        self, filename: str, lineno: int, overhead_s: float, native_s: float
    ) -> None:
        """One boundary crossing at ``(filename, lineno)``."""
        line = self._line(filename, lineno)
        line.crossings += 1
        line.overhead_s += overhead_s
        line.native_s += native_s
        self.total_crossings += 1
        self.total_overhead_s += overhead_s
        self.total_native_s += native_s

    def record_bytes(
        self, filename: str, lineno: int, nbytes: int, direction: str
    ) -> None:
        """Conversion volume; ``direction`` is ``to_native`` or ``to_python``."""
        if nbytes <= 0:
            return
        line = self._line(filename, lineno)
        if direction == "to_native":
            line.bytes_to_native += nbytes
            self.total_bytes_to_native += nbytes
        elif direction == "to_python":
            line.bytes_to_python += nbytes
            self.total_bytes_to_python += nbytes
        else:
            raise ValueError(f"unknown conversion direction {direction!r}")
