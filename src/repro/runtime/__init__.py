"""Simulated operating-system/runtime substrate.

This package provides the pieces of a CPython-like process that Scalene's
algorithms interact with: a virtual clock, interval timers with POSIX-like
signal-delivery semantics, a GIL scheduler over simulated threads, a
``sys.settrace`` analog, and the :class:`~repro.runtime.process.SimProcess`
composition root.
"""

from repro.runtime.clock import VirtualClock
from repro.runtime.signals import SignalManager, Timers, SIGVTALRM, SIGALRM, SIGPROF

__all__ = [
    "VirtualClock",
    "SignalManager",
    "Timers",
    "SIGVTALRM",
    "SIGALRM",
    "SIGPROF",
]
