"""POSIX-like interval timers and signal delivery for the simulated process.

This module reproduces the three properties of CPython signal handling that
Scalene's CPU profiler exploits (paper §2):

1. **Main-thread-only delivery.** Pending signals are only delivered when
   the *main* simulated thread is executing in the interpreter loop.
2. **Deferred delivery.** The interpreter checks for pending signals only at
   bytecode boundaries. While a native call runs, signals stay pending; the
   handler observes them *late*, and the delay is measurable on the process
   CPU clock. This is the signal-delay insight of §2.1.
3. **Pending collapse.** Multiple expirations of the same timer while
   deferred collapse into a single pending signal, exactly as a POSIX signal
   (non-realtime) would.

A :class:`~repro.faults.FaultInjector` may be attached (``manager.faults``)
to exercise the failure modes of this delivery machinery: individual timer
expirations can be *dropped* (lost in the kernel), *coalesced* (forcibly
merged into a neighbouring expiry), or *delayed* (held pending past their
natural delivery boundary). Without an injector, behaviour is unchanged.

Timers come in the three POSIX flavours: ``ITIMER_REAL`` ticks on wall time
and raises ``SIGALRM``; ``ITIMER_VIRTUAL`` ticks on process CPU time and
raises ``SIGVTALRM``; ``ITIMER_PROF`` ticks on CPU+system time and raises
``SIGPROF`` (in this simulation system time is not separately modelled at
the timer level, so PROF ticks on CPU time like VIRTUAL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import SignalError

# Signal numbers mirror Linux for familiarity.
SIGALRM = 14
SIGPROF = 27
SIGVTALRM = 26


class Timers:
    """Names for the itimer kinds (mirrors the ``signal`` module)."""

    ITIMER_REAL = "real"
    ITIMER_VIRTUAL = "virtual"
    ITIMER_PROF = "prof"


_TIMER_SIGNAL = {
    Timers.ITIMER_REAL: SIGALRM,
    Timers.ITIMER_VIRTUAL: SIGVTALRM,
    Timers.ITIMER_PROF: SIGPROF,
}

SignalHandler = Callable[[int], None]
"""Handlers receive the signal number; they inspect the process directly."""


@dataclass
class _IntervalTimer:
    kind: str
    interval: float
    deadline: float  # in the timer's own time base
    fired_at_wall: float = 0.0  # wall time of most recent expiry


class SignalManager:
    """Tracks interval timers, pending signals, and handler dispatch.

    The manager subscribes to the process clock; the interpreter calls
    :meth:`deliver_pending` at bytecode boundaries of the main thread.
    """

    def __init__(self, clock) -> None:
        self._clock = clock
        self._timers: Dict[str, _IntervalTimer] = {}
        self._pending: Dict[int, float] = {}  # signum -> wall time first raised
        self._handlers: Dict[int, SignalHandler] = {}
        #: Optional :class:`repro.faults.FaultInjector`: timer expirations
        #: may then be dropped, coalesced into the next expiry, or have
        #: their delivery embargoed by an extra delay.
        self.faults = None
        self._embargo: Dict[int, float] = {}  # signum -> deliverable-at wall
        #: Number of timer expirations that collapsed into an already
        #: pending signal (useful for diagnostics and tests).
        self.collapsed_count = 0
        #: Total signals delivered to handlers.
        self.delivered_count = 0
        clock.subscribe(self._on_advance)

    # -- configuration -------------------------------------------------------

    def setitimer(self, kind: str, interval: float) -> None:
        """Arm (or with ``interval == 0`` disarm) a repeating interval timer.

        Mirrors ``signal.setitimer(which, seconds, interval)`` with
        ``seconds == interval`` (the common profiling configuration).
        """
        if kind not in _TIMER_SIGNAL:
            raise SignalError(f"unknown itimer kind: {kind!r}")
        if interval < 0:
            raise SignalError(f"negative timer interval: {interval}")
        if interval == 0:
            self._timers.pop(kind, None)
            return
        base = self._time_base(kind)
        self._timers[kind] = _IntervalTimer(kind, interval, base + interval)

    def getitimer(self, kind: str) -> float:
        """Return the armed interval for ``kind`` (0.0 when disarmed)."""
        timer = self._timers.get(kind)
        return timer.interval if timer else 0.0

    def set_handler(self, signum: int, handler: Optional[SignalHandler]) -> None:
        """Install or (with ``None``) remove a handler for ``signum``."""
        if handler is None:
            self._handlers.pop(signum, None)
        else:
            self._handlers[signum] = handler

    def get_handler(self, signum: int) -> Optional[SignalHandler]:
        return self._handlers.get(signum)

    def raise_signal(self, signum: int) -> None:
        """Mark ``signum`` pending (as ``os.kill(pid, signum)`` would)."""
        if signum in self._pending:
            self.collapsed_count += 1
        else:
            self._pending[signum] = self._clock.wall

    # -- clock integration ---------------------------------------------------

    def _time_base(self, kind: str) -> float:
        if kind == Timers.ITIMER_REAL:
            return self._clock.wall
        return self._clock.cpu

    def _on_advance(self, wall_dt: float, cpu_dt: float) -> None:
        self.poll()

    def poll(self) -> None:
        """Expire any timers whose deadline has passed on the current clock.

        Timer state depends only on the clock's *absolute* time bases, so
        polling at arbitrary points is semantically identical to polling on
        every clock advance — the interpreter's fast path exploits this by
        polling only when a cached deadline (see :meth:`next_deadlines`)
        has been crossed.
        """
        faults = self.faults
        for timer in self._timers.values():
            base = self._time_base(timer.kind)
            # Catch up over any number of missed intervals; all expirations
            # collapse into one pending signal.
            fired = False
            while base >= timer.deadline:
                timer.deadline += timer.interval
                if faults is not None:
                    fate = faults.timer_expiry_fate()
                    if fate == "drop":
                        # Lost in the kernel: never becomes pending.
                        continue
                    if fate == "coalesce":
                        # Forcibly merged into a neighbouring expiry: the
                        # handler will observe one signal where two fired.
                        self.collapsed_count += 1
                        continue
                if fired:
                    self.collapsed_count += 1
                fired = True
            if fired:
                timer.fired_at_wall = self._clock.wall
                signum = _TIMER_SIGNAL[timer.kind]
                self.raise_signal(signum)
                if faults is not None:
                    delay = faults.signal_delay()
                    if delay > 0.0:
                        due = self._clock.wall + delay
                        if due > self._embargo.get(signum, 0.0):
                            self._embargo[signum] = due

    def next_deadlines(self) -> Tuple[float, float]:
        """``(cpu_deadline, wall_deadline)`` of the earliest armed timers.

        The CPU slot covers ITIMER_VIRTUAL and ITIMER_PROF (both tick on
        process CPU time here); the wall slot covers ITIMER_REAL. Unarmed
        slots are ``inf``, so callers can use plain ``>=`` comparisons as a
        no-op fast path. The values are only a *hint* for when to call
        :meth:`poll` next — they go stale whenever ``setitimer`` runs.
        """
        cpu_dl = float("inf")
        wall_dl = float("inf")
        for timer in self._timers.values():
            if timer.kind == Timers.ITIMER_REAL:
                if timer.deadline < wall_dl:
                    wall_dl = timer.deadline
            elif timer.deadline < cpu_dl:
                cpu_dl = timer.deadline
        return cpu_dl, wall_dl

    def next_wall_deadline(self) -> Optional[float]:
        """Wall time of the next ITIMER_REAL expiry (None when disarmed).

        The scheduler uses this to avoid leaping over timer expirations
        when every thread is blocked: a sleeping main thread must still be
        woken at each wall-timer tick (EINTR semantics).
        """
        deadlines = [
            t.deadline for t in self._timers.values() if t.kind == Timers.ITIMER_REAL
        ]
        return min(deadlines) if deadlines else None

    # -- delivery -------------------------------------------------------------

    @property
    def has_pending(self) -> bool:
        """Whether any signal awaits delivery."""
        return bool(self._pending)

    def deliver_pending(self, thread) -> int:
        """Deliver all pending signals to their handlers.

        Called by the interpreter at a bytecode boundary of the **main**
        thread only; delivering from a subthread is a semantics violation
        and raises. Returns the number of handlers invoked.
        """
        if not self._pending:
            return 0
        if thread is not None and not thread.is_main:
            raise SignalError("signals may only be delivered to the main thread")
        delivered = 0
        # Snapshot: handlers may cause new signals to become pending; those
        # wait for the next boundary, as in a real kernel.
        pending = sorted(self._pending)
        for signum in pending:
            if self._embargo:
                # An injected delivery delay holds the signal pending past
                # its natural boundary (late-arrival fault).
                due = self._embargo.get(signum)
                if due is not None:
                    if self._clock.wall < due:
                        continue
                    del self._embargo[signum]
            self._pending.pop(signum, None)
            handler = self._handlers.get(signum)
            if handler is not None:
                handler(signum)
                delivered += 1
                self.delivered_count += 1
        return delivered

    def clear(self) -> None:
        """Drop all pending signals and disarm all timers."""
        self._pending.clear()
        self._embargo.clear()
        self._timers.clear()
