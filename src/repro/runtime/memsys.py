"""Memory subsystem facade used by the VM and native libraries.

Bundles the system allocator, shim, pymalloc and PyMem hooks, tracks the
*logical footprint* (live Python-object bytes plus live native bytes —
the quantity Scalene's threshold sampler tracks), and feeds the optional
ground-truth collector.
"""

from __future__ import annotations

from repro.memory.hooks import PyMemHooks
from repro.memory.pymalloc import PyAllocation, PyMalloc
from repro.memory.shim import DOMAIN_NATIVE, AllocatorShim
from repro.memory.sysalloc import Allocation, SystemAllocator


class MemSubsystem:
    """Composition of the simulated memory stack (see module docstring)."""

    def __init__(self, clock, ground_truth=None, base_rss_bytes: int = 24 * 1024 * 1024) -> None:
        self.sysalloc = SystemAllocator(base_rss_bytes=base_rss_bytes)
        self.shim = AllocatorShim(self.sysalloc, clock)
        self.pymalloc = PyMalloc(self.shim)
        self.hooks = PyMemHooks(self.pymalloc)
        self.ground_truth = ground_truth
        self._clock = clock
        self._native_live_bytes = 0
        self.peak_footprint = 0
        #: Count of live heap-backed simulated objects (diagnostics).
        self.live_object_count = 0
        #: Optional :class:`repro.faults.FaultInjector`. Two allocator
        #: fault families are consulted on every allocation:
        #:
        #: * **ENOMEM** — the allocation transiently fails and is retried
        #:   (the retry succeeds; only the fault counter and the perturbed
        #:   timing remain observable);
        #: * **shim reentrancy** — the allocation happens "inside the
        #:   allocator": memory moves, but the installed profiler hooks
        #:   never see the event (the §3.1 double-count hazard).
        self.faults = None

    # -- python-domain allocations (via the PyMem hooks) ------------------------

    def py_alloc(self, nbytes: int, thread=None) -> PyAllocation:
        # Hot path (object churn): dispatch straight to the installed
        # allocator and inline _update_peak()/logical_footprint().
        faults = self.faults
        if faults is not None:
            faults.alloc_enomem()  # transient failure, absorbed by retry
            if faults.shim_reentrancy():
                # Reentrant path: go straight to pymalloc, bypassing any
                # installed profiler wrapper — the event is unobserved.
                handle = self.hooks._default.alloc(nbytes, thread=thread)
            else:
                handle = self.hooks._current.alloc(nbytes, thread=thread)
        else:
            handle = self.hooks._current.alloc(nbytes, thread=thread)
        gt = self.ground_truth
        if gt is not None:
            gt.record_alloc(thread, nbytes, "python")
        pymalloc = self.pymalloc
        footprint = (
            pymalloc.total_bytes_allocated
            - pymalloc.total_bytes_freed
            + self._native_live_bytes
        )
        if footprint > self.peak_footprint:
            self.peak_footprint = footprint
        return handle

    def py_free(self, handle: PyAllocation, thread=None) -> None:
        self.hooks._current.free(handle, thread=thread)
        gt = self.ground_truth
        if gt is not None:
            gt.record_free(thread, handle.nbytes, "python")

    def py_scratch(self, nbytes: int, thread=None) -> None:
        """Allocate-and-free a transient Python object of ``nbytes``.

        Workloads use this to model allocation *volume* that never changes
        the footprint — the traffic that rate-based sampling pays for and
        threshold-based sampling filters out (§3.2).
        """
        handle = self.py_alloc(nbytes, thread)
        self.py_free(handle, thread)

    # -- native-domain allocations (via the shim) ------------------------

    def native_alloc(self, nbytes: int, thread=None, *, touch: bool = True, tag: str = "native") -> Allocation:
        faults = self.faults
        if faults is not None:
            faults.alloc_enomem()  # transient failure, absorbed by retry
            if faults.shim_reentrancy():
                # Allocate under the in-allocator guard: the shim passes
                # the request through but publishes no event.
                with self.shim.allocator_guard(thread):
                    alloc = self.shim.malloc(
                        nbytes, thread=thread, touch=touch, tag=tag, domain=DOMAIN_NATIVE
                    )
                self._native_live_bytes += nbytes
                if self.ground_truth is not None:
                    self.ground_truth.record_alloc(thread, nbytes, "native")
                self._update_peak()
                return alloc
        alloc = self.shim.malloc(nbytes, thread=thread, touch=touch, tag=tag, domain=DOMAIN_NATIVE)
        self._native_live_bytes += nbytes
        if self.ground_truth is not None:
            self.ground_truth.record_alloc(thread, nbytes, "native")
        self._update_peak()
        return alloc

    def native_free(self, alloc: Allocation, thread=None) -> None:
        self.shim.free(alloc, thread=thread, domain=DOMAIN_NATIVE)
        self._native_live_bytes -= alloc.nbytes
        if self.ground_truth is not None:
            self.ground_truth.record_free(thread, alloc.nbytes, "native")

    def memcpy(self, nbytes: int, thread=None, direction: str = "host") -> None:
        self.shim.memcpy(nbytes, thread=thread, direction=direction)
        if self.ground_truth is not None:
            self.ground_truth.record_memcpy(thread, nbytes)

    # -- object registry (HeapBacked lifecycle) ------------------------

    def register_object(self, obj) -> None:
        self.live_object_count += 1

    def unregister_object(self, obj) -> None:
        self.live_object_count -= 1

    # -- footprint ------------------------

    def logical_footprint(self) -> int:
        """Live bytes as seen by an interposition-based profiler."""
        return self.pymalloc.live_bytes + self._native_live_bytes

    @property
    def native_live_bytes(self) -> int:
        return self._native_live_bytes

    def rss(self) -> int:
        """Resident set size (what RSS-proxy profilers report)."""
        return self.sysalloc.rss_bytes()

    def _update_peak(self) -> None:
        footprint = self.logical_footprint()
        if footprint > self.peak_footprint:
            self.peak_footprint = footprint
