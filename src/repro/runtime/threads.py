"""Simulated threads, locks, and the monkey-patchable threading surface.

CPython facts reproduced here (paper §2, §2.2):

* Only the **main** thread receives signals.
* A main thread blocked in ``Thread.join`` or ``Lock.acquire`` (no
  timeout) does not re-enter the interpreter loop, so pending signals are
  not delivered until it wakes — the starvation Scalene fixes by
  *monkey patching* the blocking calls to use timeouts.
* ``threading.enumerate()`` and ``sys._current_frames()`` expose every
  thread and its current Python frame; Scalene's subthread attribution is
  built on them.

The patch points live on :class:`SimThreading` (``join_impl``,
``acquire_impl``, ``sleep_impl``): replacing these attributes is the
simulation's analog of redefining ``threading.Thread.join`` at runtime.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SchedulerError, VMError
from repro.interp.code import Frame, SimFunction
from repro.interp.objects import BlockRequest

NEW = "new"
RUNNABLE = "runnable"
WAITING = "waiting"
FINISHED = "finished"

#: Sentinel distinguishing "no pending result" from a pending None result.
NO_RESULT = object()


class SimThread:
    """One simulated OS thread running simulated Python code."""

    _next_ident = 1

    def __init__(self, name: str, *, is_main: bool = False) -> None:
        self.ident = SimThread._next_ident
        SimThread._next_ident += 1
        self.name = name
        self.is_main = is_main
        self.state = NEW
        self.frame: Optional[Frame] = None
        self.cpu_time = 0.0
        self.block: Optional[BlockRequest] = None
        #: Source location of the call that blocked (for system-time GT).
        self.block_location = None
        #: Value to push on the frame stack when resuming from a block.
        self.pending_result: Any = NO_RESULT
        self.result: Any = None
        #: FIFO of small-object churn allocations owned by this thread.
        self.churn: deque = deque()
        self.started_at = 0.0
        self.finished_at = 0.0
        #: Per-thread NativeContext, cached by the VM on first native call.
        self.native_ctx = None

    @property
    def is_alive(self) -> bool:
        return self.state not in (FINISHED,)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimThread {self.name!r} ident={self.ident} {self.state}>"


class SimLock:
    """A simulated ``threading.Lock``."""

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self.owner: Optional[SimThread] = None

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def try_acquire(self, thread: SimThread) -> bool:
        if self.owner is None:
            self.owner = thread
            return True
        return False

    def release(self, thread: SimThread) -> None:
        if self.owner is not thread:
            raise VMError(f"release of {self.name} by non-owner thread {thread.name}")
        self.owner = None

    def sim_getattr(self, name: str):
        # Lock methods are provided natively by the builtins module, which
        # routes through the patchable SimThreading implementations.
        raise VMError(
            "use lock_acquire(lock)/lock_release(lock) builtins in workloads"
        )


class SimThreading:
    """The process's threading services, with Scalene's patch points.

    The three ``*_impl`` attributes are *monkey-patchable*: profilers may
    replace them with wrappers (and must restore them afterwards). Each
    impl returns ``None`` for "completed immediately" or a
    :class:`BlockRequest` to suspend the calling thread.
    """

    def __init__(self, process) -> None:
        self._process = process
        self.threads: List[SimThread] = []
        self.join_impl: Callable = self.default_join_impl
        self.acquire_impl: Callable = self.default_acquire_impl
        self.sleep_impl: Callable = self.default_sleep_impl

    # -- thread management ---------------------------------------------------

    def register(self, thread: SimThread) -> None:
        self.threads.append(thread)

    def spawn(self, fn: SimFunction, args: tuple, thread_name: str = "") -> SimThread:
        """Create and start a thread running ``fn(*args)``."""
        if not isinstance(fn, SimFunction):
            raise VMError("spawn() requires a simulated Python function")
        name = thread_name or f"Thread-{len(self.threads)}"
        thread = SimThread(name)
        self._process.start_thread(thread, fn, args)
        return thread

    def enumerate(self) -> List[SimThread]:
        """All live threads (``threading.enumerate()`` analog)."""
        return [t for t in self.threads if t.is_alive]

    def current_frames(self) -> Dict[int, Frame]:
        """``sys._current_frames()`` analog."""
        return {t.ident: t.frame for t in self.threads if t.is_alive and t.frame is not None}

    # -- default (unpatched) blocking implementations --------------------------

    def default_join_impl(self, ctx, target: SimThread, timeout: Optional[float] = None):
        """Block until ``target`` finishes. Without a timeout the wait is
        **not interruptible** — the signal-starvation behaviour of CPython's
        ``join`` that Scalene works around."""
        if target is ctx.thread:
            raise SchedulerError("a thread cannot join itself")
        if target.state == FINISHED:
            return None
        deadline = None
        if timeout is not None:
            deadline = ctx.process.clock.wall + timeout
        return BlockRequest(
            deadline=deadline,
            wake_check=lambda: target.state == FINISHED,
            interruptible=False,
        )

    def default_acquire_impl(self, ctx, lock: SimLock, timeout: Optional[float] = None):
        """Acquire ``lock``, blocking (uninterruptibly) until available."""
        thread = ctx.thread
        if lock.try_acquire(thread):
            return None

        def on_wake():
            if lock.try_acquire(thread):
                return None  # acquired; push None as the call result
            if timeout is not None and ctx.process.clock.wall >= wake_deadline:
                return None  # timed out (workloads treat acquire as void)
            return BlockRequest(
                deadline=wake_deadline,
                wake_check=lambda: not lock.locked,
                on_wake=on_wake,
                interruptible=False,
            )

        wake_deadline = None
        if timeout is not None:
            wake_deadline = ctx.process.clock.wall + timeout
        return BlockRequest(
            deadline=wake_deadline,
            wake_check=lambda: not lock.locked,
            on_wake=on_wake,
            interruptible=False,
        )

    def default_sleep_impl(self, ctx, seconds: float):
        """``time.sleep`` analog — interruptible by signals, as in CPython."""
        if seconds <= 0:
            return None
        return BlockRequest(
            deadline=ctx.process.clock.wall + seconds,
            interruptible=True,
        )
