"""Simulated threads, locks, and the monkey-patchable threading surface.

CPython facts reproduced here (paper §2, §2.2):

* Only the **main** thread receives signals.
* A main thread blocked in ``Thread.join`` or ``Lock.acquire`` (no
  timeout) does not re-enter the interpreter loop, so pending signals are
  not delivered until it wakes — the starvation Scalene fixes by
  *monkey patching* the blocking calls to use timeouts.
* ``threading.enumerate()`` and ``sys._current_frames()`` expose every
  thread and its current Python frame; Scalene's subthread attribution is
  built on them.

The patch points live on :class:`SimThreading` (``join_impl``,
``acquire_impl``, ``sleep_impl``): replacing these attributes is the
simulation's analog of redefining ``threading.Thread.join`` at runtime.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SchedulerError, VMError
from repro.interp.code import Frame, SimFunction
from repro.interp.objects import BlockRequest

NEW = "new"
RUNNABLE = "runnable"
WAITING = "waiting"
FINISHED = "finished"

#: Sentinel distinguishing "no pending result" from a pending None result.
NO_RESULT = object()


class SimThread:
    """One simulated OS thread running simulated Python code."""

    _next_ident = 1

    def __init__(self, name: str, *, is_main: bool = False) -> None:
        self.ident = SimThread._next_ident
        SimThread._next_ident += 1
        self.name = name
        self.is_main = is_main
        self.state = NEW
        self.frame: Optional[Frame] = None
        self.cpu_time = 0.0
        self.block: Optional[BlockRequest] = None
        #: Source location of the call that blocked (for system-time GT).
        self.block_location = None
        #: Value to push on the frame stack when resuming from a block.
        self.pending_result: Any = NO_RESULT
        self.result: Any = None
        #: FIFO of small-object churn allocations owned by this thread.
        self.churn: deque = deque()
        self.started_at = 0.0
        self.finished_at = 0.0
        #: Per-thread NativeContext, cached by the VM on first native call.
        self.native_ctx = None
        #: Set when this thread runs an asyncio-style task: the
        #: :class:`~repro.runtime.scheduler.TaskRecord` it executes and the
        #: :class:`~repro.runtime.scheduler.EventLoop` that owns it.
        self.task_record = None
        self.event_loop = None

    @property
    def is_alive(self) -> bool:
        return self.state not in (FINISHED,)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimThread {self.name!r} ident={self.ident} {self.state}>"


@dataclass(slots=True)
class LineLockStats:
    """Contention counters for one source line (absolute, mergeable)."""

    blocked_s: float = 0.0
    contentions: int = 0
    acquisitions: int = 0


@dataclass(slots=True)
class EdgeStats:
    """Accumulated wait time along one waiter→holder edge."""

    blocked_s: float = 0.0
    count: int = 0


class LockContentionRecorder:
    """Exact per-line blocked-time and who-blocks-whom accounting.

    Like the :class:`~repro.runtime.crossings.CrossingRecorder`, this is
    always on and exact — every contended acquisition is measured from
    the first failed ``try_acquire`` to the moment the lock is granted
    (or the wait abandoned on timeout), on the virtual wall clock. The
    blocking interval is attributed to the *acquiring line* (where the
    waiter sits), and the edge to the thread that held the lock when the
    wait began.
    """

    def __init__(self, clock) -> None:
        self._clock = clock
        #: (filename, lineno) -> LineLockStats.
        self.lines: Dict[Tuple[str, int], LineLockStats] = {}
        #: (waiter name, holder name, lock name) -> EdgeStats.
        self.edges: Dict[Tuple[str, str, str], EdgeStats] = {}
        #: In-flight waits: (thread ident, lock id) -> (start, holder, loc).
        self._pending: Dict[Tuple[int, int], Tuple[float, str, Optional[tuple]]] = {}
        self.total_blocked_s = 0.0
        self.total_contentions = 0
        self.total_acquisitions = 0

    def _line(self, location) -> Optional[LineLockStats]:
        if location is None:
            return None
        key = (location[0], location[1])
        line = self.lines.get(key)
        if line is None:
            line = self.lines[key] = LineLockStats()
        return line

    def note_blocked(self, thread: "SimThread", lock, holder) -> None:
        """A ``try_acquire`` failed; start timing unless already waiting."""
        key = (thread.ident, id(lock))
        if key in self._pending:
            return
        location = thread.frame.location() if thread.frame is not None else None
        holder_name = holder.name if holder is not None else "?"
        self._pending[key] = (self._clock.wall, holder_name, location)

    def note_acquired(self, thread: "SimThread", lock) -> None:
        """The lock was granted; settle any pending wait."""
        self.total_acquisitions += 1
        pending = self._pending.pop((thread.ident, id(lock)), None)
        if pending is None:
            # Uncontended: count the acquisition at the acquiring line.
            location = thread.frame.location() if thread.frame is not None else None
            line = self._line(location)
            if line is not None:
                line.acquisitions += 1
            return
        self._settle(thread, lock, pending, acquired=True)

    def note_abandoned(self, thread: "SimThread", lock) -> None:
        """A timed-out acquire gave up; the wait still happened."""
        pending = self._pending.pop((thread.ident, id(lock)), None)
        if pending is not None:
            self._settle(thread, lock, pending, acquired=False)

    def _settle(self, thread, lock, pending, *, acquired: bool) -> None:
        start, holder_name, location = pending
        blocked = max(self._clock.wall - start, 0.0)
        line = self._line(location)
        if line is not None:
            line.blocked_s += blocked
            line.contentions += 1
            if acquired:
                line.acquisitions += 1
        edge_key = (thread.name, holder_name, lock.name)
        edge = self.edges.get(edge_key)
        if edge is None:
            edge = self.edges[edge_key] = EdgeStats()
        edge.blocked_s += blocked
        edge.count += 1
        self.total_blocked_s += blocked
        self.total_contentions += 1


class SimLock:
    """A simulated ``threading.Lock``."""

    def __init__(self, name: str = "lock", recorder: Optional[LockContentionRecorder] = None) -> None:
        self.name = name
        self.owner: Optional[SimThread] = None
        self.recorder = recorder

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def try_acquire(self, thread: SimThread) -> bool:
        if self.owner is None:
            self.owner = thread
            if self.recorder is not None:
                self.recorder.note_acquired(thread, self)
            return True
        if self.recorder is not None:
            self.recorder.note_blocked(thread, self, self.owner)
        return False

    def give_up(self, thread: SimThread) -> None:
        """A timed-out acquire stopped waiting (contention still counts)."""
        if self.recorder is not None:
            self.recorder.note_abandoned(thread, self)

    def release(self, thread: SimThread) -> None:
        if self.owner is not thread:
            raise VMError(f"release of {self.name} by non-owner thread {thread.name}")
        self.owner = None

    def sim_getattr(self, name: str):
        # Lock methods are provided natively by the builtins module, which
        # routes through the patchable SimThreading implementations.
        raise VMError(
            "use lock_acquire(lock)/lock_release(lock) builtins in workloads"
        )


class SimSemaphore:
    """A simulated ``threading.Semaphore`` (counting).

    Shares the :class:`SimLock` acquire/release surface — ``locked``,
    ``try_acquire``, ``give_up``, ``release`` — so the patchable
    ``acquire_impl`` path (and Scalene's monkey patch) serves both. The
    representative "holder" reported on contention edges is the most
    recent acquirer still inside.
    """

    def __init__(
        self,
        name: str = "semaphore",
        value: int = 1,
        recorder: Optional[LockContentionRecorder] = None,
    ) -> None:
        if value < 1:
            raise VMError(f"semaphore initial value must be >= 1, got {value}")
        self.name = name
        self.value = value
        self.count = value
        self.recorder = recorder
        self.owner: Optional[SimThread] = None  # last acquirer, for edges

    @property
    def locked(self) -> bool:
        return self.count == 0

    def try_acquire(self, thread: SimThread) -> bool:
        if self.count > 0:
            self.count -= 1
            self.owner = thread
            if self.recorder is not None:
                self.recorder.note_acquired(thread, self)
            return True
        if self.recorder is not None:
            self.recorder.note_blocked(thread, self, self.owner)
        return False

    def give_up(self, thread: SimThread) -> None:
        if self.recorder is not None:
            self.recorder.note_abandoned(thread, self)

    def release(self, thread: SimThread) -> None:
        if self.count >= self.value:
            raise VMError(f"semaphore {self.name} released more times than acquired")
        self.count += 1

    def sim_getattr(self, name: str):
        raise VMError(
            "use sem_acquire(sem)/sem_release(sem) builtins in workloads"
        )


class SimThreading:
    """The process's threading services, with Scalene's patch points.

    The three ``*_impl`` attributes are *monkey-patchable*: profilers may
    replace them with wrappers (and must restore them afterwards). Each
    impl returns ``None`` for "completed immediately" or a
    :class:`BlockRequest` to suspend the calling thread.
    """

    def __init__(self, process) -> None:
        self._process = process
        self.threads: List[SimThread] = []
        self.join_impl: Callable = self.default_join_impl
        self.acquire_impl: Callable = self.default_acquire_impl
        self.sleep_impl: Callable = self.default_sleep_impl

    # -- thread management ---------------------------------------------------

    def register(self, thread: SimThread) -> None:
        self.threads.append(thread)

    def spawn(self, fn: SimFunction, args: tuple, thread_name: str = "") -> SimThread:
        """Create and start a thread running ``fn(*args)``."""
        if not isinstance(fn, SimFunction):
            raise VMError("spawn() requires a simulated Python function")
        name = thread_name or f"Thread-{len(self.threads)}"
        thread = SimThread(name)
        self._process.start_thread(thread, fn, args)
        return thread

    def enumerate(self) -> List[SimThread]:
        """All live threads (``threading.enumerate()`` analog)."""
        return [t for t in self.threads if t.is_alive]

    def current_frames(self) -> Dict[int, Frame]:
        """``sys._current_frames()`` analog."""
        return {t.ident: t.frame for t in self.threads if t.is_alive and t.frame is not None}

    # -- default (unpatched) blocking implementations --------------------------

    def default_join_impl(self, ctx, target: SimThread, timeout: Optional[float] = None):
        """Block until ``target`` finishes. Without a timeout the wait is
        **not interruptible** — the signal-starvation behaviour of CPython's
        ``join`` that Scalene works around."""
        if target is ctx.thread:
            raise SchedulerError("a thread cannot join itself")
        if target.state == FINISHED:
            return None
        deadline = None
        if timeout is not None:
            deadline = ctx.process.clock.wall + timeout
        return BlockRequest(
            deadline=deadline,
            wake_check=lambda: target.state == FINISHED,
            interruptible=False,
        )

    def default_acquire_impl(self, ctx, lock: SimLock, timeout: Optional[float] = None):
        """Acquire ``lock``, blocking (uninterruptibly) until available."""
        thread = ctx.thread
        if lock.try_acquire(thread):
            return None

        def on_wake():
            if lock.try_acquire(thread):
                return None  # acquired; push None as the call result
            if timeout is not None and ctx.process.clock.wall >= wake_deadline:
                lock.give_up(thread)
                return None  # timed out (workloads treat acquire as void)
            return BlockRequest(
                deadline=wake_deadline,
                wake_check=lambda: not lock.locked,
                on_wake=on_wake,
                interruptible=False,
            )

        wake_deadline = None
        if timeout is not None:
            wake_deadline = ctx.process.clock.wall + timeout
        return BlockRequest(
            deadline=wake_deadline,
            wake_check=lambda: not lock.locked,
            on_wake=on_wake,
            interruptible=False,
        )

    def default_sleep_impl(self, ctx, seconds: float):
        """``time.sleep`` analog — interruptible by signals, as in CPython."""
        if seconds <= 0:
            return None
        return BlockRequest(
            deadline=ctx.process.clock.wall + seconds,
            interruptible=True,
        )
