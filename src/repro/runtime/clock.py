"""The simulation's notion of time.

The simulated process runs on *virtual time*, fully decoupled from host
time. Two time bases exist, mirroring POSIX process clocks:

* **wall time** (``CLOCK_MONOTONIC`` / ``time.perf_counter``): advances
  whenever anything happens — CPU work, blocking IO, idle waits.
* **process CPU time** (``time.process_time``): advances only while some
  simulated thread is executing on the (single, GIL-guarded) CPU.

Because the simulated interpreter holds a GIL, at most one thread consumes
CPU at any instant, so process CPU time is the sum of per-thread CPU times
(per-thread accounting is kept by the scheduler on each thread object).

Observers may subscribe to time advancement; the
:class:`~repro.runtime.signals.SignalManager` uses this to expire interval
timers at exactly the right virtual instant.
"""

from __future__ import annotations

from typing import Callable, List

AdvanceCallback = Callable[[float, float], None]
"""Callback invoked as ``cb(wall_dt, cpu_dt)`` after every clock advance."""


class VirtualClock:
    """Monotonic virtual wall clock plus process CPU clock.

    Invariants:

    * both clocks are monotonically non-decreasing;
    * CPU time never advances faster than wall time
      (``cpu_dt <= wall_dt`` on every step).

    With a fault injector attached (``clock.faults``), an advance may
    additionally carry a forward wall-clock *jump* — the NTP-step /
    suspend-resume failure mode. Jumps only ever widen the wall side, so
    both invariants hold under any fault schedule.
    """

    __slots__ = ("_wall", "_cpu", "_observers", "faults")

    def __init__(self) -> None:
        self._wall = 0.0
        self._cpu = 0.0
        self._observers: List[AdvanceCallback] = []
        #: Optional :class:`repro.faults.FaultInjector` (clock-jump faults).
        self.faults = None

    # -- reading -----------------------------------------------------------

    @property
    def wall(self) -> float:
        """Current virtual wall time, seconds (``perf_counter`` analog)."""
        return self._wall

    @property
    def cpu(self) -> float:
        """Current process CPU time, seconds (``process_time`` analog)."""
        return self._cpu

    # -- observers ----------------------------------------------------------

    def subscribe(self, callback: AdvanceCallback) -> None:
        """Register ``callback(wall_dt, cpu_dt)`` to fire after advances."""
        self._observers.append(callback)

    def unsubscribe(self, callback: AdvanceCallback) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        try:
            self._observers.remove(callback)
        except ValueError:
            pass

    # -- advancing ----------------------------------------------------------

    def advance_cpu(self, dt: float) -> None:
        """A thread executed on-CPU for ``dt`` seconds.

        Advances both wall and CPU clocks.
        """
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        if dt == 0.0:
            return
        wall_dt = dt
        if self.faults is not None:
            wall_dt += self.faults.clock_jump()
        self._wall += wall_dt
        self._cpu += dt
        for cb in self._observers:
            cb(wall_dt, dt)

    def advance_wall(self, dt: float) -> None:
        """Wall time passed with no simulated CPU execution (IO wait, idle).

        Advances the wall clock only.
        """
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        if dt == 0.0:
            return
        wall_dt = dt
        if self.faults is not None:
            wall_dt += self.faults.clock_jump()
        self._wall += wall_dt
        for cb in self._observers:
            cb(wall_dt, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(wall={self._wall:.6f}, cpu={self._cpu:.6f})"
