"""Triangulate static lint findings with a dynamic Scalene profile.

The lints (:mod:`repro.staticcheck.lints`) say *this line has an
anti-pattern shape*; the profile says *this line costs something*. Joined
on the (filename, line) attribution key both sides share, each finding
gains measured evidence: its share of CPU time, of allocation activity,
and of copy volume. Findings on lines the profile filtered out (below
the paper's §5 1 % significance threshold) are **suppressed** — the
anti-pattern exists but demonstrably does not matter — and the rest are
ranked by measured cost, most expensive first. That ordering is the
whole point: a static linter alone drowns users in cold-path noise,
a profiler alone cannot explain *why* a line is slow; the join does both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.profile_data import LineReport, ProfileData
from repro.staticcheck.lints import Finding

#: The paper's §5 reporting threshold: lines below this share of every
#: measured dimension are insignificant.
DEFAULT_MIN_PERCENT = 1.0


@dataclass
class TriangulatedFinding:
    """A lint finding annotated with its measured cost."""

    finding: Finding
    #: Share of total CPU time on the finding's line (Python+native+system).
    cpu_percent: float
    #: Share of total allocation activity on the line.
    mem_activity_percent: float
    #: Share of total copy volume on the line.
    copy_percent: float
    #: Ranking key: the sum of the three shares.
    score: float
    #: True when the profile shows the line is too cold to matter.
    suppressed: bool
    #: Why it was suppressed ("" when active).
    reason: str = ""

    @property
    def lineno(self) -> int:
        return self.finding.lineno

    @property
    def detector(self) -> str:
        return self.finding.detector

    def __str__(self) -> str:
        state = f"suppressed: {self.reason}" if self.suppressed else f"{self.score:.1f}% measured"
        return (
            f"[{self.finding.detector}] {self.finding.filename}:{self.finding.lineno} "
            f"({state}): {self.finding.message} — {self.finding.suggestion}"
        )

    def to_dict(self) -> Dict:
        return {
            "detector": self.finding.detector,
            "filename": self.finding.filename,
            "lineno": self.finding.lineno,
            "function": self.finding.function,
            "message": self.finding.message,
            "suggestion": self.finding.suggestion,
            "cpu_percent": self.cpu_percent,
            "mem_activity_percent": self.mem_activity_percent,
            "copy_percent": self.copy_percent,
            "score": self.score,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


def _line_index(profile: ProfileData) -> Dict[Tuple[str, int], LineReport]:
    return {(line.filename, line.lineno): line for line in profile.lines}


def _copy_percent(profile: ProfileData, line: LineReport) -> float:
    if profile.total_copy_mb <= 0 or profile.elapsed <= 0:
        return 0.0
    line_copy_mb = line.copy_mb_s * profile.elapsed
    return 100.0 * line_copy_mb / profile.total_copy_mb


def triangulate(
    findings: Iterable[Finding],
    profile: ProfileData,
    *,
    min_percent: float = DEFAULT_MIN_PERCENT,
) -> List[TriangulatedFinding]:
    """Join ``findings`` with ``profile`` and rank by measured cost.

    Returns active findings first (highest score first), then suppressed
    ones (same order), so ``result[0]`` is always the most expensive
    confirmed anti-pattern.
    """
    index = _line_index(profile)
    out: List[TriangulatedFinding] = []
    for finding in findings:
        line = index.get((finding.filename, finding.lineno))
        if line is None:
            out.append(
                TriangulatedFinding(
                    finding=finding,
                    cpu_percent=0.0,
                    mem_activity_percent=0.0,
                    copy_percent=0.0,
                    score=0.0,
                    suppressed=True,
                    reason=f"line not in profile (below the {min_percent:g}% threshold)",
                )
            )
            continue
        cpu = line.cpu_total_percent
        mem = line.mem_activity_percent
        copy = _copy_percent(profile, line)
        score = cpu + mem + copy
        cold = cpu < min_percent and mem < min_percent and copy < min_percent
        out.append(
            TriangulatedFinding(
                finding=finding,
                cpu_percent=cpu,
                mem_activity_percent=mem,
                copy_percent=copy,
                score=score,
                suppressed=cold,
                reason=(
                    f"all measured shares below {min_percent:g}%" if cold else ""
                ),
            )
        )
    out.sort(key=lambda t: (t.suppressed, -t.score, t.finding.lineno))
    return out


def attach_lint(
    profile: ProfileData, triangulated: List[TriangulatedFinding]
) -> ProfileData:
    """Embed triangulated findings in the profile so every report backend
    (text, JSON, HTML) renders them alongside the measurements."""
    profile.lint_findings = list(triangulated)
    return profile


def lint_and_triangulate(
    source: str,
    profile: ProfileData,
    filename: str = "<workload>",
    *,
    min_percent: float = DEFAULT_MIN_PERCENT,
) -> List[TriangulatedFinding]:
    """Convenience: lint ``source`` and triangulate against ``profile``."""
    from repro.staticcheck.lints import lint_source

    findings = lint_source(source, filename)
    triangulated = triangulate(findings, profile, min_percent=min_percent)
    attach_lint(profile, triangulated)
    return triangulated


def triangulate_all(
    source: str,
    profile: ProfileData,
    filename: str = "<workload>",
    *,
    min_percent: float = DEFAULT_MIN_PERCENT,
    recorder=None,
):
    """Run both joins and attach them to ``profile``: the lint×cost
    triangulation above plus the boundary×crossings cross-flow analysis
    (:mod:`repro.analysis.crossflow`). Returns ``(triangulated,
    crossflow)``; the profile renders both in every backend."""
    from repro.analysis.crossflow import analyze_crossflow

    triangulated = lint_and_triangulate(
        source, profile, filename, min_percent=min_percent
    )
    crossflow = analyze_crossflow(source, profile, filename, recorder=recorder)
    return triangulated, crossflow
