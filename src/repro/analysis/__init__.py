"""Experiment drivers: overhead, accuracy, feature matrix, triangulation."""

from repro.analysis.overhead import OverheadResult, measure_overhead, overhead_table
from repro.analysis.accuracy import (
    ConformanceReport,
    cpu_accuracy_experiment,
    memory_accuracy_experiment,
    run_conformance,
)
from repro.analysis.comparison import feature_matrix
from repro.analysis.diffing import ProfileDiff, diff_profiles
from repro.analysis.crossflow import (
    CrossFlowFinding,
    analyze_crossflow,
    attach_crossflow,
    cross_flow,
)
from repro.analysis.triangulate import (
    TriangulatedFinding,
    attach_lint,
    lint_and_triangulate,
    triangulate,
    triangulate_all,
)

__all__ = [
    "CrossFlowFinding",
    "ProfileDiff",
    "diff_profiles",
    "OverheadResult",
    "measure_overhead",
    "overhead_table",
    "analyze_crossflow",
    "attach_crossflow",
    "ConformanceReport",
    "cpu_accuracy_experiment",
    "cross_flow",
    "memory_accuracy_experiment",
    "run_conformance",
    "feature_matrix",
    "TriangulatedFinding",
    "attach_lint",
    "lint_and_triangulate",
    "triangulate",
    "triangulate_all",
]
