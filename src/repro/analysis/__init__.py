"""Experiment drivers: overhead, accuracy, and the feature matrix."""

from repro.analysis.overhead import OverheadResult, measure_overhead, overhead_table
from repro.analysis.accuracy import (
    cpu_accuracy_experiment,
    memory_accuracy_experiment,
)
from repro.analysis.comparison import feature_matrix
from repro.analysis.diffing import ProfileDiff, diff_profiles

__all__ = [
    "ProfileDiff",
    "diff_profiles",
    "OverheadResult",
    "measure_overhead",
    "overhead_table",
    "cpu_accuracy_experiment",
    "memory_accuracy_experiment",
    "feature_matrix",
]
