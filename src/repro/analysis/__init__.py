"""Experiment drivers: overhead, accuracy, feature matrix, triangulation."""

from repro.analysis.overhead import OverheadResult, measure_overhead, overhead_table
from repro.analysis.accuracy import (
    cpu_accuracy_experiment,
    memory_accuracy_experiment,
)
from repro.analysis.comparison import feature_matrix
from repro.analysis.diffing import ProfileDiff, diff_profiles
from repro.analysis.triangulate import (
    TriangulatedFinding,
    attach_lint,
    lint_and_triangulate,
    triangulate,
)

__all__ = [
    "ProfileDiff",
    "diff_profiles",
    "OverheadResult",
    "measure_overhead",
    "overhead_table",
    "cpu_accuracy_experiment",
    "memory_accuracy_experiment",
    "feature_matrix",
    "TriangulatedFinding",
    "attach_lint",
    "lint_and_triangulate",
    "triangulate",
]
