"""Profiling-overhead measurement (Figures 7 and 8, Table 3).

Slowdown = (virtual wall time with profiler) / (virtual wall time bare).
The simulation is deterministic, so a single run per cell suffices where
the paper needed the interquartile mean of ten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.baselines import make_profiler
from repro.workloads.base import Workload


@dataclass
class OverheadResult:
    """Slowdowns for one profiler across the suite."""

    profiler: str
    slowdowns: Dict[str, float] = field(default_factory=dict)

    @property
    def median(self) -> float:
        values = sorted(self.slowdowns.values())
        if not values:
            return 0.0
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return (values[mid - 1] + values[mid]) / 2


def measure_overhead(
    workload: Workload,
    profiler_name: str,
    scale: float = 1.0,
    baseline_wall: Optional[float] = None,
) -> float:
    """Slowdown of one profiler on one workload."""
    if baseline_wall is None:
        bare = workload.make_process(scale)
        bare.run()
        baseline_wall = bare.clock.wall
    process = workload.make_process(scale)
    profiler = make_profiler(profiler_name, process)
    profiler.start()
    process.run()
    profiler.stop()
    return process.clock.wall / baseline_wall


def overhead_table(
    workloads: Iterable[Workload],
    profiler_names: Iterable[str],
    scale: float = 1.0,
) -> List[OverheadResult]:
    """The full Table 3 grid: every profiler on every workload."""
    workloads = list(workloads)
    names = list(profiler_names)
    baselines = {}
    for workload in workloads:
        bare = workload.make_process(scale)
        bare.run()
        baselines[workload.name] = bare.clock.wall
    results = []
    for name in names:
        result = OverheadResult(profiler=name)
        for workload in workloads:
            result.slowdowns[workload.name] = measure_overhead(
                workload, name, scale, baseline_wall=baselines[workload.name]
            )
        results.append(result)
    return results


def format_overhead_table(results: List[OverheadResult]) -> str:
    """Render results as the paper's Table 3 layout."""
    if not results:
        return "(no results)"
    workload_names = list(results[0].slowdowns)
    short = [name[:10] for name in workload_names]
    header = f"{'profiler':<18}" + "".join(f"{s:>11}" for s in short) + f"{'Median':>9}"
    lines = [header, "-" * len(header)]
    for result in results:
        row = f"{result.profiler:<18}"
        for name in workload_names:
            row += f"{result.slowdowns[name]:>10.2f}x"
        row += f"{result.median:>8.2f}x"
        lines.append(row)
    return "\n".join(lines)
