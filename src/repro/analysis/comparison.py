"""The Figure 1 feature matrix, generated from profiler capabilities."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines import all_profilers

_COLUMNS = [
    ("Lines/Funcs", lambda c: c.granularity),
    ("Unmodified", lambda c: "yes" if c.unmodified_code else "-"),
    ("Threads", lambda c: "yes" if c.threads else "-"),
    ("Multiproc", lambda c: "yes" if c.multiprocessing else "-"),
    ("Py vs C time", lambda c: "yes" if c.python_vs_c_time else "-"),
    ("Sys time", lambda c: "yes" if c.system_time else "-"),
    ("Memory", lambda c: c.memory_kind if c.profiles_memory else "-"),
    ("Py vs C mem", lambda c: "yes" if c.python_vs_c_memory else "-"),
    ("GPU", lambda c: "yes" if c.gpu else "-"),
    ("Trends", lambda c: "yes" if c.memory_trends else "-"),
    ("Copy vol", lambda c: "yes" if c.copy_volume else "-"),
    ("Leaks", lambda c: "yes" if c.detects_leaks else "-"),
]


def feature_matrix(medians: Optional[Dict[str, float]] = None) -> str:
    """Render the Figure 1 matrix; ``medians`` adds the slowdown column."""
    rows: List[str] = []
    header = f"{'Profiler':<18}{'Slowdown':>9}"
    for title, _fn in _COLUMNS:
        header += f"{title:>13}"
    rows.append(header)
    rows.append("-" * len(header))
    for name, cls in all_profilers().items():
        if name in ("rate_sampler", "tracemalloc"):
            continue  # algorithmic/stdlib baselines, not Figure 1 rows
        caps = cls.capabilities
        slowdown = ""
        if medians and name in medians:
            slowdown = f"{medians[name]:.2f}x"
        row = f"{name:<18}{slowdown:>9}"
        for _title, fn in _COLUMNS:
            row += f"{fn(caps):>13}"
        rows.append(row)
    return "\n".join(rows)
