"""Accuracy experiments (Figures 5 and 6) and the conformance harness.

* :func:`cpu_accuracy_experiment` — the function-bias microbenchmark:
  for each work split, compare every profiler's reported time for the
  function-call variant against the ground truth.
* :func:`memory_accuracy_experiment` — the 512 MiB partial-access array:
  compare each memory profiler's reported size against the true 512 MiB.
* :func:`run_conformance` — profiler-vs-ground-truth on one workload:
  a profiled run and an unprofiled oracle run at the same scale, with
  per-line CPU attribution errors and lock blocked-time error derived
  against the oracle's exact counters (aggregated across the oracle's
  whole process tree, so fork workloads compare like with like).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.baselines import make_profiler
from repro.baselines.base import BaselineReport
from repro.core import Scalene
from repro.core.profile_data import ProfileData
from repro.workloads import get_workload
from repro.workloads import membench as membench_mod
from repro.workloads import microbench as microbench_mod


@dataclass
class CpuAccuracyPoint:
    """One (x, y) point of Figure 5 for one profiler."""

    profiler: str
    actual_seconds: float
    reported_seconds: float

    @property
    def relative_error(self) -> float:
        if self.actual_seconds == 0:
            return 0.0
        return (self.reported_seconds - self.actual_seconds) / self.actual_seconds


def _with_call_reported_seconds(report: BaselineReport) -> float:
    """Time a baseline report attributes to the function-call variant."""
    if report.function_times:
        return sum(
            report.function_time(fn) for fn in microbench_mod.WITH_CALL_FUNCTIONS
        )
    return sum(
        report.line_time(lineno)
        for lineno in microbench_mod.WITH_CALL_LINES
    )


def cpu_accuracy_experiment(
    profiler_names: Iterable[str],
    call_fractions: Iterable[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
    scale: float = 1.0,
) -> Dict[str, List[CpuAccuracyPoint]]:
    """Run the Figure 5 sweep; returns points per profiler."""
    results: Dict[str, List[CpuAccuracyPoint]] = {name: [] for name in profiler_names}
    for fraction in call_fractions:
        workload = microbench_mod.microbenchmark(fraction)
        # Ground truth from an unprofiled oracle run.
        oracle = workload.make_process(scale, collect_ground_truth=True)
        oracle.run()
        gt = oracle.ground_truth
        actual = sum(
            gt.function_time(fn) for fn in microbench_mod.WITH_CALL_FUNCTIONS
        )
        for name in results:
            process = workload.make_process(scale)
            profiler = make_profiler(name, process)
            profiler.start()
            process.run()
            report = profiler.stop()
            results[name].append(
                CpuAccuracyPoint(
                    profiler=name,
                    actual_seconds=actual,
                    reported_seconds=_with_call_reported_seconds(report),
                )
            )
    return results


@dataclass
class MemoryAccuracyPoint:
    """One point of Figure 6: reported size at one touched fraction."""

    profiler: str
    touch_fraction: float
    reported_mb: float
    actual_mb: float = membench_mod.ARRAY_MB

    @property
    def relative_error(self) -> float:
        return (self.reported_mb - self.actual_mb) / self.actual_mb


def _reported_allocation_mb(name: str, report, process) -> float:
    """What each §6.3 profiler would claim the allocation's size to be."""
    if name in ("memory_profiler", "austin_full"):
        # RSS-based: sum of positive per-line RSS deltas (their notion of
        # memory "consumed" by the program's lines).
        return sum(mb for mb in report.line_memory_mb.values() if mb > 0)
    if report.peak_memory_mb is not None:
        return report.peak_memory_mb
    return sum(report.line_memory_mb.values())


def memory_accuracy_experiment(
    profiler_names: Iterable[str],
    touch_fractions: Iterable[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    scale: float = 1.0,
) -> Dict[str, List[MemoryAccuracyPoint]]:
    """Run the Figure 6 sweep; returns points per profiler.

    ``scalene_full`` is measured through its own profile (peak footprint);
    baselines through their reports.
    """
    results: Dict[str, List[MemoryAccuracyPoint]] = {
        name: [] for name in profiler_names
    }
    for fraction in touch_fractions:
        workload = membench_mod.membench(fraction)
        for name in results:
            process = workload.make_process(scale)
            if name == "scalene_full":
                profile = Scalene.run(process, mode="full")
                reported = profile.peak_footprint_mb
            else:
                profiler = make_profiler(name, process)
                profiler.start()
                process.run()
                report = profiler.stop()
                reported = _reported_allocation_mb(name, report, process)
            results[name].append(
                MemoryAccuracyPoint(
                    profiler=name, touch_fraction=fraction, reported_mb=reported
                )
            )
    return results


# ---------------------------------------------------------------------------
# Conformance: profiler vs. ground truth on one workload
# ---------------------------------------------------------------------------


@dataclass
class LineCpuError:
    """Per-line CPU attribution error, as a fraction of total GT CPU."""

    filename: str
    lineno: int
    profiled_s: float
    actual_s: float
    #: ``|profiled - actual| / total actual CPU`` — error in *points of
    #: the whole program's CPU*, so insignificant lines can't dominate.
    error_fraction: float


@dataclass
class ConformanceReport:
    """One profiled-vs-oracle comparison (the conformance suite's unit)."""

    workload: str
    scale: float
    profile: ProfileData
    line_errors: List[LineCpuError] = field(default_factory=list)
    gt_total_cpu_s: float = 0.0
    gt_lock_blocked_s: float = 0.0
    gt_line_blocked: Dict[Tuple[str, int], float] = field(default_factory=dict)
    #: Per-process (pid, parent_pid, wall_s, cpu_s) of the oracle tree.
    gt_processes: List[Tuple[int, object, float, float]] = field(
        default_factory=list
    )

    @property
    def worst_line_cpu_error(self) -> float:
        return max((e.error_fraction for e in self.line_errors), default=0.0)

    @property
    def lock_blocked_relative_error(self) -> float:
        if self.gt_lock_blocked_s == 0:
            return 0.0 if self.profile.total_lock_blocked_s == 0 else float("inf")
        return (
            abs(self.profile.total_lock_blocked_s - self.gt_lock_blocked_s)
            / self.gt_lock_blocked_s
        )


def _tree_ground_truth(root) -> Tuple[Dict[Tuple[str, int], float], float]:
    """Aggregate per-line python+native GT seconds over a process tree."""
    lines: Dict[Tuple[str, int], float] = {}
    total = 0.0
    for process in root.process_tree():
        gt = process.ground_truth
        if gt is None:
            continue
        total += gt.total_python_time + gt.total_native_time
        for key, truth in gt.lines.items():
            lines[key] = lines.get(key, 0.0) + truth.python_time + truth.native_time
    return lines, total


def run_conformance(
    workload_name: str,
    scale: float = 2.0,
    mode: str = "cpu",
    *,
    stitch_children: bool = True,
) -> ConformanceReport:
    """Profile a workload and compare against an unprofiled oracle run.

    Both runs use the same scale, so the simulated schedules are
    comparable (not identical: the profiler's patched blocking calls and
    sampling overhead perturb the profiled run — that perturbation is
    exactly what the error bounds quantify).
    """
    workload = get_workload(workload_name)
    process = workload.make_process(scale)
    profile = Scalene.run(process, mode=mode, stitch_children=stitch_children)

    oracle = workload.make_process(scale, collect_ground_truth=True)
    oracle.run()
    gt_lines, gt_total = _tree_ground_truth(oracle)

    total_cpu = (
        profile.cpu_python_time + profile.cpu_native_time + profile.cpu_system_time
    )
    errors: List[LineCpuError] = []
    keys = {(line.filename, line.lineno) for line in profile.lines} | set(gt_lines)
    for filename, lineno in sorted(keys):
        line = profile.line(lineno, filename)
        profiled = (
            (line.cpu_python_percent + line.cpu_native_percent) / 100.0 * total_cpu
            if line is not None
            else 0.0
        )
        actual = gt_lines.get((filename, lineno), 0.0)
        errors.append(
            LineCpuError(
                filename=filename,
                lineno=lineno,
                profiled_s=profiled,
                actual_s=actual,
                error_fraction=(
                    abs(profiled - actual) / gt_total if gt_total > 0 else 0.0
                ),
            )
        )

    lock_gt = oracle.lock_contention
    gt_line_blocked = {
        key: stats.blocked_s for key, stats in lock_gt.lines.items()
    }
    return ConformanceReport(
        workload=workload_name,
        scale=scale,
        profile=profile,
        line_errors=errors,
        gt_total_cpu_s=gt_total,
        gt_lock_blocked_s=lock_gt.total_blocked_s,
        gt_line_blocked=gt_line_blocked,
        gt_processes=[
            (p.pid, p.parent_pid, p.clock.wall, p.clock.cpu)
            for p in oracle.process_tree()
        ],
    )
