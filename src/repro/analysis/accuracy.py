"""Accuracy experiments (Figures 5 and 6).

* :func:`cpu_accuracy_experiment` — the function-bias microbenchmark:
  for each work split, compare every profiler's reported time for the
  function-call variant against the ground truth.
* :func:`memory_accuracy_experiment` — the 512 MiB partial-access array:
  compare each memory profiler's reported size against the true 512 MiB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.baselines import make_profiler
from repro.baselines.base import BaselineReport
from repro.core import Scalene
from repro.workloads import membench as membench_mod
from repro.workloads import microbench as microbench_mod


@dataclass
class CpuAccuracyPoint:
    """One (x, y) point of Figure 5 for one profiler."""

    profiler: str
    actual_seconds: float
    reported_seconds: float

    @property
    def relative_error(self) -> float:
        if self.actual_seconds == 0:
            return 0.0
        return (self.reported_seconds - self.actual_seconds) / self.actual_seconds


def _with_call_reported_seconds(report: BaselineReport) -> float:
    """Time a baseline report attributes to the function-call variant."""
    if report.function_times:
        return sum(
            report.function_time(fn) for fn in microbench_mod.WITH_CALL_FUNCTIONS
        )
    return sum(
        report.line_time(lineno)
        for lineno in microbench_mod.WITH_CALL_LINES
    )


def cpu_accuracy_experiment(
    profiler_names: Iterable[str],
    call_fractions: Iterable[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
    scale: float = 1.0,
) -> Dict[str, List[CpuAccuracyPoint]]:
    """Run the Figure 5 sweep; returns points per profiler."""
    results: Dict[str, List[CpuAccuracyPoint]] = {name: [] for name in profiler_names}
    for fraction in call_fractions:
        workload = microbench_mod.microbenchmark(fraction)
        # Ground truth from an unprofiled oracle run.
        oracle = workload.make_process(scale, collect_ground_truth=True)
        oracle.run()
        gt = oracle.ground_truth
        actual = sum(
            gt.function_time(fn) for fn in microbench_mod.WITH_CALL_FUNCTIONS
        )
        for name in results:
            process = workload.make_process(scale)
            profiler = make_profiler(name, process)
            profiler.start()
            process.run()
            report = profiler.stop()
            results[name].append(
                CpuAccuracyPoint(
                    profiler=name,
                    actual_seconds=actual,
                    reported_seconds=_with_call_reported_seconds(report),
                )
            )
    return results


@dataclass
class MemoryAccuracyPoint:
    """One point of Figure 6: reported size at one touched fraction."""

    profiler: str
    touch_fraction: float
    reported_mb: float
    actual_mb: float = membench_mod.ARRAY_MB

    @property
    def relative_error(self) -> float:
        return (self.reported_mb - self.actual_mb) / self.actual_mb


def _reported_allocation_mb(name: str, report, process) -> float:
    """What each §6.3 profiler would claim the allocation's size to be."""
    if name in ("memory_profiler", "austin_full"):
        # RSS-based: sum of positive per-line RSS deltas (their notion of
        # memory "consumed" by the program's lines).
        return sum(mb for mb in report.line_memory_mb.values() if mb > 0)
    if report.peak_memory_mb is not None:
        return report.peak_memory_mb
    return sum(report.line_memory_mb.values())


def memory_accuracy_experiment(
    profiler_names: Iterable[str],
    touch_fractions: Iterable[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    scale: float = 1.0,
) -> Dict[str, List[MemoryAccuracyPoint]]:
    """Run the Figure 6 sweep; returns points per profiler.

    ``scalene_full`` is measured through its own profile (peak footprint);
    baselines through their reports.
    """
    results: Dict[str, List[MemoryAccuracyPoint]] = {
        name: [] for name in profiler_names
    }
    for fraction in touch_fractions:
        workload = membench_mod.membench(fraction)
        for name in results:
            process = workload.make_process(scale)
            if name == "scalene_full":
                profile = Scalene.run(process, mode="full")
                reported = profile.peak_footprint_mb
            else:
                profiler = make_profiler(name, process)
                profiler.start()
                process.run()
                report = profiler.stop()
                reported = _reported_allocation_mb(name, report, process)
            results[name].append(
                MemoryAccuracyPoint(
                    profiler=name, touch_fraction=fraction, reported_mb=reported
                )
            )
    return results
