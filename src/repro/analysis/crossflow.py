"""Cross-flow analysis: static boundary findings × measured crossings.

The boundary lints (:data:`repro.staticcheck.lints.BOUNDARY_DETECTORS`)
say *this call shape crosses the Python↔native boundary wastefully*; the
runtime's :class:`~repro.runtime.crossings.CrossingRecorder` says *this
line crossed N times, paying M seconds of fixed marshalling overhead*.
Joined on the (filename, line) key both sides share, each static finding
gains measured evidence:

* **crossings / crossings per iteration** — how chatty the site really
  is. Iteration counts are not observable statically, so they are
  estimated from the loop body itself: a boundary call inside a natural
  loop executes once per iteration, so the *maximum* per-line crossing
  count over the loop's body lines is the iteration count, and the
  *sum* over the body divided by that maximum is crossings/iteration.
* **overhead share** — the fraction of the line's boundary time that is
  fixed crossing overhead rather than useful native work. A high share
  is the smoking gun for the "chatty" anti-pattern: the program pays
  for the trip, not the cargo.
* **estimated savings** — what batching would buy. Collapsing N
  crossings into one eliminates N-1 fixed overheads; removing a
  redundant round-trip conversion eliminates all of its overhead.

Findings whose line never crossed at runtime are kept but sorted last
with zero measured columns — the shape exists but did not execute (dead
or cold path), mirroring the suppression philosophy of
:mod:`repro.analysis.triangulate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.profile_data import ProfileData
from repro.staticcheck.lints import BoundaryFinding, boundary_findings_source

#: Detector whose fix removes the crossing outright (vs. batching it).
_ROUNDTRIP = "native-roundtrip-conversion"

#: Per-line measured counters: (crossings, overhead_s, native_s,
#: bytes_to_native, bytes_to_python).
_Counters = Tuple[int, float, float, int, int]

_ZERO: _Counters = (0, 0.0, 0.0, 0, 0)


@dataclass
class CrossFlowFinding:
    """A static boundary finding annotated with measured crossing cost."""

    detector: str
    filename: str
    lineno: int
    function: str
    message: str
    suggestion: str
    #: Measured crossings on the finding's line (exact, not sampled).
    crossings: int
    #: Loop-wide crossings per estimated iteration (0 outside loops).
    crossings_per_iteration: float
    #: Fixed crossing/marshalling overhead paid on the line.
    overhead_s: float
    #: Useful native work performed on the line.
    native_s: float
    #: Overhead as a share of the line's total boundary time.
    overhead_share_percent: float
    #: Bytes converted Python→native on the line.
    bytes_to_native: int
    #: Bytes converted native→Python on the line.
    bytes_to_python: int
    #: Overhead eliminated by the suggested rewrite.
    estimated_savings_s: float

    @property
    def confirmed(self) -> bool:
        """True when the runtime actually observed crossings here."""
        return self.crossings > 0

    def __str__(self) -> str:
        per_iter = (
            f", {self.crossings_per_iteration:.1f}/iteration"
            if self.crossings_per_iteration > 0
            else ""
        )
        state = (
            f"{self.crossings} crossings{per_iter}, "
            f"overhead {self.overhead_share_percent:.0f}% of boundary time"
            if self.confirmed
            else "not executed"
        )
        return (
            f"[{self.detector}] {self.filename}:{self.lineno} ({state}): "
            f"{self.message} — {self.suggestion}"
        )

    def to_dict(self) -> Dict:
        return {
            "detector": self.detector,
            "filename": self.filename,
            "lineno": self.lineno,
            "function": self.function,
            "message": self.message,
            "suggestion": self.suggestion,
            "crossings": self.crossings,
            "crossings_per_iteration": self.crossings_per_iteration,
            "overhead_s": self.overhead_s,
            "native_s": self.native_s,
            "overhead_share_percent": self.overhead_share_percent,
            "bytes_to_native": self.bytes_to_native,
            "bytes_to_python": self.bytes_to_python,
            "estimated_savings_s": self.estimated_savings_s,
        }


def _counters_from_profile(profile: ProfileData) -> Dict[Tuple[str, int], _Counters]:
    return {
        (line.filename, line.lineno): (
            line.crossings,
            line.crossing_overhead_s,
            line.crossing_native_s,
            line.bytes_to_native,
            line.bytes_to_python,
        )
        for line in profile.lines
        if line.crossings > 0
    }


def _counters_from_recorder(recorder) -> Dict[Tuple[str, int], _Counters]:
    return {
        key: (
            c.crossings,
            c.overhead_s,
            c.native_s,
            c.bytes_to_native,
            c.bytes_to_python,
        )
        for key, c in recorder.lines.items()
    }


def _iteration_estimate(
    finding: BoundaryFinding,
    filename: str,
    counters: Dict[Tuple[str, int], _Counters],
) -> Tuple[int, int]:
    """(estimated iterations, total loop-body crossings) for a loop finding.

    A boundary call in the loop body fires once per iteration, so the
    busiest body line gives the iteration count; summing over the body
    gives the loop's total chattiness.
    """
    per_line = [counters.get((filename, ln), _ZERO)[0] for ln in finding.loop_lines]
    if not per_line:
        return 0, 0
    return max(per_line), sum(per_line)


def cross_flow(
    boundary: Iterable[BoundaryFinding],
    profile: Optional[ProfileData] = None,
    *,
    recorder=None,
) -> List[CrossFlowFinding]:
    """Join static boundary findings with measured crossing counters.

    Counters come from ``recorder`` (a live
    :class:`~repro.runtime.crossings.CrossingRecorder`, exact for every
    line) when given, else from ``profile``'s per-line fields (exact,
    but only for lines that survived the significance filter).
    """
    if recorder is not None:
        counters = _counters_from_recorder(recorder)
    elif profile is not None:
        counters = _counters_from_profile(profile)
    else:
        counters = {}

    out: List[CrossFlowFinding] = []
    for b in boundary:
        f = b.finding
        crossings, overhead_s, native_s, to_native, to_python = counters.get(
            (f.filename, f.lineno), _ZERO
        )
        iterations, loop_total = _iteration_estimate(b, f.filename, counters)
        per_iteration = loop_total / iterations if iterations else 0.0
        boundary_time = overhead_s + native_s
        share = 100.0 * overhead_s / boundary_time if boundary_time > 0 else 0.0
        if f.detector == _ROUNDTRIP:
            # The fix removes the conversion: all of its overhead goes.
            savings = overhead_s
        elif crossings > 1:
            # Batching collapses N crossings into one.
            savings = overhead_s * (crossings - 1) / crossings
        else:
            savings = 0.0
        out.append(
            CrossFlowFinding(
                detector=f.detector,
                filename=f.filename,
                lineno=f.lineno,
                function=f.function,
                message=f.message,
                suggestion=f.suggestion,
                crossings=crossings,
                crossings_per_iteration=per_iteration,
                overhead_s=overhead_s,
                native_s=native_s,
                overhead_share_percent=share,
                bytes_to_native=to_native,
                bytes_to_python=to_python,
                estimated_savings_s=savings,
            )
        )
    out.sort(key=lambda c: (c.crossings == 0, -c.overhead_s, c.lineno))
    return out


def attach_crossflow(
    profile: ProfileData, findings: List[CrossFlowFinding]
) -> ProfileData:
    """Embed cross-flow findings in the profile so every report backend
    (text, JSON, HTML) renders them alongside the measurements."""
    profile.crossflow_findings = list(findings)
    return profile


def analyze_crossflow(
    source: str,
    profile: ProfileData,
    filename: str = "<workload>",
    *,
    recorder=None,
) -> List[CrossFlowFinding]:
    """Convenience: boundary-lint ``source``, join with ``profile``, attach."""
    boundary = boundary_findings_source(source, filename)
    findings = cross_flow(boundary, profile, recorder=recorder)
    attach_crossflow(profile, findings)
    return findings
