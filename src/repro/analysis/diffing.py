"""Profile diffing: compare two Scalene profiles of the same program.

The §7 case studies all follow the same loop — profile, optimize,
re-profile, verify the change moved the needle. This module automates the
comparison: per-line CPU/memory/copy deltas between a *before* and an
*after* profile, plus the headline speedup, so the verification step is
one function call.

The two profiles may cover completely disjoint file/line sets (an
optimization can rewrite a file wholesale); anything present on only one
side diffs against zero. The same rule applies to the per-function and
per-leak deltas, so the continuous-profiling service
(:mod:`repro.serve`) can diff any two stored profiles without
precondition checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.profile_data import ProfileData


@dataclass
class LineDelta:
    """The change on one line between two profiles (after − before)."""

    filename: str
    lineno: int
    source: str
    cpu_percent_delta: float
    mem_peak_mb_delta: float
    copy_mb_s_delta: float

    def to_dict(self) -> Dict:
        return {
            "filename": self.filename,
            "lineno": self.lineno,
            "source": self.source,
            "cpu_percent_delta": self.cpu_percent_delta,
            "mem_peak_mb_delta": self.mem_peak_mb_delta,
            "copy_mb_s_delta": self.copy_mb_s_delta,
        }


@dataclass
class FunctionDelta:
    """The change in one function's aggregate between two profiles."""

    filename: str
    function: str
    cpu_percent_delta: float
    malloc_mb_delta: float
    copy_mb_delta: float

    def to_dict(self) -> Dict:
        return {
            "filename": self.filename,
            "function": self.function,
            "cpu_percent_delta": self.cpu_percent_delta,
            "malloc_mb_delta": self.malloc_mb_delta,
            "copy_mb_delta": self.copy_mb_delta,
        }


@dataclass
class LeakDelta:
    """The change in one leak site's score between two profiles.

    A site reported only *before* shows a negative likelihood delta (the
    leak was fixed); only *after*, a positive one (a new leak appeared).
    """

    filename: str
    lineno: int
    function: str
    likelihood_delta: float
    leak_rate_mb_s_delta: float

    def to_dict(self) -> Dict:
        return {
            "filename": self.filename,
            "lineno": self.lineno,
            "function": self.function,
            "likelihood_delta": self.likelihood_delta,
            "leak_rate_mb_s_delta": self.leak_rate_mb_s_delta,
        }


@dataclass
class ProfileDiff:
    """The full comparison between two profiles."""

    elapsed_before: float
    elapsed_after: float
    peak_mb_before: float
    peak_mb_after: float
    copy_mb_before: float
    copy_mb_after: float
    line_deltas: List[LineDelta] = field(default_factory=list)
    function_deltas: List[FunctionDelta] = field(default_factory=list)
    leak_deltas: List[LeakDelta] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        if self.elapsed_after <= 0:
            return float("inf")
        return self.elapsed_before / self.elapsed_after

    @property
    def memory_saved_mb(self) -> float:
        return self.peak_mb_before - self.peak_mb_after

    def hottest_improvements(self, top: int = 5) -> List[LineDelta]:
        """Lines whose CPU share dropped the most (the fixed hotspots)."""
        return sorted(self.line_deltas, key=lambda d: d.cpu_percent_delta)[:top]

    def regressions(self, threshold_percent: float = 2.0) -> List[LineDelta]:
        """Lines whose CPU share *grew* by more than the threshold."""
        return sorted(
            (d for d in self.line_deltas if d.cpu_percent_delta > threshold_percent),
            key=lambda d: -d.cpu_percent_delta,
        )

    def to_dict(self) -> Dict:
        """JSON-ready payload (served by the daemon's ``/diff`` endpoint)."""
        speedup = self.speedup
        return {
            "elapsed_before_s": self.elapsed_before,
            "elapsed_after_s": self.elapsed_after,
            "speedup": speedup if speedup != float("inf") else None,
            "peak_mb_before": self.peak_mb_before,
            "peak_mb_after": self.peak_mb_after,
            "memory_saved_mb": self.memory_saved_mb,
            "copy_mb_before": self.copy_mb_before,
            "copy_mb_after": self.copy_mb_after,
            "lines": [d.to_dict() for d in self.line_deltas],
            "functions": [d.to_dict() for d in self.function_deltas],
            "leaks": [d.to_dict() for d in self.leak_deltas],
            "regressions": [d.to_dict() for d in self.regressions()],
        }

    def render_text(self) -> str:
        out = [
            f"elapsed: {self.elapsed_before:.2f}s -> {self.elapsed_after:.2f}s "
            f"({self.speedup:.1f}x speedup)",
            f"peak memory: {self.peak_mb_before:.1f} MB -> "
            f"{self.peak_mb_after:.1f} MB ({self.memory_saved_mb:+.1f} MB saved)",
            f"copy volume: {self.copy_mb_before:.1f} MB -> {self.copy_mb_after:.1f} MB",
        ]
        improvements = self.hottest_improvements()
        if improvements:
            out.append("biggest line improvements (CPU share):")
            for delta in improvements:
                if delta.cpu_percent_delta >= 0:
                    break
                out.append(
                    f"  {delta.filename}:{delta.lineno:<4} "
                    f"{delta.cpu_percent_delta:+6.1f}%  {delta.source.strip()[:50]}"
                )
        regressions = self.regressions()
        if regressions:
            out.append("regressions (CPU share):")
            for delta in regressions:
                out.append(
                    f"  {delta.filename}:{delta.lineno:<4} "
                    f"{delta.cpu_percent_delta:+6.1f}%  {delta.source.strip()[:50]}"
                )
        fixed = [d for d in self.leak_deltas if d.likelihood_delta < 0]
        appeared = [d for d in self.leak_deltas if d.likelihood_delta > 0]
        if fixed:
            out.append("leaks fixed:")
            for delta in fixed:
                out.append(f"  {delta.filename}:{delta.lineno} ({delta.function})")
        if appeared:
            out.append("new leaks:")
            for delta in appeared:
                out.append(
                    f"  {delta.filename}:{delta.lineno} ({delta.function}) "
                    f"likelihood {delta.likelihood_delta:+.0%}"
                )
        return "\n".join(out)


def diff_profiles(before: ProfileData, after: ProfileData) -> ProfileDiff:
    """Compare two profiles line by line (matched on filename:lineno).

    Lines, functions, and leak sites present in only one profile are
    treated as 0 in the other — an optimization that removes a line
    entirely shows as its full share recovered, and the profiles may
    have entirely disjoint file/line sets.
    """
    before_lines = {(l.filename, l.lineno): l for l in before.lines}
    after_lines = {(l.filename, l.lineno): l for l in after.lines}
    deltas = []
    for key in sorted(before_lines.keys() | after_lines.keys()):
        b = before_lines.get(key)
        a = after_lines.get(key)
        source = (a.source if a else (b.source if b else "")) or ""
        deltas.append(
            LineDelta(
                filename=key[0],
                lineno=key[1],
                source=source,
                cpu_percent_delta=(a.cpu_total_percent if a else 0.0)
                - (b.cpu_total_percent if b else 0.0),
                mem_peak_mb_delta=(a.mem_peak_mb if a else 0.0)
                - (b.mem_peak_mb if b else 0.0),
                copy_mb_s_delta=(a.copy_mb_s if a else 0.0)
                - (b.copy_mb_s if b else 0.0),
            )
        )

    before_fns = {(f.filename, f.function): f for f in before.functions}
    after_fns = {(f.filename, f.function): f for f in after.functions}
    function_deltas = []
    for key in sorted(before_fns.keys() | after_fns.keys()):
        b = before_fns.get(key)
        a = after_fns.get(key)
        function_deltas.append(
            FunctionDelta(
                filename=key[0],
                function=key[1],
                cpu_percent_delta=(a.cpu_total_percent if a else 0.0)
                - (b.cpu_total_percent if b else 0.0),
                malloc_mb_delta=(a.malloc_mb if a else 0.0)
                - (b.malloc_mb if b else 0.0),
                copy_mb_delta=(a.copy_mb if a else 0.0) - (b.copy_mb if b else 0.0),
            )
        )

    before_leaks = {(l.filename, l.lineno, l.function): l for l in before.leaks}
    after_leaks = {(l.filename, l.lineno, l.function): l for l in after.leaks}
    leak_deltas = []
    for key in sorted(before_leaks.keys() | after_leaks.keys()):
        b = before_leaks.get(key)
        a = after_leaks.get(key)
        leak_deltas.append(
            LeakDelta(
                filename=key[0],
                lineno=key[1],
                function=key[2],
                likelihood_delta=(a.likelihood if a else 0.0)
                - (b.likelihood if b else 0.0),
                leak_rate_mb_s_delta=(a.leak_rate_mb_s if a else 0.0)
                - (b.leak_rate_mb_s if b else 0.0),
            )
        )

    return ProfileDiff(
        elapsed_before=before.elapsed,
        elapsed_after=after.elapsed,
        peak_mb_before=before.peak_footprint_mb,
        peak_mb_after=after.peak_footprint_mb,
        copy_mb_before=before.total_copy_mb,
        copy_mb_after=after.total_copy_mb,
        line_deltas=deltas,
        function_deltas=function_deltas,
        leak_deltas=leak_deltas,
    )
