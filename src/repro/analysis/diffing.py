"""Profile diffing: compare two Scalene profiles of the same program.

The §7 case studies all follow the same loop — profile, optimize,
re-profile, verify the change moved the needle. This module automates the
comparison: per-line CPU/memory/copy deltas between a *before* and an
*after* profile, plus the headline speedup, so the verification step is
one function call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.profile_data import ProfileData


@dataclass
class LineDelta:
    """The change on one line between two profiles (after − before)."""

    filename: str
    lineno: int
    source: str
    cpu_percent_delta: float
    mem_peak_mb_delta: float
    copy_mb_s_delta: float


@dataclass
class ProfileDiff:
    """The full comparison between two profiles."""

    elapsed_before: float
    elapsed_after: float
    peak_mb_before: float
    peak_mb_after: float
    copy_mb_before: float
    copy_mb_after: float
    line_deltas: List[LineDelta] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        if self.elapsed_after <= 0:
            return float("inf")
        return self.elapsed_before / self.elapsed_after

    @property
    def memory_saved_mb(self) -> float:
        return self.peak_mb_before - self.peak_mb_after

    def hottest_improvements(self, top: int = 5) -> List[LineDelta]:
        """Lines whose CPU share dropped the most (the fixed hotspots)."""
        return sorted(self.line_deltas, key=lambda d: d.cpu_percent_delta)[:top]

    def regressions(self, threshold_percent: float = 2.0) -> List[LineDelta]:
        """Lines whose CPU share *grew* by more than the threshold."""
        return sorted(
            (d for d in self.line_deltas if d.cpu_percent_delta > threshold_percent),
            key=lambda d: -d.cpu_percent_delta,
        )

    def render_text(self) -> str:
        out = [
            f"elapsed: {self.elapsed_before:.2f}s -> {self.elapsed_after:.2f}s "
            f"({self.speedup:.1f}x speedup)",
            f"peak memory: {self.peak_mb_before:.1f} MB -> "
            f"{self.peak_mb_after:.1f} MB ({self.memory_saved_mb:+.1f} MB saved)",
            f"copy volume: {self.copy_mb_before:.1f} MB -> {self.copy_mb_after:.1f} MB",
        ]
        improvements = self.hottest_improvements()
        if improvements:
            out.append("biggest line improvements (CPU share):")
            for delta in improvements:
                if delta.cpu_percent_delta >= 0:
                    break
                out.append(
                    f"  {delta.filename}:{delta.lineno:<4} "
                    f"{delta.cpu_percent_delta:+6.1f}%  {delta.source.strip()[:50]}"
                )
        regressions = self.regressions()
        if regressions:
            out.append("regressions (CPU share):")
            for delta in regressions:
                out.append(
                    f"  {delta.filename}:{delta.lineno:<4} "
                    f"{delta.cpu_percent_delta:+6.1f}%  {delta.source.strip()[:50]}"
                )
        return "\n".join(out)


def diff_profiles(before: ProfileData, after: ProfileData) -> ProfileDiff:
    """Compare two profiles line by line (matched on filename:lineno).

    Lines present in only one profile are treated as 0 in the other —
    an optimization that removes a line entirely shows as its full share
    recovered.
    """
    keys = {(l.filename, l.lineno) for l in before.lines}
    keys |= {(l.filename, l.lineno) for l in after.lines}
    deltas = []
    for filename, lineno in sorted(keys):
        b = before.line(lineno, filename)
        a = after.line(lineno, filename)
        source = (a.source if a else (b.source if b else "")) or ""
        deltas.append(
            LineDelta(
                filename=filename,
                lineno=lineno,
                source=source,
                cpu_percent_delta=(a.cpu_total_percent if a else 0.0)
                - (b.cpu_total_percent if b else 0.0),
                mem_peak_mb_delta=(a.mem_peak_mb if a else 0.0)
                - (b.mem_peak_mb if b else 0.0),
                copy_mb_s_delta=(a.copy_mb_s if a else 0.0)
                - (b.copy_mb_s if b else 0.0),
            )
        )
    return ProfileDiff(
        elapsed_before=before.elapsed,
        elapsed_after=after.elapsed,
        peak_mb_before=before.peak_footprint_mb,
        peak_mb_after=after.peak_footprint_mb,
        copy_mb_before=before.total_copy_mb,
        copy_mb_after=after.total_copy_mb,
        line_deltas=deltas,
    )
