"""Interprocedural call graph over module-level functions.

Nodes are the functions a module defines (``MAKE_FUNCTION`` +
``STORE_NAME``, the only definition form in this instruction set) plus
the module body itself; edges are resolved syntactically through the
same LOAD_ATTR/LOAD_NAME dataflow the lints use
(:func:`~repro.staticcheck.dataflow.qualified_callee`). Each node also
records its *native call sites* — calls into a native-library root like
``np.get(...)`` — and the graph answers reachability questions over
them, which is what lets the boundary detectors see through one level
of helper functions ("this loop calls ``process_row``, which does
element-wise native calls").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.interp import opcodes as op
from repro.interp.code import CodeObject
from repro.staticcheck.cfg import build_cfg
from repro.staticcheck.dataflow import qualified_callee, symbolic_trace

#: Globals under which the simulated native libraries are installed.
NATIVE_ROOTS = frozenset({"np", "pd", "torch", "io", "mp"})

#: A native call site: (root, attr, lineno), e.g. ("np", "get", 12).
NativeSite = Tuple[str, str, int]

#: Name of the synthetic node for the module body.
MODULE_NODE = "<module>"


@dataclass
class FunctionNode:
    """One call-graph node: a module function (or the module body)."""

    name: str
    code: CodeObject
    #: Module-level functions this one calls directly (resolved names).
    calls: List[str] = field(default_factory=list)
    #: Direct calls into native-library roots.
    native_sites: List[NativeSite] = field(default_factory=list)


class CallGraph:
    """The module's call graph with native-reachability queries."""

    def __init__(self, nodes: Dict[str, FunctionNode], native_roots: FrozenSet[str]) -> None:
        self.nodes = nodes
        self.native_roots = native_roots
        self._reachable_cache: Dict[str, FrozenSet[str]] = {}

    def node(self, name: str) -> Optional[FunctionNode]:
        return self.nodes.get(name)

    def reachable_functions(self, name: str) -> FrozenSet[str]:
        """Functions transitively callable from ``name`` (itself included)."""
        cached = self._reachable_cache.get(name)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        work = [name]
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            node = self.nodes.get(current)
            if node is not None:
                work.extend(node.calls)
        result = frozenset(seen)
        self._reachable_cache[name] = result
        return result

    def transitive_native_sites(self, name: str) -> List[NativeSite]:
        """Every native call site reachable from ``name``, in call order."""
        sites: List[NativeSite] = []
        for fname in sorted(self.reachable_functions(name)):
            node = self.nodes.get(fname)
            if node is not None:
                sites.extend(node.native_sites)
        return sites

    def calls_native(self, name: str) -> bool:
        """True when ``name`` (transitively) crosses the native boundary."""
        return bool(self.transitive_native_sites(name))


def _function_codes(module_code: CodeObject) -> Dict[str, CodeObject]:
    """Map module-level function names to their code objects."""
    out: Dict[str, CodeObject] = {}
    instructions = module_code.instructions
    for i, instr in enumerate(instructions):
        if instr.opcode != op.MAKE_FUNCTION:
            continue
        if i + 1 < len(instructions) and instructions[i + 1].opcode == op.STORE_NAME:
            const = module_code.constants[instr.arg]
            if isinstance(const, CodeObject):
                out[instructions[i + 1].arg] = const
    return out


def _edges_of(
    code: CodeObject, functions: Dict[str, CodeObject], native_roots: FrozenSet[str]
) -> Tuple[List[str], List[NativeSite]]:
    """Resolve one code object's outgoing call edges and native sites."""
    cfg = build_cfg(code)
    trace = symbolic_trace(code, cfg)
    calls: List[str] = []
    native_sites: List[NativeSite] = []
    for index in sorted(trace.nodes):
        node = trace.nodes[index]
        if node.opcode not in (op.CALL, op.CALL_METHOD):
            continue
        qc = qualified_callee(node)
        if qc is None:
            continue
        root, attr = qc
        if root is None:
            if attr in functions and attr not in calls:
                calls.append(attr)
        elif root in native_roots:
            native_sites.append((root, attr, node.lineno))
    return calls, native_sites


def build_call_graph(
    module_code: CodeObject, native_roots: FrozenSet[str] = NATIVE_ROOTS
) -> CallGraph:
    """Build the call graph of a compiled module."""
    functions = _function_codes(module_code)
    nodes: Dict[str, FunctionNode] = {}
    for name, code in functions.items():
        calls, native_sites = _edges_of(code, functions, native_roots)
        nodes[name] = FunctionNode(
            name=name, code=code, calls=calls, native_sites=native_sites
        )
    module_calls, module_sites = _edges_of(module_code, functions, native_roots)
    nodes[MODULE_NODE] = FunctionNode(
        name=MODULE_NODE,
        code=module_code,
        calls=module_calls,
        native_sites=module_sites,
    )
    return CallGraph(nodes, native_roots)
