"""Static analysis over the simulated bytecode (verifier, CFG, lints).

This package turns the repository from "measures" into "measures *and*
diagnoses": a bytecode **verifier** hardens the VM against malformed
code objects, a **CFG/dataflow framework** provides basic blocks,
dominators, natural loops and reaching definitions, and a **lint pass**
statically recognizes the performance anti-patterns of the paper's §7
case studies. :mod:`repro.analysis.triangulate` joins lint findings with
a Scalene profile to rank them by measured cost.

Layering: ``staticcheck`` sits beside the profilers and imports only
``repro.interp`` (plus ``repro.errors``) — it never touches the runtime.
"""

from repro.staticcheck.callgraph import (
    NATIVE_ROOTS,
    CallGraph,
    FunctionNode,
    build_call_graph,
)
from repro.staticcheck.cfg import CFG, BasicBlock, Loop, build_cfg
from repro.staticcheck.dataflow import (
    ReachingDefinitions,
    SymbolicTrace,
    ValueNode,
    invariant_names,
    qualified_callee,
    reaching_definitions,
    symbolic_trace,
    variant_names,
)
from repro.staticcheck.effects import jump_edge_delta, stack_effect
from repro.staticcheck.lints import (
    BATCHED_EQUIVALENTS,
    BOUNDARY_DETECTORS,
    DETECTOR_SEVERITY,
    DETECTORS,
    SEVERITY_RANK,
    BoundaryFinding,
    Finding,
    boundary_findings,
    boundary_findings_source,
    lint_code,
    lint_source,
)
from repro.staticcheck.verifier import (
    DeadCode,
    VerificationError,
    VerificationReport,
    verify_code,
)

__all__ = [
    "BATCHED_EQUIVALENTS",
    "BOUNDARY_DETECTORS",
    "BasicBlock",
    "BoundaryFinding",
    "CFG",
    "CallGraph",
    "DETECTORS",
    "DETECTOR_SEVERITY",
    "DeadCode",
    "Finding",
    "FunctionNode",
    "Loop",
    "NATIVE_ROOTS",
    "ReachingDefinitions",
    "SEVERITY_RANK",
    "SymbolicTrace",
    "ValueNode",
    "VerificationError",
    "VerificationReport",
    "boundary_findings",
    "boundary_findings_source",
    "build_call_graph",
    "build_cfg",
    "invariant_names",
    "jump_edge_delta",
    "lint_code",
    "lint_source",
    "qualified_callee",
    "reaching_definitions",
    "stack_effect",
    "symbolic_trace",
    "variant_names",
    "verify_code",
]
