"""Control-flow graph, dominators, and natural-loop detection.

Built once per :class:`~repro.interp.code.CodeObject`, the CFG is the
shared substrate of the verifier (stack simulation per basic block), the
dataflow analyses (reaching definitions), and the performance lints
(anything "inside a loop" is defined by natural-loop membership here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.interp import opcodes as op
from repro.interp.code import CodeObject
from repro.staticcheck.effects import BRANCHES, TERMINATORS, jump_target


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence ``[start, end)``."""

    index: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def instruction_indices(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<B{self.index} [{self.start}:{self.end}] -> {self.successors}>"


@dataclass
class Loop:
    """A natural loop: a back edge ``tail -> header`` plus its body."""

    header: int
    #: Block indices belonging to the loop (header included).
    blocks: FrozenSet[int]
    #: The block whose back edge defines the loop.
    tail: int
    #: Source line of the loop header (the ``for``/``while`` line).
    header_line: int


class CFG:
    """The control-flow graph of one code object."""

    def __init__(self, code: CodeObject, blocks: List[BasicBlock]) -> None:
        self.code = code
        self.blocks = blocks
        #: instruction index -> owning block index.
        self.block_of_instr: Dict[int, int] = {}
        for block in blocks:
            for i in block.instruction_indices():
                self.block_of_instr[i] = block.index
        self._dominators: Optional[List[Set[int]]] = None
        self._loops: Optional[List[Loop]] = None

    # -- reachability --------------------------------------------------------

    def reachable_blocks(self) -> Set[int]:
        """Block indices reachable from the entry block."""
        if not self.blocks:
            return set()
        seen: Set[int] = set()
        work = [0]
        while work:
            b = work.pop()
            if b in seen:
                continue
            seen.add(b)
            work.extend(self.blocks[b].successors)
        return seen

    # -- dominators ----------------------------------------------------------

    def dominators(self) -> List[Set[int]]:
        """``dominators()[b]`` = set of blocks dominating block ``b``.

        Classic iterative forward dataflow over reachable blocks;
        unreachable blocks dominate nothing and are dominated by all
        (the conventional lattice top), which keeps loop detection from
        tripping over dead code.
        """
        if self._dominators is not None:
            return self._dominators
        n = len(self.blocks)
        reachable = self.reachable_blocks()
        all_blocks = set(range(n))
        dom: List[Set[int]] = [set(all_blocks) for _ in range(n)]
        if n:
            dom[0] = {0}
        changed = True
        while changed:
            changed = False
            for b in range(1, n):
                if b not in reachable:
                    continue
                preds = [p for p in self.blocks[b].predecessors if p in reachable]
                if not preds:
                    continue
                new = set.intersection(*(dom[p] for p in preds)) | {b}
                if new != dom[b]:
                    dom[b] = new
                    changed = True
        self._dominators = dom
        return dom

    # -- loops ----------------------------------------------------------------

    def natural_loops(self) -> List[Loop]:
        """All natural loops (back edge ``t -> h`` with ``h`` dominating ``t``).

        Loops sharing a header are merged, so a ``while`` with two back
        edges (e.g. an explicit ``continue``) is reported once.
        """
        if self._loops is not None:
            return self._loops
        dom = self.dominators()
        reachable = self.reachable_blocks()
        bodies: Dict[int, Set[int]] = {}
        tails: Dict[int, int] = {}
        for block in self.blocks:
            if block.index not in reachable:
                continue
            for succ in block.successors:
                if succ in dom[block.index]:  # back edge: succ dominates block
                    body = bodies.setdefault(succ, {succ})
                    tails.setdefault(succ, block.index)
                    # Walk predecessors backwards from the tail to the header.
                    work = [block.index]
                    while work:
                        b = work.pop()
                        if b in body:
                            continue
                        body.add(b)
                        work.extend(
                            p for p in self.blocks[b].predecessors if p in reachable
                        )
        loops = []
        for header, body in sorted(bodies.items()):
            first = self.blocks[header].start
            line = self.code.instructions[first].lineno if first < len(self.code.instructions) else 0
            loops.append(
                Loop(
                    header=header,
                    blocks=frozenset(body),
                    tail=tails[header],
                    header_line=line,
                )
            )
        self._loops = loops
        return loops

    def innermost_loop_of(self, instr_index: int) -> Optional[Loop]:
        """The smallest natural loop containing ``instr_index``, if any."""
        block = self.block_of_instr.get(instr_index)
        if block is None:
            return None
        best: Optional[Loop] = None
        for loop in self.natural_loops():
            if block in loop.blocks:
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def loop_instruction_indices(self, loop: Loop) -> List[int]:
        """All instruction indices inside ``loop``, in program order."""
        out: List[int] = []
        for b in sorted(loop.blocks):
            out.extend(self.blocks[b].instruction_indices())
        return out


def build_cfg(code: CodeObject) -> CFG:
    """Partition ``code`` into basic blocks and wire the edges."""
    instructions = code.instructions
    n = len(instructions)
    if n == 0:
        return CFG(code, [])

    leaders: Set[int] = {0}
    for index, instr in enumerate(instructions):
        target = jump_target(instr)
        if target is not None and 0 <= target < n:
            leaders.add(target)
        if instr.opcode in TERMINATORS or instr.opcode in BRANCHES:
            if index + 1 < n:
                leaders.add(index + 1)

    starts = sorted(leaders)
    blocks: List[BasicBlock] = []
    for bi, start in enumerate(starts):
        end = starts[bi + 1] if bi + 1 < len(starts) else n
        blocks.append(BasicBlock(index=bi, start=start, end=end))

    start_to_block = {b.start: b.index for b in blocks}
    for block in blocks:
        last = instructions[block.end - 1]
        opcode = last.opcode
        succ_instrs: List[int] = []
        if opcode == op.RETURN_VALUE:
            pass
        elif opcode == op.JUMP:
            succ_instrs.append(int(last.arg))
        elif opcode in BRANCHES:
            succ_instrs.append(block.end)  # fallthrough
            succ_instrs.append(int(last.arg))
        else:
            succ_instrs.append(block.end)
        for target in succ_instrs:
            succ_block = start_to_block.get(target)
            if succ_block is None:
                continue  # invalid target: the verifier reports it
            if succ_block not in block.successors:
                block.successors.append(succ_block)
                blocks[succ_block].predecessors.append(block.index)

    return CFG(code, blocks)
