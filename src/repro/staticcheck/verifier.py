"""Bytecode verifier: reject malformed code objects before they run.

The VM trusts its input; a bad jump target or an unbalanced stack
corrupts the interpreter state in ways that surface far from the cause
(or worse, silently skew profiles). The verifier catches these at
compile time by abstract interpretation of stack *depths* over the CFG:

* every jump target must land on an instruction of the same code object;
* every opcode argument must be well-formed (const-pool and name indices
  in bounds, operator symbols known, operand counts non-negative);
* the stack never underflows, and every control-flow merge point is
  reached with one consistent stack depth along all incoming edges;
* control cannot fall off the end of the code object;
* unreachable instructions are reported as dead-code warnings (the
  compiler legitimately emits a dead implicit return after an explicit
  one, so dead code warns rather than fails).

``verify_code`` raises :class:`VerificationError` on the first hard
violation and returns a :class:`VerificationReport` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.interp import opcodes as op
from repro.interp.code import CodeObject, Instruction
from repro.staticcheck.cfg import CFG, build_cfg
from repro.staticcheck.effects import (
    BRANCHES,
    JUMP_OPCODES,
    TERMINATORS,
    jump_edge_delta,
    stack_effect,
)

_BINARY_SYMBOLS = frozenset("+ - * / // % ** << >> & | ^".split())
_COMPARE_SYMBOLS = frozenset(
    ["==", "!=", "<", "<=", ">", ">=", "in", "not in", "is", "is not"]
)
_UNARY_SYMBOLS = frozenset(["-", "+", "not", "~"])


class VerificationError(ReproError):
    """A code object failed bytecode verification.

    Carries the code object name and the offending instruction index so
    diagnostics pinpoint the exact instruction.
    """

    def __init__(self, message: str, code_name: str, index: Optional[int] = None) -> None:
        self.code_name = code_name
        self.index = index
        where = f"{code_name}" if index is None else f"{code_name}@{index}"
        super().__init__(f"verification failed in {where}: {message}")


@dataclass
class DeadCode:
    """One maximal run of unreachable instructions."""

    start: int
    end: int
    lineno: int

    def __str__(self) -> str:
        return f"instructions [{self.start}:{self.end}) (line {self.lineno}) are unreachable"


@dataclass
class VerificationReport:
    """Result of verifying one code object (and, recursively, its children)."""

    code_name: str
    max_stack_depth: int
    instruction_count: int
    dead_code: List[DeadCode] = field(default_factory=list)
    children: List["VerificationReport"] = field(default_factory=list)

    @property
    def warning_count(self) -> int:
        return len(self.dead_code) + sum(c.warning_count for c in self.children)

    def all_reports(self) -> List["VerificationReport"]:
        out = [self]
        for child in self.children:
            out.extend(child.all_reports())
        return out


def _check_argument(code: CodeObject, index: int, instr: Instruction) -> None:
    """Validate the argument of one instruction (no stack knowledge needed)."""
    opcode = instr.opcode
    arg = instr.arg
    name = code.name
    if opcode not in op.ALL_OPCODES:
        raise VerificationError(f"unknown opcode {opcode!r}", name, index)
    if opcode in (op.LOAD_CONST, op.MAKE_FUNCTION):
        if not isinstance(arg, int) or not (0 <= arg < len(code.constants)):
            raise VerificationError(
                f"{opcode} const index {arg!r} out of range "
                f"(pool size {len(code.constants)})",
                name,
                index,
            )
        if opcode == op.MAKE_FUNCTION and not isinstance(
            code.constants[arg], CodeObject
        ):
            raise VerificationError(
                f"MAKE_FUNCTION const #{arg} is not a code object", name, index
            )
    elif opcode in (op.LOAD_NAME, op.STORE_NAME, op.DELETE_NAME, op.LOAD_ATTR, op.LOAD_METHOD):
        if not isinstance(arg, str) or not arg:
            raise VerificationError(
                f"{opcode} needs a non-empty name, got {arg!r}", name, index
            )
    elif opcode in JUMP_OPCODES:
        if not isinstance(arg, int) or not (0 <= arg < len(code.instructions)):
            raise VerificationError(
                f"{opcode} target {arg!r} out of range "
                f"(code has {len(code.instructions)} instructions)",
                name,
                index,
            )
    elif opcode in (op.BUILD_LIST, op.BUILD_TUPLE, op.BUILD_MAP, op.UNPACK_SEQUENCE):
        if not isinstance(arg, int) or arg < 0:
            raise VerificationError(
                f"{opcode} count must be a non-negative int, got {arg!r}", name, index
            )
    elif opcode == op.BUILD_SLICE:
        if arg not in (2, 3):
            raise VerificationError(
                f"BUILD_SLICE arg must be 2 or 3, got {arg!r}", name, index
            )
    elif opcode == op.LIST_APPEND:
        if not isinstance(arg, int) or arg < 1:
            raise VerificationError(
                f"LIST_APPEND depth must be a positive int, got {arg!r}", name, index
            )
    elif opcode in (op.CALL, op.CALL_METHOD):
        ok = (
            isinstance(arg, tuple)
            and len(arg) == 2
            and isinstance(arg[0], int)
            and arg[0] >= 0
            and isinstance(arg[1], tuple)
            and all(isinstance(k, str) for k in arg[1])
        )
        if not ok:
            raise VerificationError(
                f"{opcode} arg must be (npos, kwnames), got {arg!r}", name, index
            )
    elif opcode == op.BINARY_OP:
        if arg not in _BINARY_SYMBOLS:
            raise VerificationError(f"unknown binary operator {arg!r}", name, index)
    elif opcode == op.COMPARE_OP:
        if arg not in _COMPARE_SYMBOLS:
            raise VerificationError(f"unknown comparison {arg!r}", name, index)
    elif opcode == op.UNARY_OP:
        if arg not in _UNARY_SYMBOLS:
            raise VerificationError(f"unknown unary operator {arg!r}", name, index)


def _simulate_stack(code: CodeObject, cfg: CFG) -> int:
    """Propagate stack depths over the CFG; returns the max depth seen."""
    name = code.name
    instructions = code.instructions
    entry_depth: Dict[int, int] = {0: 0}
    work: List[int] = [0]
    max_depth = 0

    def flow_to(block_index: int, depth: int, from_index: int) -> None:
        known = entry_depth.get(block_index)
        if known is None:
            entry_depth[block_index] = depth
            work.append(block_index)
        elif known != depth:
            raise VerificationError(
                f"inconsistent stack depth at merge point "
                f"(instruction {cfg.blocks[block_index].start}): "
                f"{known} vs {depth} arriving from instruction {from_index}",
                name,
                cfg.blocks[block_index].start,
            )

    while work:
        bi = work.pop()
        block = cfg.blocks[bi]
        depth = entry_depth[bi]
        for i in block.instruction_indices():
            instr = instructions[i]
            pops, pushes = stack_effect(instr)
            if depth < pops:
                raise VerificationError(
                    f"stack underflow: {instr.opcode} needs {pops} operands, "
                    f"stack has {depth}",
                    name,
                    i,
                )
            if instr.opcode == op.LIST_APPEND and depth - 1 < instr.arg:
                raise VerificationError(
                    f"LIST_APPEND reaches below the stack "
                    f"(depth {depth - 1} after pop, needs {instr.arg})",
                    name,
                    i,
                )
            fall_depth = depth - pops + pushes
            opcode = instr.opcode
            if opcode in BRANCHES or opcode == op.JUMP:
                jump_depth = depth + jump_edge_delta(instr)
                if jump_depth < 0:
                    raise VerificationError(
                        f"stack underflow on jump edge of {opcode}", name, i
                    )
                target_block = cfg.block_of_instr[int(instr.arg)]
                flow_to(target_block, jump_depth, i)
                max_depth = max(max_depth, jump_depth)
            depth = fall_depth
            max_depth = max(max_depth, depth)

        last = instructions[block.end - 1]
        if last.opcode == op.RETURN_VALUE or last.opcode == op.JUMP:
            continue
        # Fallthrough edge.
        if block.end >= len(instructions):
            raise VerificationError(
                "control falls off the end of the code object", name, block.end - 1
            )
        flow_to(cfg.block_of_instr[block.end], depth, block.end - 1)

    return max_depth


def _dead_code(code: CodeObject, cfg: CFG) -> List[DeadCode]:
    """Maximal runs of instructions in unreachable blocks."""
    reachable = cfg.reachable_blocks()
    dead_instrs: List[int] = []
    for block in cfg.blocks:
        if block.index not in reachable:
            dead_instrs.extend(block.instruction_indices())
    runs: List[DeadCode] = []
    for i in sorted(dead_instrs):
        if runs and runs[-1].end == i:
            runs[-1].end = i + 1
        else:
            runs.append(DeadCode(start=i, end=i + 1, lineno=code.instructions[i].lineno))
    return runs


def verify_code(code: CodeObject, *, recurse: bool = True) -> VerificationReport:
    """Verify ``code`` (and nested function bodies when ``recurse``).

    Raises :class:`VerificationError` on the first hard violation;
    returns a report with dead-code warnings and the computed maximum
    stack depth otherwise.
    """
    if not code.instructions:
        raise VerificationError("code object has no instructions", code.name)
    for index, instr in enumerate(code.instructions):
        _check_argument(code, index, instr)
    cfg = build_cfg(code)
    max_depth = _simulate_stack(code, cfg)
    report = VerificationReport(
        code_name=code.name,
        max_stack_depth=max_depth,
        instruction_count=len(code.instructions),
        dead_code=_dead_code(code, cfg),
    )
    if recurse:
        for const in code.constants:
            if isinstance(const, CodeObject):
                report.children.append(verify_code(const, recurse=True))
    return report
