"""Per-opcode stack effects and control-flow classification.

The verifier and the CFG builder both need to know, for every opcode,
how many operands it pops, how many results it pushes, and where control
can go next. This module is the single authority for those facts; it
mirrors the operational semantics of :mod:`repro.interp.vm` exactly, and
the differential test in ``tests/test_staticcheck_verifier.py`` keeps it
honest by verifying every code object the compiler can produce.

Two opcodes have *edge-dependent* effects and are special-cased
everywhere instead of appearing in the table:

* ``FOR_ITER`` — fallthrough pushes the next element (net +1); the
  jump edge (iterator exhausted) pops the iterator (net -1).
* ``JUMP_IF_FALSE_OR_POP`` / ``JUMP_IF_TRUE_OR_POP`` — the jump edge
  keeps TOS (net 0); the fallthrough edge pops it (net -1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.interp import opcodes as op
from repro.interp.code import Instruction

#: opcode -> (pops, pushes) for every opcode whose effect is static and
#: independent of its argument.
_FIXED_EFFECTS = {
    op.LOAD_CONST: (0, 1),
    op.LOAD_NAME: (0, 1),
    op.STORE_NAME: (1, 0),
    op.DELETE_NAME: (0, 0),
    op.LOAD_ATTR: (1, 1),
    op.LOAD_METHOD: (1, 1),
    op.BINARY_SUBSCR: (2, 1),
    op.STORE_SUBSCR: (3, 0),
    op.BINARY_OP: (2, 1),
    op.COMPARE_OP: (2, 1),
    op.UNARY_OP: (1, 1),
    op.RETURN_VALUE: (1, 0),
    op.JUMP: (0, 0),
    op.POP_JUMP_IF_FALSE: (1, 0),
    op.POP_JUMP_IF_TRUE: (1, 0),
    op.GET_ITER: (1, 1),
    op.LIST_APPEND: (1, 0),
    op.POP_TOP: (1, 0),
    op.MAKE_FUNCTION: (0, 1),
    op.NOP: (0, 0),
    op.SETUP_EXCEPT: (0, 0),
    op.POP_BLOCK: (0, 0),
}

#: Opcodes that transfer control unconditionally (no fallthrough).
TERMINATORS = frozenset({op.JUMP, op.RETURN_VALUE})

#: Opcodes with both a jump edge and a fallthrough edge. ``SETUP_EXCEPT``
#: is modelled as a branch: its jump edge is the exception path into the
#: handler, which enters at exactly the stack depth recorded when the
#: block was pushed (the VM truncates the operand stack on unwind).
BRANCHES = frozenset(
    {
        op.POP_JUMP_IF_FALSE,
        op.POP_JUMP_IF_TRUE,
        op.JUMP_IF_FALSE_OR_POP,
        op.JUMP_IF_TRUE_OR_POP,
        op.FOR_ITER,
        op.SETUP_EXCEPT,
    }
)

#: Opcodes carrying a jump-target argument.
JUMP_OPCODES = BRANCHES | {op.JUMP}


def stack_effect(instr: Instruction) -> Tuple[int, int]:
    """(pops, pushes) for ``instr`` on its *fallthrough* edge.

    For the edge-dependent branch opcodes this returns the fallthrough
    behaviour; callers handling jump edges must consult
    :func:`jump_edge_delta` instead.
    """
    opcode = instr.opcode
    fixed = _FIXED_EFFECTS.get(opcode)
    if fixed is not None:
        return fixed
    arg = instr.arg
    if opcode in (op.BUILD_LIST, op.BUILD_TUPLE):
        return (int(arg), 1)
    if opcode == op.BUILD_MAP:
        return (2 * int(arg), 1)
    if opcode == op.BUILD_SLICE:
        return (int(arg), 1)
    if opcode == op.UNPACK_SEQUENCE:
        return (1, int(arg))
    if opcode in (op.CALL, op.CALL_METHOD):
        npos, kwnames = arg
        return (1 + int(npos) + len(kwnames), 1)
    if opcode == op.FOR_ITER:
        return (0, 1)  # fallthrough: next element pushed above the iterator
    if opcode in (op.JUMP_IF_FALSE_OR_POP, op.JUMP_IF_TRUE_OR_POP):
        return (1, 0)  # fallthrough pops the tested value
    raise KeyError(f"unknown opcode {opcode!r}")


def jump_edge_delta(instr: Instruction) -> int:
    """Net stack delta along the *jump* edge of a branch/jump opcode."""
    opcode = instr.opcode
    if opcode == op.FOR_ITER:
        return -1  # exhausted: the iterator is popped
    if opcode in (op.JUMP_IF_FALSE_OR_POP, op.JUMP_IF_TRUE_OR_POP):
        return 0  # short-circuit value stays on the stack
    if opcode == op.SETUP_EXCEPT:
        return 0  # handler entered at the depth recorded at SETUP_EXCEPT
    if opcode in (op.POP_JUMP_IF_FALSE, op.POP_JUMP_IF_TRUE):
        return -1
    if opcode == op.JUMP:
        return 0
    raise KeyError(f"opcode {opcode!r} has no jump edge")


def successors(index: int, instr: Instruction) -> List[int]:
    """Instruction indices control can reach after ``instr`` at ``index``."""
    opcode = instr.opcode
    if opcode == op.RETURN_VALUE:
        return []
    if opcode == op.JUMP:
        return [int(instr.arg)]
    if opcode in BRANCHES:
        return [index + 1, int(instr.arg)]
    return [index + 1]


def jump_target(instr: Instruction) -> Optional[int]:
    """The jump-target argument of ``instr``, or None for non-jumps."""
    if instr.opcode in JUMP_OPCODES:
        return int(instr.arg) if instr.arg is not None else None
    return None
