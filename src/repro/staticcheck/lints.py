"""Profile-guided performance anti-pattern detectors (paper §7, statically).

Each of Scalene's §7 case studies — chained DataFrame indexing, concat
growth in loops, scalar loops over native arrays, invariant work inside
loops, and GIL-serialized threads — is a *statically recognizable* shape
in our bytecode. These detectors find those shapes; on their own they are
style hints, and joined with a Scalene profile
(:mod:`repro.analysis.triangulate`) they become ranked, evidence-backed
optimization advice.

Every detector reports a :class:`Finding` anchored to a source line — the
same attribution unit the profilers use, which is what makes the
triangulation join exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.interp import opcodes as op
from repro.interp.code import CodeObject
from repro.interp.disassembler import iter_code_objects
from repro.staticcheck.callgraph import MODULE_NODE, NATIVE_ROOTS, build_call_graph
from repro.staticcheck.cfg import CFG, Loop, build_cfg
from repro.staticcheck.dataflow import (
    SymbolicTrace,
    ValueNode,
    call_arguments,
    callee_name,
    invariant_names,
    method_receiver,
    qualified_callee,
    symbolic_trace,
    variant_names,
)

#: Callables whose result is a fresh allocation — hoisting candidates
#: when called with invariant arguments inside a loop.
ALLOCATING_CALLEES = frozenset(
    {"zeros", "ones", "empty", "arange", "frame", "py_buffer", "list", "dict",
     "column_view", "frombuffer"}
)

#: Calls that block (release the virtual GIL): a thread worker looping
#: over these overlaps usefully with other threads.
BLOCKING_CALLEES = frozenset({"sleep", "wait", "read", "write", "join", "io_wait"})

ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "//", "%", "**"})

#: Element-wise native calls with a known batched rewrite: the boundary
#: is crossed once per element instead of once per region. Keyed by the
#: qualified callee (module root, attribute).
BATCHED_EQUIVALENTS: Dict[Tuple[str, str], str] = {
    ("np", "get"): (
        "operate on the whole array with one vectorized expression "
        "(e.g. dst = src * 2.0) instead of reading elements one by one"
    ),
    ("np", "put"): (
        "write results with one vectorized operation (or np.add on whole "
        "arrays) instead of per-element puts"
    ),
}

#: Calls that materialize Python data as a native buffer; the landing
#: side of a Python↔native round trip.
ROUNDTRIP_BUILDERS = frozenset(
    {("np", "asarray"), ("np", "frombuffer"), ("torch", "tensor")}
)

#: Methods that extract native data into Python objects; the departure
#: side of a round trip.
EXTRACTION_METHODS = frozenset({"tolist", "to_host", "item"})

#: Callees whose result is an array/frame/tensor — used to tell scalar
#: argument trees from native-container ones in tiny-crossing detection.
ARRAY_PRODUCERS = frozenset(
    {"zeros", "ones", "empty", "arange", "asarray", "frombuffer", "copy",
     "matmul", "add", "concat", "frame", "column_view", "groupby_sum",
     "tensor", "forward"}
)


@dataclass(frozen=True)
class Finding:
    """One static performance finding, anchored to a source line."""

    detector: str
    filename: str
    lineno: int
    function: str
    message: str
    suggestion: str

    def __str__(self) -> str:
        where = f"{self.filename}:{self.lineno}"
        return f"[{self.detector}] {where} ({self.function}): {self.message} — {self.suggestion}"


#: Detector identifiers, in report order.
DETECTORS = (
    "chained-df-indexing",
    "concat-growth-in-loop",
    "scalar-loop-vectorize",
    "loop-invariant-hoist",
    "gil-serialized-threads",
    "chatty-native-loop",
    "native-roundtrip-conversion",
    "tiny-crossing-overhead",
)

#: The native-boundary detectors (consumed by the cross-flow join).
BOUNDARY_DETECTORS = frozenset(
    {"chatty-native-loop", "native-roundtrip-conversion", "tiny-crossing-overhead"}
)

#: Severity ordering for ``--fail-on``.
SEVERITY_RANK = {"low": 0, "medium": 1, "high": 2}

#: How bad each detector's shape usually is: ``high`` = superlinear cost
#: or serialization, ``medium`` = per-iteration linear waste, ``low`` =
#: constant-factor overhead.
DETECTOR_SEVERITY = {
    "chained-df-indexing": "medium",
    "concat-growth-in-loop": "high",
    "scalar-loop-vectorize": "medium",
    "loop-invariant-hoist": "low",
    "gil-serialized-threads": "high",
    "chatty-native-loop": "high",
    "native-roundtrip-conversion": "medium",
    "tiny-crossing-overhead": "low",
}


@dataclass(frozen=True)
class BoundaryFinding:
    """A boundary-detector finding plus the structure the join needs."""

    finding: Finding
    #: Qualified native callee, when the detector resolved one.
    root: Optional[str]
    attr: Optional[str]
    #: Source line of the enclosing loop header (0 for non-loop findings).
    loop_header_line: int
    #: All source lines inside the enclosing loop (empty for non-loop).
    loop_lines: Tuple[int, ...]


class _CodeAnalysis:
    """Per-code-object analysis state shared by the detectors."""

    def __init__(self, code: CodeObject) -> None:
        self.code = code
        self.cfg: CFG = build_cfg(code)
        self.trace: SymbolicTrace = symbolic_trace(code, self.cfg)
        self.loops: List[Loop] = self.cfg.natural_loops()
        self._invariants: Dict[int, frozenset] = {}
        self._variants: Dict[int, frozenset] = {}

    def invariants(self, loop: Loop) -> frozenset:
        if loop.header not in self._invariants:
            self._invariants[loop.header] = invariant_names(self.cfg, loop)
        return self._invariants[loop.header]

    def variants(self, loop: Loop) -> frozenset:
        if loop.header not in self._variants:
            self._variants[loop.header] = variant_names(self.cfg, loop)
        return self._variants[loop.header]

    def loop_nodes(self, loop: Loop) -> List[ValueNode]:
        nodes = []
        for i in self.cfg.loop_instruction_indices(loop):
            node = self.trace.node(i)
            if node is not None:
                nodes.append(node)
        return nodes

    def loop_lines(self, loop: Loop) -> Tuple[int, ...]:
        """Sorted source lines of every instruction inside ``loop``."""
        lines = {
            self.code.instructions[i].lineno
            for i in self.cfg.loop_instruction_indices(loop)
        }
        return tuple(sorted(lines))

    def loop_variable(self, loop: Loop) -> Optional[str]:
        """The ``for`` target name: STORE_NAME right after the header FOR_ITER."""
        header = self.cfg.blocks[loop.header]
        first = self.code.instructions[header.start]
        if first.opcode != op.FOR_ITER:
            return None
        nxt = header.start + 1
        if nxt < len(self.code.instructions):
            instr = self.code.instructions[nxt]
            if instr.opcode == op.STORE_NAME:
                return instr.arg
        return None


def _is_invariant_tree(node: ValueNode, invariants: frozenset) -> bool:
    """A pure expression over invariant names and constants."""
    return node.is_transparent() and node.name_roots() <= invariants


# -- detector 1: chained DataFrame indexing ---------------------------------


def _detect_chained_indexing(analysis: _CodeAnalysis, findings: List["_Raw"]) -> None:
    for loop in analysis.loops:
        invariants = analysis.invariants(loop)
        for node in analysis.loop_nodes(loop):
            if node.opcode != op.BINARY_SUBSCR:
                continue
            inner = node.operands[0] if node.operands else None
            if inner is None or inner.opcode != op.BINARY_SUBSCR:
                continue
            base, key = inner.operands
            if base.opcode != op.LOAD_NAME or base.arg not in invariants:
                continue
            if key.opcode != op.LOAD_CONST:
                continue
            const = analysis.code.constants[key.arg]
            if not isinstance(const, str):
                continue
            findings.append(
                _Raw(
                    "chained-df-indexing",
                    node.lineno,
                    f"chained indexing {base.arg}[{const!r}][...] inside a loop "
                    f"copies the column on every iteration",
                    f"hoist the outer index out of the loop "
                    f"(e.g. col = {base.arg}.column_view({const!r}))",
                )
            )


# -- detector 2: concat/append growth in loops ------------------------------


def _detect_concat_growth(analysis: _CodeAnalysis, findings: List["_Raw"]) -> None:
    code = analysis.code
    for loop in analysis.loops:
        for node in analysis.loop_nodes(loop):
            if node.opcode in (op.CALL, op.CALL_METHOD) and callee_name(node) == "concat":
                findings.append(
                    _Raw(
                        "concat-growth-in-loop",
                        node.lineno,
                        "concat inside a loop copies all accumulated data "
                        "every iteration (quadratic copy volume)",
                        "collect pieces in a list and concat once after the loop",
                    )
                )
            elif node.opcode == op.STORE_NAME:
                # x = x + [...] — list growth by re-concatenation.
                value = node.operands[0] if node.operands else None
                if (
                    value is not None
                    and value.opcode == op.BINARY_OP
                    and value.arg == "+"
                    and len(value.operands) == 2
                    and value.operands[0].opcode == op.LOAD_NAME
                    and value.operands[0].arg == node.arg
                    and value.operands[1].opcode in (op.BUILD_LIST, op.BUILD_TUPLE)
                ):
                    findings.append(
                        _Raw(
                            "concat-growth-in-loop",
                            node.lineno,
                            f"{node.arg} = {node.arg} + [...] in a loop rebuilds "
                            f"the whole sequence every iteration",
                            f"use {node.arg}.append(...) instead",
                        )
                    )


# -- detector 3: scalar element loops over arrays ---------------------------


def _detect_scalar_loop(analysis: _CodeAnalysis, findings: List["_Raw"]) -> None:
    for loop in analysis.loops:
        loop_var = analysis.loop_variable(loop)
        if loop_var is None:
            continue
        invariants = analysis.invariants(loop)

        def element_access(node: ValueNode) -> Optional[str]:
            """Name of an invariant container indexed by the loop variable."""
            if node.opcode not in (op.BINARY_SUBSCR, op.STORE_SUBSCR):
                return None
            if node.opcode == op.BINARY_SUBSCR:
                base, index = node.operands
            else:
                _, base, index = node.operands
            if base.opcode != op.LOAD_NAME or base.arg not in invariants:
                return None
            if loop_var in index.name_roots():
                return base.arg
            return None

        for node in analysis.loop_nodes(loop):
            hit: Optional[Tuple[str, int]] = None
            if node.opcode == op.BINARY_OP and node.arg in ARITHMETIC_OPS:
                for sub in node.walk():
                    name = element_access(sub)
                    if name is not None:
                        hit = (name, node.lineno)
                        break
            elif node.opcode == op.STORE_SUBSCR:
                name = element_access(node)
                if name is not None:
                    hit = (name, node.lineno)
            elif node.opcode in (op.CALL, op.CALL_METHOD):
                # Native callee reached through a module attribute load
                # (``np.add(a[i], ...)``): per-element data still flows
                # through the call, so the loop is scalar all the same.
                qc = qualified_callee(node)
                if qc is not None and qc[0] in NATIVE_ROOTS:
                    for arg in call_arguments(node):
                        for sub in arg.walk():
                            name = element_access(sub)
                            if name is not None:
                                hit = (name, node.lineno)
                                break
                        if hit is not None:
                            break
            if hit is not None:
                name, lineno = hit
                findings.append(
                    _Raw(
                        "scalar-loop-vectorize",
                        lineno,
                        f"element-at-a-time loop over {name!r} "
                        f"(~10 interpreter opcodes per element)",
                        "replace the loop with a vectorized array operation "
                        "(one native op over the whole array)",
                    )
                )


# -- detector 4: loop-invariant allocations and attribute lookups ------------


def _detect_invariant_hoist(analysis: _CodeAnalysis, findings: List["_Raw"]) -> None:
    for loop in analysis.loops:
        invariants = analysis.invariants(loop)
        for node in analysis.loop_nodes(loop):
            if node.opcode in (op.CALL, op.CALL_METHOD):
                name = callee_name(node)
                if name not in ALLOCATING_CALLEES:
                    continue
                args = call_arguments(node)
                if not all(_is_invariant_tree(a, invariants) for a in args):
                    continue
                receiver = method_receiver(node)
                if receiver is not None and not _is_invariant_tree(receiver, invariants):
                    continue
                findings.append(
                    _Raw(
                        "loop-invariant-hoist",
                        node.lineno,
                        f"loop-invariant allocation {name}(...) runs every iteration",
                        "allocate once before the loop and reuse the object",
                    )
                )
            elif node.opcode == op.LOAD_ATTR:
                base = node.operands[0] if node.operands else None
                if base is None or not _is_invariant_tree(base, invariants):
                    continue
                findings.append(
                    _Raw(
                        "loop-invariant-hoist",
                        node.lineno,
                        f"loop-invariant attribute lookup .{node.arg} "
                        f"repeats every iteration",
                        f"bind it to a local before the loop "
                        f"(e.g. {node.arg} = obj.{node.arg})",
                    )
                )


# -- detector 5: GIL-serialized thread workers ------------------------------


def _module_functions(module_code: CodeObject) -> Dict[str, CodeObject]:
    """Map module-level function names to their code objects."""
    out: Dict[str, CodeObject] = {}
    instructions = module_code.instructions
    for i, instr in enumerate(instructions):
        if instr.opcode != op.MAKE_FUNCTION:
            continue
        if i + 1 < len(instructions) and instructions[i + 1].opcode == op.STORE_NAME:
            const = module_code.constants[instr.arg]
            if isinstance(const, CodeObject):
                out[instructions[i + 1].arg] = const
    return out


def _worker_is_cpu_bound(worker: CodeObject) -> Optional[int]:
    """Line of a worker loop that never blocks (GIL-serialized), if any."""
    analysis = _CodeAnalysis(worker)
    for loop in analysis.loops:
        blocks_somewhere = False
        has_work = False
        for node in analysis.loop_nodes(loop):
            if node.opcode in (op.CALL, op.CALL_METHOD):
                name = callee_name(node)
                if name in BLOCKING_CALLEES:
                    blocks_somewhere = True
                else:
                    has_work = True
            elif node.opcode in (op.BINARY_OP, op.BINARY_SUBSCR, op.STORE_SUBSCR):
                has_work = True
        if has_work and not blocks_somewhere:
            return loop.header_line
    return None


def _detect_gil_serialization(
    module_code: CodeObject, analyses: Dict[int, _CodeAnalysis], findings_by_code
) -> None:
    functions = _module_functions(module_code)
    reported: Set[str] = set()
    for code_id, analysis in analyses.items():
        for node in analysis.trace.nodes.values():
            if node.opcode not in (op.CALL, op.CALL_METHOD):
                continue
            if callee_name(node) != "spawn":
                continue
            args = call_arguments(node)
            if not args or args[0].opcode != op.LOAD_NAME:
                continue
            fname = args[0].arg
            worker = functions.get(fname)
            if worker is None or fname in reported:
                continue
            loop_line = _worker_is_cpu_bound(worker)
            if loop_line is None:
                continue
            reported.add(fname)
            findings_by_code[code_id].append(
                _Raw(
                    "gil-serialized-threads",
                    node.lineno,
                    f"thread worker {fname!r} loops without blocking "
                    f"(line {loop_line}): Python bytecode and non-releasing "
                    f"native calls serialize on the GIL",
                    "use mp.run_workers for CPU-bound work; keep threads "
                    "for blocking IO",
                )
            )


# -- detector 6: chatty native calls in loops (batched equivalent exists) ----


def _detect_chatty_native_loop(
    module_code: CodeObject, analyses: Dict[int, "_CodeAnalysis"], findings_by_code
) -> None:
    graph = build_call_graph(module_code)
    for code_id, analysis in analyses.items():
        for loop in analysis.loops:
            loop_lines = analysis.loop_lines(loop)
            for node in analysis.loop_nodes(loop):
                if node.opcode not in (op.CALL, op.CALL_METHOD):
                    continue
                qc = qualified_callee(node)
                if qc is None:
                    continue
                root, attr = qc
                if root is not None and (root, attr) in BATCHED_EQUIVALENTS:
                    findings_by_code[code_id].append(
                        _Raw(
                            "chatty-native-loop",
                            node.lineno,
                            f"element-wise native call {root}.{attr}(...) inside "
                            f"a loop crosses the Python↔native boundary every "
                            f"iteration",
                            BATCHED_EQUIVALENTS[(root, attr)],
                            root=root,
                            attr=attr,
                            loop_header_line=loop.header_line,
                            loop_lines=loop_lines,
                        )
                    )
                elif root is None and graph.node(attr) is not None:
                    # Interprocedural: the loop calls a module function
                    # that (transitively) does element-wise native calls.
                    sites = [
                        s
                        for s in graph.transitive_native_sites(attr)
                        if (s[0], s[1]) in BATCHED_EQUIVALENTS
                    ]
                    if not sites:
                        continue
                    nroot, nattr, _ = sites[0]
                    findings_by_code[code_id].append(
                        _Raw(
                            "chatty-native-loop",
                            node.lineno,
                            f"loop calls {attr}(), which performs element-wise "
                            f"native calls ({nroot}.{nattr}): one boundary "
                            f"crossing per element",
                            BATCHED_EQUIVALENTS[(nroot, nattr)],
                            root=nroot,
                            attr=nattr,
                            loop_header_line=loop.header_line,
                            loop_lines=loop_lines,
                        )
                    )


# -- detector 7: Python↔native round-trip conversions ------------------------


def _tree_extracts_to_python(tree: ValueNode) -> bool:
    """Does this expression call a native→Python extraction method?"""
    for sub in tree.walk():
        if sub.opcode == op.CALL_METHOD and sub.operands:
            callee = sub.operands[0]
            if callee.opcode == op.LOAD_METHOD and callee.arg in EXTRACTION_METHODS:
                return True
    return False


def _detect_native_roundtrip(analysis: _CodeAnalysis, findings: List["_Raw"]) -> None:
    trace_nodes = analysis.trace.nodes
    # Stored-value trees per name, in program order, for one level of
    # name expansion: ``l = a.tolist()`` ... ``np.asarray(l)``.
    stores: Dict[str, List[Tuple[int, ValueNode]]] = {}
    for index in sorted(trace_nodes):
        node = trace_nodes[index]
        if node.opcode == op.STORE_NAME and node.operands:
            stores.setdefault(node.arg, []).append((index, node.operands[0]))
    for index in sorted(trace_nodes):
        node = trace_nodes[index]
        if node.opcode not in (op.CALL, op.CALL_METHOD):
            continue
        qc = qualified_callee(node)
        if qc is None or qc not in ROUNDTRIP_BUILDERS:
            continue
        root, attr = qc
        for arg in call_arguments(node):
            via: Optional[str] = None
            hit = _tree_extracts_to_python(arg)
            if not hit:
                for name in sorted(arg.name_roots()):
                    prior = [t for i, t in stores.get(name, []) if i < index]
                    if prior and _tree_extracts_to_python(prior[-1]):
                        hit = True
                        via = name
                        break
            if hit:
                through = f" (via {via!r})" if via else ""
                findings.append(
                    _Raw(
                        "native-roundtrip-conversion",
                        node.lineno,
                        f"{root}.{attr}(...) rebuilds a native buffer from "
                        f"data just extracted to Python{through}: a redundant "
                        f"native→Python→native round trip",
                        "keep the data on the native side (operate on the "
                        "array/tensor directly, or use .copy())",
                        root=root,
                        attr=attr,
                    )
                )
                break


# -- detector 8: tiny-argument crossings (overhead dominates) ----------------


def _arrayish_names(analysis: _CodeAnalysis) -> Set[str]:
    """Names that (may) hold native containers, by store-tree fixpoint."""
    trace_nodes = analysis.trace.nodes
    names: Set[str] = set()

    def produces_array(tree: ValueNode) -> bool:
        if tree.opcode == op.LOAD_NAME:
            return tree.arg in names
        if tree.opcode in (op.CALL, op.CALL_METHOD):
            qc = qualified_callee(tree)
            if qc is not None and qc[1] in ARRAY_PRODUCERS:
                return True
            name = callee_name(tree)
            return name in ARRAY_PRODUCERS
        if tree.opcode == op.BINARY_OP:
            return any(produces_array(operand) for operand in tree.operands)
        # Subscripts of arrays yield scalars (or views we cannot name).
        return False

    changed = True
    while changed:
        changed = False
        for index in trace_nodes:
            node = trace_nodes[index]
            if node.opcode != op.STORE_NAME or not node.operands:
                continue
            if node.arg in names:
                continue
            if produces_array(node.operands[0]):
                names.add(node.arg)
                changed = True
    return names


def _detect_tiny_crossing(analysis: _CodeAnalysis, findings: List["_Raw"]) -> None:
    arrayish: Optional[Set[str]] = None  # computed lazily, once per code
    for loop in analysis.loops:
        invariants = analysis.invariants(loop)
        variants = analysis.variants(loop)
        loop_lines = analysis.loop_lines(loop)
        for node in analysis.loop_nodes(loop):
            if node.opcode not in (op.CALL, op.CALL_METHOD):
                continue
            qc = qualified_callee(node)
            if qc is None or qc[0] not in NATIVE_ROOTS:
                continue
            root, attr = qc
            if (root, attr) in BATCHED_EQUIVALENTS:
                continue  # chatty-native-loop owns that shape
            args = call_arguments(node)
            if not args:
                continue
            if attr in ALLOCATING_CALLEES and all(
                _is_invariant_tree(a, invariants) for a in args
            ):
                continue  # loop-invariant-hoist owns that shape
            if any(not a.is_transparent() for a in args):
                continue
            if arrayish is None:
                arrayish = _arrayish_names(analysis)
            if any(a.name_roots() & arrayish for a in args):
                continue  # bulk payload: the crossing carries real work
            if not any(a.name_roots() & variants for a in args):
                continue  # invariant scalars: not a per-iteration pattern
            findings.append(
                _Raw(
                    "tiny-crossing-overhead",
                    node.lineno,
                    f"{root}.{attr}(...) is called every iteration with "
                    f"scalar arguments: fixed crossing overhead dominates "
                    f"the per-call native work",
                    "batch the per-iteration values and make one native "
                    "call outside the loop",
                    root=root,
                    attr=attr,
                    loop_header_line=loop.header_line,
                    loop_lines=loop_lines,
                )
            )


# -- driver -----------------------------------------------------------------


@dataclass(frozen=True)
class _Raw:
    detector: str
    lineno: int
    message: str
    suggestion: str
    #: Boundary metadata (qualified callee + enclosing loop), carried by
    #: the boundary detectors for :func:`boundary_findings`; plain lint
    #: output ignores it.
    root: Optional[str] = None
    attr: Optional[str] = None
    loop_header_line: int = 0
    loop_lines: Tuple[int, ...] = ()


def _collect_raws(
    code: CodeObject,
) -> Tuple[List[CodeObject], Dict[int, List[_Raw]]]:
    """Run every detector; raw findings grouped by owning code object."""
    analyses: Dict[int, _CodeAnalysis] = {}
    order: List[CodeObject] = []
    for code_object in iter_code_objects(code):
        analyses[id(code_object)] = _CodeAnalysis(code_object)
        order.append(code_object)

    findings_by_code: Dict[int, List[_Raw]] = {id(c): [] for c in order}
    for code_object in order:
        analysis = analyses[id(code_object)]
        raws = findings_by_code[id(code_object)]
        _detect_chained_indexing(analysis, raws)
        _detect_concat_growth(analysis, raws)
        _detect_scalar_loop(analysis, raws)
        _detect_invariant_hoist(analysis, raws)
        _detect_native_roundtrip(analysis, raws)
        _detect_tiny_crossing(analysis, raws)
    _detect_gil_serialization(code, analyses, findings_by_code)
    _detect_chatty_native_loop(code, analyses, findings_by_code)
    return order, findings_by_code


def lint_code(code: CodeObject, filename: Optional[str] = None) -> List[Finding]:
    """Run every detector over ``code`` and all nested function bodies."""
    filename = filename or code.filename
    order, findings_by_code = _collect_raws(code)
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for code_object in order:
        for raw in findings_by_code[id(code_object)]:
            key = (raw.detector, raw.lineno, raw.message)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                Finding(
                    detector=raw.detector,
                    filename=filename,
                    lineno=raw.lineno,
                    function=code_object.name,
                    message=raw.message,
                    suggestion=raw.suggestion,
                )
            )
    findings.sort(key=lambda f: (f.lineno, f.detector))
    return findings


def boundary_findings(
    code: CodeObject, filename: Optional[str] = None
) -> List[BoundaryFinding]:
    """The boundary-detector findings with their join metadata.

    Same detectors as :func:`lint_code`, filtered to
    :data:`BOUNDARY_DETECTORS` and wrapped with the qualified callee and
    enclosing-loop lines the cross-flow join needs.
    """
    filename = filename or code.filename
    order, findings_by_code = _collect_raws(code)
    out: List[BoundaryFinding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for code_object in order:
        for raw in findings_by_code[id(code_object)]:
            if raw.detector not in BOUNDARY_DETECTORS:
                continue
            key = (raw.detector, raw.lineno, raw.message)
            if key in seen:
                continue
            seen.add(key)
            out.append(
                BoundaryFinding(
                    finding=Finding(
                        detector=raw.detector,
                        filename=filename,
                        lineno=raw.lineno,
                        function=code_object.name,
                        message=raw.message,
                        suggestion=raw.suggestion,
                    ),
                    root=raw.root,
                    attr=raw.attr,
                    loop_header_line=raw.loop_header_line,
                    loop_lines=raw.loop_lines,
                )
            )
    out.sort(key=lambda b: (b.finding.lineno, b.finding.detector))
    return out


def boundary_findings_source(
    source: str, filename: str = "<workload>"
) -> List[BoundaryFinding]:
    """Compile ``source`` and run :func:`boundary_findings` on it."""
    from repro.interp.astcompile import compile_source

    code = compile_source(source, filename, verify=True)
    return boundary_findings(code, filename)


def lint_source(source: str, filename: str = "<workload>") -> List[Finding]:
    """Compile ``source`` (with verification) and lint the result."""
    from repro.interp.astcompile import compile_source

    code = compile_source(source, filename, verify=True)
    return lint_code(code, filename)
