"""Dataflow analyses over the bytecode CFG.

Three analyses power the performance lints:

* **Reaching definitions** — classic forward may-analysis over names
  (``STORE_NAME`` is the only definition point in this instruction set;
  parameters are entry definitions).
* **Loop variance** — a name is *invariant* in a natural loop iff no
  instruction inside the loop (re)defines it. This is deliberately
  conservative: invariance of a name means the loop reads a value bound
  before entry, which is exactly the hoisting precondition the lints need.
* **Symbolic operand recovery** — a block-local abstract stack that
  rebuilds expression trees (who produced each operand), so detectors can
  pattern-match shapes like ``df['c0'][i]`` without re-parsing source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.interp import opcodes as op
from repro.interp.code import CodeObject
from repro.staticcheck.cfg import CFG, Loop
from repro.staticcheck.effects import stack_effect

# -- reaching definitions ----------------------------------------------------

#: A definition site: (instruction index, name). Index -1 marks entry
#: definitions (parameters and, at module level, pre-installed globals).
DefSite = Tuple[int, str]


@dataclass
class ReachingDefinitions:
    """Per-block IN/OUT sets of definition sites."""

    in_sets: List[Set[DefSite]]
    out_sets: List[Set[DefSite]]

    def defs_reaching_block(self, block_index: int, name: str) -> Set[DefSite]:
        return {d for d in self.in_sets[block_index] if d[1] == name}


def reaching_definitions(cfg: CFG) -> ReachingDefinitions:
    """Iterative forward may-analysis: which stores can reach each block."""
    code = cfg.code
    n = len(cfg.blocks)
    gen: List[Dict[str, DefSite]] = []
    kill_names: List[Set[str]] = []
    for block in cfg.blocks:
        last_def: Dict[str, DefSite] = {}
        killed: Set[str] = set()
        for i in block.instruction_indices():
            instr = code.instructions[i]
            if instr.opcode == op.STORE_NAME:
                last_def[instr.arg] = (i, instr.arg)
                killed.add(instr.arg)
            elif instr.opcode == op.DELETE_NAME:
                last_def.pop(instr.arg, None)
                killed.add(instr.arg)
        gen.append(last_def)
        kill_names.append(killed)

    entry: Set[DefSite] = {(-1, p) for p in code.params}
    in_sets: List[Set[DefSite]] = [set() for _ in range(n)]
    out_sets: List[Set[DefSite]] = [set() for _ in range(n)]
    if n:
        in_sets[0] = set(entry)
    changed = True
    while changed:
        changed = False
        for bi in range(n):
            in_set = set(entry) if bi == 0 else set()
            for p in cfg.blocks[bi].predecessors:
                in_set |= out_sets[p]
            out_set = {d for d in in_set if d[1] not in kill_names[bi]}
            out_set |= set(gen[bi].values())
            if in_set != in_sets[bi] or out_set != out_sets[bi]:
                in_sets[bi] = in_set
                out_sets[bi] = out_set
                changed = True
    return ReachingDefinitions(in_sets=in_sets, out_sets=out_sets)


# -- loop variance ----------------------------------------------------------


def variant_names(cfg: CFG, loop: Loop) -> FrozenSet[str]:
    """Names (re)defined anywhere inside ``loop``."""
    out: Set[str] = set()
    for i in cfg.loop_instruction_indices(loop):
        instr = cfg.code.instructions[i]
        if instr.opcode in (op.STORE_NAME, op.DELETE_NAME):
            out.add(instr.arg)
    return frozenset(out)


def invariant_names(cfg: CFG, loop: Loop) -> FrozenSet[str]:
    """Names *read* in the loop but never defined inside it."""
    read: Set[str] = set()
    for i in cfg.loop_instruction_indices(loop):
        instr = cfg.code.instructions[i]
        if instr.opcode == op.LOAD_NAME:
            read.add(instr.arg)
    return frozenset(read - variant_names(cfg, loop))


# -- symbolic operand recovery ----------------------------------------------

#: Pseudo-opcode for values flowing in from outside the current block.
OPAQUE = "OPAQUE"
#: Pseudo-opcode for the pieces of an UNPACK_SEQUENCE.
UNPACKED = "UNPACKED"


class ValueNode:
    """One abstractly-computed stack value and the expression that made it."""

    __slots__ = ("index", "opcode", "arg", "operands", "lineno")

    def __init__(self, index: int, opcode: str, arg, operands: tuple, lineno: int) -> None:
        self.index = index
        self.opcode = opcode
        self.arg = arg
        self.operands = operands
        self.lineno = lineno

    def walk(self) -> Iterator["ValueNode"]:
        """This node and every node in its operand tree (pre-order)."""
        yield self
        for operand in self.operands:
            yield from operand.walk()

    def name_roots(self) -> Set[str]:
        """All names loaded anywhere in this expression tree."""
        return {n.arg for n in self.walk() if n.opcode == op.LOAD_NAME}

    def is_transparent(self) -> bool:
        """True when the tree contains no calls, iterator values, or
        values of unknown provenance — i.e. its result is a pure function
        of the names and constants it mentions."""
        for node in self.walk():
            if node.opcode in (OPAQUE, UNPACKED, op.CALL, op.CALL_METHOD, op.FOR_ITER):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.opcode}({self.arg!r})@{self.index}>"


@dataclass
class SymbolicTrace:
    """Result of abstractly executing every block of a code object."""

    #: instruction index -> the node describing the value(s) it pushed, or
    #: for stores, the operation itself (operands hold the stored value).
    nodes: Dict[int, ValueNode]

    def node(self, index: int) -> Optional[ValueNode]:
        return self.nodes.get(index)


def symbolic_trace(code: CodeObject, cfg: CFG) -> SymbolicTrace:
    """Abstractly execute each basic block with an expression-tree stack.

    Values entering a block from predecessors are :data:`OPAQUE` — the
    analysis is block-local, which is precise enough for the lints (the
    compiler emits each source expression within one block) and keeps the
    trace linear in code size.
    """
    instructions = code.instructions
    nodes: Dict[int, ValueNode] = {}
    for block in cfg.blocks:
        stack: List[ValueNode] = []
        for i in block.instruction_indices():
            instr = instructions[i]
            pops, pushes = stack_effect(instr)
            if pops > len(stack):
                # Operands computed in a predecessor block.
                missing = pops - len(stack)
                filler = [
                    ValueNode(-1, OPAQUE, None, (), instr.lineno)
                    for _ in range(missing)
                ]
                stack[:0] = filler
            operands = tuple(stack[len(stack) - pops :]) if pops else ()
            if pops:
                del stack[len(stack) - pops :]
            node = ValueNode(i, instr.opcode, instr.arg, operands, instr.lineno)
            nodes[i] = node
            if instr.opcode == op.UNPACK_SEQUENCE:
                for _ in range(pushes):
                    stack.append(ValueNode(i, UNPACKED, instr.arg, operands, instr.lineno))
            elif pushes:
                stack.append(node)
    return SymbolicTrace(nodes=nodes)


def callee_name(node: ValueNode) -> Optional[str]:
    """The syntactic name of a call's target (``f(...)`` or ``obj.m(...)``)."""
    if node.opcode not in (op.CALL, op.CALL_METHOD) or not node.operands:
        return None
    callee = node.operands[0]
    if callee.opcode in (op.LOAD_NAME, op.LOAD_METHOD, op.LOAD_ATTR):
        return callee.arg
    return None


def qualified_callee(node: ValueNode) -> Optional[Tuple[Optional[str], str]]:
    """The (root, attr) pair of a call target, resolving attribute loads.

    ``np.add(...)`` (LOAD_ATTR or LOAD_METHOD over a LOAD_NAME root)
    yields ``("np", "add")``; a direct ``f(...)`` yields ``(None, "f")``;
    anything deeper (``a.b.c(...)``, computed callees) yields ``None``.
    """
    if node.opcode not in (op.CALL, op.CALL_METHOD) or not node.operands:
        return None
    callee = node.operands[0]
    if callee.opcode == op.LOAD_NAME:
        return (None, callee.arg)
    if callee.opcode in (op.LOAD_ATTR, op.LOAD_METHOD) and callee.operands:
        root = callee.operands[0]
        if root.opcode == op.LOAD_NAME:
            return (root.arg, callee.arg)
    return None


def call_arguments(node: ValueNode) -> Tuple[ValueNode, ...]:
    """Positional+keyword argument nodes of a CALL/CALL_METHOD node."""
    if node.opcode not in (op.CALL, op.CALL_METHOD):
        return ()
    return node.operands[1:]


def method_receiver(node: ValueNode) -> Optional[ValueNode]:
    """The receiver expression of a CALL_METHOD node."""
    if node.opcode != op.CALL_METHOD or not node.operands:
        return None
    callee = node.operands[0]
    if callee.opcode == op.LOAD_METHOD and callee.operands:
        return callee.operands[0]
    return None
