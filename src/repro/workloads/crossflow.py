"""Chatty-vs-batched workload pair for the cross-flow analysis.

``CHATTY``: an element-wise doubling loop that crosses the Python↔native
boundary twice per iteration (``np.get`` + ``np.put``) and then takes a
redundant native→Python→native round trip (``tolist`` + ``asarray``) —
the boundary anti-patterns §7's case studies keep finding in the wild.
``BATCHED``: the same computation as one vectorized expression, which
must produce **zero** boundary findings (the false-positive control).
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _chatty_source(scale: float) -> str:
    n = max(int(400 * scale), 50)
    return f"""n = {n}
src = np.arange(n)
dst = np.zeros(n)
for i in range(n):
    v = np.get(src, i)
    np.put(dst, i, v * 2.0)
snapshot = dst.tolist()
result = np.asarray(snapshot)
print(result.sum())
"""


def _batched_source(scale: float) -> str:
    n = max(int(400 * scale), 50)
    return f"""n = {n}
src = np.arange(n)
dst = src * 2.0
print(dst.sum())
"""


CHATTY = Workload(
    name="chatty",
    source_builder=_chatty_source,
    description="Element-wise native calls: two boundary crossings per iteration",
)

BATCHED = Workload(
    name="batched",
    source_builder=_batched_source,
    description="Same computation vectorized: one crossing total (control)",
)
