"""Leak workloads for §3.4's detector.

``LEAKY``: a request handler retains one buffer per request in a cache
that is never evicted — the classic accidental-reference leak.
``BALANCED``: the same allocation pattern with proper release, which must
*not* be reported (the false-positive control).
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _leaky_source(scale: float) -> str:
    requests = max(int(35 * scale), 25)
    return f"""
cache = []
processed = 0

def handle_request(req):
    global processed
    payload = py_buffer(11000000)
    cache.append(payload)
    processed = processed + 1
    return processed

for req in range({requests}):
    handle_request(req)
print(processed)
"""


def _balanced_source(scale: float) -> str:
    requests = max(int(35 * scale), 25)
    return f"""
processed = 0

def handle_request(req):
    global processed
    payload = py_buffer(11000000)
    processed = processed + 1
    del payload
    return processed

for req in range({requests}):
    handle_request(req)
print(processed)
"""


LEAKY = Workload(
    name="leaky",
    source_builder=_leaky_source,
    description="Request handler that accidentally retains every payload",
    install_libs=False,
)

BALANCED = Workload(
    name="balanced",
    source_builder=_balanced_source,
    description="Same allocation pattern with proper release (control)",
    install_libs=False,
)
