"""Concurrency-plane workloads: async server, fork ETL, producer/consumer.

One workload per concurrency plane the profiler attributes:

``ASYNC_SERVER``: an event loop serving N requests, each handler task
awaiting network IO around a Python parse loop and a vectorized compute
step — per-task CPU vs idle time is the signal.
``FORK_ETL``: a fork-pool extract/transform/load — each worker reads,
transforms in a Python loop plus a native vector op, and writes; the
children's work must land in the (stitched or shared-stats) profile.
``PRODUCER_CONSUMER``: two threads contending on one lock with a native
critical section — per-line blocked time and the who-blocks-whom edges
are the signal.

Source builders only vary numeric constants with scale, so line numbers
(and therefore goldens and accuracy baselines) are stable across scales.
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _async_server_source(scale: float) -> str:
    requests = max(int(8 * scale), 2)
    parse_iters = max(int(300 * scale), 30)
    req_bytes = max(int(2_000_000 * scale), 100_000)
    vec_n = max(int(600 * scale), 60)
    return f"""requests = {requests}
def handler(req):
    aio.io({req_bytes})
    i = 0
    acc = 0.0
    while i < {parse_iters}:
        acc = acc + i * 0.5
        i = i + 1
    v = np.arange({vec_n})
    s = (v * 2.0).sum()
    aio.io({req_bytes // 4})

def main():
    r = 0
    while r < requests:
        aio.spawn(handler, r)
        r = r + 1
    aio.gather_all()

aio.run(main)
print("served", requests)
"""


def _fork_etl_source(scale: float) -> str:
    workers = 3
    read_bytes = max(int(4_000_000 * scale), 200_000)
    loop_iters = max(int(400 * scale), 40)
    vec_n = max(int(800 * scale), 80)
    return f"""def worker(wid):
    raw = io.read({read_bytes})
    i = 0
    acc = 0
    while i < {loop_iters}:
        acc = acc + i
        i = i + 1
    v = np.arange({vec_n})
    t = (v * 1.5).sum()
    io.write({read_bytes // 2})

if is_main():
    mp.run_workers(worker, {workers})
    print("etl done")
"""


def _producer_consumer_source(scale: float) -> str:
    items = max(int(6 * scale), 2)
    crit_s = 0.02
    think_ops = max(int(200 * scale), 20)
    return f"""lock = make_lock("queue")
def producer(n):
    i = 0
    while i < n:
        lock_acquire(lock)
        native_work({crit_s})
        lock_release(lock)
        native_ops({think_ops})
        i = i + 1

def consumer(n):
    i = 0
    while i < n:
        lock_acquire(lock)
        native_work({crit_s})
        lock_release(lock)
        native_ops({think_ops})
        i = i + 1

p = spawn(producer, {items})
c = spawn(consumer, {items})
join(p)
join(c)
print("processed", {items} + {items})
"""


ASYNC_SERVER = Workload(
    name="async_server",
    source_builder=_async_server_source,
    description="Event loop serving N requests: per-task CPU vs await-idle time",
)

FORK_ETL = Workload(
    name="fork_etl",
    source_builder=_fork_etl_source,
    description="Fork-pool ETL: child work stitched into the parent profile",
)

PRODUCER_CONSUMER = Workload(
    name="producer_consumer",
    source_builder=_producer_consumer_source,
    description="Two threads contending on one lock: blocked-time attribution",
)
