"""mdp — Markov decision process solving (value iteration flavour).

Profile: dict-heavy pure Python with moderate transient volume and a flat
footprint. Table 2 row: ~53x rate-vs-threshold sample ratio.
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _source(scale: float) -> str:
    sweeps = max(int(300 * scale), 3)
    spike_every = max(sweeps // 3, 1)
    return f"""
def bellman_update(values, states, gamma):
    best = 0
    for s in range(states):
        q = values[s] * gamma + s % 7
        if q > best:
            best = q
        values[s] = q
    return best

def sweep(values, states):
    best = bellman_update(values, states, 0.95)
    scratch(2750000)
    scratch(2750000)
    return best

values = {{}}
for s in range(40):
    values[s] = 0
result = 0
spikes = []
for it in range({sweeps}):
    result = sweep(values, 40)
    if it % {spike_every} == 1:
        spikes.append(py_buffer(12000000))
    if it % {spike_every} == 3:
        spikes.clear()
print(result)
"""


WORKLOAD = Workload(
    name="mdp",
    source_builder=_source,
    description="Value iteration: dict-heavy Python, moderate churn",
    repetitions=5,
)
