"""sympy — symbolic expression manipulation.

Profile: builds and discards large expression trees constantly — the
second-largest allocation volume of the suite with an almost perfectly
flat footprint, giving Table 2's extreme 676x rate-vs-threshold ratio.
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _source(scale: float) -> str:
    outer = max(int(420 * scale), 4)
    spike_every = max(outer // 5, 1)
    return f"""
def expand_term(coeff, power):
    acc = coeff
    for i in range(power):
        acc = acc * 3 + i - coeff % 5
    return acc

def simplify_round(size):
    total = 0
    for term in range(size):
        total = total + expand_term(term % 9, 3)
    for chunk in range(16):
        scratch(5200000)
    return total

result = 0
spikes = []
for rep in range({outer}):
    result = result + simplify_round(8)
    if rep % {spike_every} == 1:
        spikes.append(py_buffer(12000000))
    if rep % {spike_every} == 3:
        spikes.clear()
print(result)
"""


WORKLOAD = Workload(
    name="sympy",
    source_builder=_source,
    description="Symbolic math: huge expression-tree churn, flat footprint",
    repetitions=25,
)
