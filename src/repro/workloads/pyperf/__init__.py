"""Mini-language re-creations of the Table 1 pyperformance suite.

Each module documents the behavioural profile it reproduces: opcode count
(virtual runtime), call density (tracer overhead), allocation volume
(rate-based sample count, Table 2), and footprint movement (threshold
sample count, Table 2).
"""

from repro.workloads.pyperf.registry import PYPERF_WORKLOADS

__all__ = ["PYPERF_WORKLOADS"]
