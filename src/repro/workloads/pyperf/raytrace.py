"""raytrace — the pure-Python ray tracer.

Profile: the most call-dense benchmark in the suite (vector math through
small functions), which is what makes deterministic function tracers pay
dearly here (Table 3: line_profiler 11.6x, profile 20.9x on this row).
Moderate transient volume; flat footprint (~31x Table 2 ratio).
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _source(scale: float) -> str:
    rays = max(int(520 * scale), 4)
    spike_every = max(rays // 4, 1)
    return f"""
def dot(ax, ay, az, bx, by, bz):
    return ax * bx + ay * by + az * bz

def scale_add(ax, ay, az, t):
    return ax + t * 2 - ay * t + az

def trace_ray(seed):
    x = seed % 13
    y = (seed * 7) % 11
    z = (seed * 3) % 5
    acc = 0
    for bounce in range(6):
        d = dot(x, y, z, z, y, x)
        acc = acc + scale_add(d, x, y, bounce)
        x = (x + 1) % 13
    scratch(2170000)
    return acc

total = 0
spikes = []
for ray in range({rays}):
    total = total + trace_ray(ray)
    if ray % {spike_every} == 1:
        spikes.append(py_buffer(12000000))
    if ray % {spike_every} == 3:
        spikes.clear()
print(total)
"""


WORKLOAD = Workload(
    name="raytrace",
    source_builder=_source,
    description="Ray tracer: call-dense vector math, moderate churn",
    repetitions=25,
)
