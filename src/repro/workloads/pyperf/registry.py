"""The Table 1 suite, in the paper's order."""

from __future__ import annotations

from typing import Dict

from repro.workloads.base import Workload
from repro.workloads.pyperf.async_tree_io import (
    ASYNC_TREE_IO_IO,
    ASYNC_TREE_IO_MEMOIZATION,
    ASYNC_TREE_IO_MIXED,
    ASYNC_TREE_IO_NONE,
)
from repro.workloads.pyperf.docutils_like import WORKLOAD as DOCUTILS
from repro.workloads.pyperf.fannkuch import WORKLOAD as FANNKUCH
from repro.workloads.pyperf.mdp import WORKLOAD as MDP
from repro.workloads.pyperf.pprint_bench import WORKLOAD as PPRINT
from repro.workloads.pyperf.raytrace import WORKLOAD as RAYTRACE
from repro.workloads.pyperf.sympy_like import WORKLOAD as SYMPY

PYPERF_WORKLOADS: Dict[str, Workload] = {
    workload.name: workload
    for workload in (
        ASYNC_TREE_IO_NONE,
        ASYNC_TREE_IO_IO,
        ASYNC_TREE_IO_MIXED,
        ASYNC_TREE_IO_MEMOIZATION,
        DOCUTILS,
        FANNKUCH,
        MDP,
        PPRINT,
        RAYTRACE,
        SYMPY,
    )
}
