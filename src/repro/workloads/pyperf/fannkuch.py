"""fannkuch — the pancake-flipping benchmark.

Profile: pure-Python list manipulation in tight loops; enormous transient
allocation volume with an essentially flat footprint. Table 2 row:
rate-based sampling takes ~85x more samples than threshold-based.
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _source(scale: float) -> str:
    outer = max(int(620 * scale), 3)
    spike_every = max(outer // 2, 1)
    return f"""
def flip(perm, k):
    i = 0
    j = k - 1
    while i < j:
        tmp = perm[i]
        perm[i] = perm[j]
        perm[j] = tmp
        i = i + 1
        j = j - 1
    return perm

def fannkuch_round(n):
    perm = []
    for i in range(n):
        perm.append(i)
    flips = 0
    for i in range(12):
        k = perm[0] + 1
        flip(perm, k)
        flips = flips + 1
    scratch(3450000)
    return flips

total = 0
spikes = []
for rep in range({outer}):
    total = total + fannkuch_round(9)
    if rep % {spike_every} == 1:
        spikes.append(py_buffer(12000000))
    if rep % {spike_every} == 3:
        spikes.clear()
print(total)
"""


WORKLOAD = Workload(
    name="fannkuch",
    source_builder=_source,
    description="Pancake flipping: pure Python, huge churn, flat footprint",
    repetitions=3,
)
