"""docutils — reStructuredText document processing.

Profile: deeply nested pure-Python processing with the *lowest* allocation
volume in the suite (Table 2 row: 20 rate samples vs 5 threshold samples)
and a slowly growing then released document structure.
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _source(scale: float) -> str:
    sections = max(int(48 * scale), 3)
    spike_every = max(sections // 3, 1)
    return f"""
def parse_inline(seed, n):
    acc = 0
    for i in range(n):
        acc = acc + (seed * 17 + i) % 101
    return acc

def parse_paragraph(seed):
    total = 0
    for sentence in range(8):
        total = total + parse_inline(seed + sentence, 10)
    return total

def parse_section(doc, seed):
    body = 0
    for para in range(5):
        body = body + parse_paragraph(seed * 7 + para)
    doc.append(body)
    scratch(1900000)
    return body

doc = []
spikes = []
total = 0
for section in range({sections}):
    total = total + parse_section(doc, section)
    if section % {spike_every} == 1:
        spikes.append(py_buffer(12000000))
    if section % {spike_every} == 3:
        spikes.clear()
doc.clear()
print(total)
"""


WORKLOAD = Workload(
    name="docutils",
    source_builder=_source,
    description="Document processing: deep calls, low allocation volume",
    repetitions=5,
)
