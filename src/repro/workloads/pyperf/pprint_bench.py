"""pprint — pretty-printing a large structure.

Profile: string building produces the *largest* transient allocation
volume of the suite (Table 2 row: 7976 rate samples vs 23 threshold
samples, a 347x ratio) with occasional real footprint spikes as large
intermediate buffers are assembled and released.
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _source(scale: float) -> str:
    outer = max(int(760 * scale), 2)
    spike_every = 70
    return f"""
def format_node(depth, width):
    acc = 0
    for i in range(width):
        acc = acc + (depth * 31 + i) % 97
    for i in range(11):
        scratch(5100000)
    return acc

def render(reps):
    total = 0
    big = []
    for rep in range(reps):
        total = total + format_node(rep % 6, 20)
        if rep % {spike_every} == 0:
            big.append(py_buffer(12500000))
        if rep % {spike_every} == 3:
            big.clear()
    return total

print(render({outer}))
"""


WORKLOAD = Workload(
    name="pprint",
    source_builder=_source,
    description="Pretty printer: extreme string churn, occasional spikes",
    repetitions=7,
)
