"""async_tree_io — the four async-task-tree variants.

The real benchmark builds a tree of asyncio tasks; on a single-threaded
event loop the observable behaviour is interleaved short IO waits and task
bookkeeping. Profile common to all variants: per-cycle construction and
teardown of a task tree whose buffers exceed the sampling threshold —
the footprint *oscillates*, so threshold-based sampling takes a couple of
samples per cycle and the Table 2 rate/threshold ratio is only 2–4x
(unlike the flat-footprint CPU benchmarks).

Variants: ``none`` (pure task overhead), ``io`` (longer waits),
``cpu_io_mixed`` (extra Python work), ``memoization`` (a cache cuts the
allocation volume).
"""

from __future__ import annotations

from repro.workloads.base import Workload

_TEMPLATE = """
def spin(n):
    acc = 0
    for i in range(n):
        acc = acc + i % 9
    return acc

def build_tree(width):
    tree = []
    for node in range(width):
        tree.append(py_buffer(1300000))
        scratch({scratch_bytes})
    return tree

def run_cycle(cycle):
    tree = build_tree(10)
    waited = 0
    for node in range(10):
        io.wait({io_wait})
        waited = waited + spin({spin_ops})
    tree.clear()
    return waited

total = 0
for cycle in range({cycles}):
    total = total + run_cycle(cycle)
print(total)
"""

_MEMO_TEMPLATE = """
def spin(n):
    acc = 0
    for i in range(n):
        acc = acc + i % 9
    return acc

cache = {{}}

def cached_spin(key, n):
    if key in cache:
        return cache[key]
    value = spin(n)
    cache[key] = value
    return value

def build_tree(width):
    tree = []
    for node in range(width):
        tree.append(py_buffer(1300000))
        scratch({scratch_bytes})
    return tree

def run_cycle(cycle):
    tree = build_tree(10)
    waited = 0
    for node in range(10):
        io.wait({io_wait})
        waited = waited + cached_spin(node % 4, {spin_ops})
    tree.clear()
    return waited

total = 0
for cycle in range({cycles}):
    total = total + run_cycle(cycle)
print(total)
"""


def _builder(template: str, cycles: int, io_wait: float, spin_ops: int, scratch_bytes: int):
    def build(scale: float) -> str:
        return template.format(
            cycles=max(int(cycles * scale), 2),
            io_wait=io_wait,
            spin_ops=spin_ops,
            scratch_bytes=scratch_bytes,
        )

    return build


ASYNC_TREE_IO_NONE = Workload(
    name="async_tree_io_none",
    source_builder=_builder(
        _TEMPLATE, cycles=105, io_wait=0.0005, spin_ops=20, scratch_bytes=1500000
    ),
    description="Async task tree: pure task overhead, oscillating footprint",
    repetitions=22,
)

ASYNC_TREE_IO_IO = Workload(
    name="async_tree_io_io",
    source_builder=_builder(
        _TEMPLATE, cycles=92, io_wait=0.004, spin_ops=14, scratch_bytes=1600000
    ),
    description="Async task tree: IO-dominated variant",
    repetitions=9,
)

ASYNC_TREE_IO_MIXED = Workload(
    name="async_tree_io_cpu_io_mixed",
    source_builder=_builder(
        _TEMPLATE, cycles=82, io_wait=0.0015, spin_ops=26, scratch_bytes=3260000
    ),
    description="Async task tree: mixed CPU and IO",
    repetitions=14,
)

ASYNC_TREE_IO_MEMOIZATION = Workload(
    name="async_tree_io_memoization",
    source_builder=_builder(
        _MEMO_TEMPLATE, cycles=82, io_wait=0.009, spin_ops=40, scratch_bytes=1060000
    ),
    description="Async task tree: memoized computation (lower volume)",
    repetitions=16,
)
