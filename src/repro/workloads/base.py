"""Workload plumbing."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.interp.libs import install_standard_libraries
from repro.runtime.process import SimProcess


def default_scale() -> float:
    """Benchmark scale factor; override with ``REPRO_SCALE`` (1.0 = paper)."""
    try:
        return float(os.environ.get("REPRO_SCALE", "0.2"))
    except ValueError:
        return 0.2


@dataclass
class Workload:
    """A runnable mini-language program with paper-faithful behaviour."""

    name: str
    #: Builds the source for a given scale in (0, 1].
    source_builder: Callable[[float], str]
    description: str = ""
    install_libs: bool = True
    #: Loop repetitions at scale=1.0 (the Table 1 "Repetitions" column).
    repetitions: int = 0

    def source(self, scale: float = 1.0) -> str:
        return self.source_builder(scale)

    def make_process(self, scale: float = 1.0, **kwargs) -> SimProcess:
        """Build a fresh process ready to run this workload."""
        process = SimProcess(
            self.source(scale), filename=f"{self.name}.py", **kwargs
        )
        if self.install_libs:
            install_standard_libraries(process)
        return process

    def scaled_repetitions(self, scale: float) -> int:
        return max(int(self.repetitions * scale), 1)


def baseline_wall_time(workload: Workload, scale: float = 1.0) -> float:
    """Unprofiled virtual wall time (the denominator of every slowdown)."""
    process = workload.make_process(scale)
    process.run()
    return process.clock.wall
