"""Workloads: the paper's benchmark suite and accuracy microbenchmarks.

Each workload is mini-language source parameterized by a ``scale`` factor
(1.0 reproduces the paper's ≥10-virtual-second runs; benchmarks default to
a faster scale controlled by the ``REPRO_SCALE`` environment variable).
"""

from repro.workloads.base import Workload, baseline_wall_time
from repro.workloads.registry import get_workload, pyperf_suite, workload_names

__all__ = [
    "Workload",
    "baseline_wall_time",
    "get_workload",
    "pyperf_suite",
    "workload_names",
]
