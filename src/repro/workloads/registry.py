"""Top-level workload lookup."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.concurrency import ASYNC_SERVER, FORK_ETL, PRODUCER_CONSUMER
from repro.workloads.crossflow import BATCHED, CHATTY
from repro.workloads.leaky import BALANCED, LEAKY
from repro.workloads.pyperf.registry import PYPERF_WORKLOADS

_EXTRA: Dict[str, Workload] = {
    LEAKY.name: LEAKY,
    BALANCED.name: BALANCED,
    CHATTY.name: CHATTY,
    BATCHED.name: BATCHED,
    ASYNC_SERVER.name: ASYNC_SERVER,
    FORK_ETL.name: FORK_ETL,
    PRODUCER_CONSUMER.name: PRODUCER_CONSUMER,
}


def pyperf_suite() -> Dict[str, Workload]:
    """The Table 1 benchmark suite, in the paper's order."""
    return dict(PYPERF_WORKLOADS)


def workload_names() -> List[str]:
    return list(PYPERF_WORKLOADS) + list(_EXTRA)


def get_workload(name: str) -> Workload:
    workload = PYPERF_WORKLOADS.get(name) or _EXTRA.get(name)
    if workload is None:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {workload_names()}"
        )
    return workload
