"""The memory-accuracy benchmark of §6.3 (Figure 6).

Allocates a single 512 MiB array, then *accesses* (writes) a varying
fraction of it. Interposition-based profilers see the allocation
regardless; RSS-based profilers only see the touched pages — plus
unrelated residency noise — and mis-report accordingly.
"""

from __future__ import annotations

from repro.workloads.base import Workload

#: 512 MiB of float64 elements.
ARRAY_ELEMENTS = 67_108_864
ARRAY_MB = 512.0

_TEMPLATE = """
a = np.empty({elements})
np.touch(a, {fraction})
hold = 0
for i in range(400):
    hold = hold + i
del a
done = 1
"""


def membench(touch_fraction: float) -> Workload:
    """Build the Figure 6 workload for one touched fraction (0..1)."""
    if not 0.0 <= touch_fraction <= 1.0:
        raise ValueError(f"touch_fraction must be in [0,1], got {touch_fraction}")

    def build(scale: float) -> str:  # scale has no effect here by design
        return _TEMPLATE.format(elements=ARRAY_ELEMENTS, fraction=touch_fraction)

    return Workload(
        name=f"membench_{int(touch_fraction * 100):03d}",
        source_builder=build,
        description="512 MiB allocation with partial access (Fig. 6)",
        install_libs=True,
    )
