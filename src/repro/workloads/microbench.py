"""The function-bias microbenchmark of §6.2 (Figure 5).

Two semantically identical functions: ``with_call`` invokes a helper
inside its loop, ``inlined`` inlines the same logic. The experiment varies
the share of work done by each variant and compares each profiler's
reported time for the call-using variant against the ground truth:
trace-based profilers dilate the call-heavy variant (function bias);
sampling profilers do not.
"""

from __future__ import annotations

from repro.workloads.base import Workload

_TEMPLATE = """
def helper(i):
    return i * 3 - 1

def with_call(n):
    t = 0
    for i in range(n):
        t = t + helper(i)
    return t

def inlined(n):
    t = 0
    for i in range(n):
        t = t + i * 3 - 1
    return t

a = with_call({call_iters})
b = inlined({inline_iters})
print(a - b)
"""

#: Lines (1-based in the generated source) belonging to each variant,
#: used when aggregating line-granularity reports to per-variant times.
WITH_CALL_LINES = range(1, 9)   # helper + with_call bodies
INLINED_LINES = range(10, 15)
WITH_CALL_FUNCTIONS = ("with_call", "helper")
INLINED_FUNCTIONS = ("inlined",)


def microbenchmark(call_fraction: float, total_iters: int = 12000) -> Workload:
    """Build the microbenchmark with the given work split.

    ``call_fraction`` is the fraction of loop iterations given to the
    function-call variant (the x-axis of Figure 5).
    """
    if not 0.0 <= call_fraction <= 1.0:
        raise ValueError(f"call_fraction must be in [0,1], got {call_fraction}")
    call_iters = int(total_iters * call_fraction)
    inline_iters = total_iters - call_iters

    def build(scale: float) -> str:
        return _TEMPLATE.format(
            call_iters=max(int(call_iters * scale), 1),
            inline_iters=max(int(inline_iters * scale), 1),
        )

    return Workload(
        name=f"microbench_{int(call_fraction * 100):03d}",
        source_builder=build,
        description="Function-bias microbenchmark (Fig. 5)",
        install_libs=False,
    )
