"""The simulated interpreter's evaluation loop.

The VM executes compiled bytecode on virtual time and reproduces the four
CPython behaviours Scalene's algorithms are built on:

1. **Signals are checked at bytecode boundaries** of the **main thread**
   only; a native call runs to completion with signals pending (§2.1).
2. **The GIL**: one thread executes at a time; the scheduler preempts at
   the switch interval (§2.2).
3. **Tracing** fires call/line/return (and c_call/c_return) events with a
   real probe cost (§6.2's function bias).
4. **Every Python object allocation** flows through the PyMem hooks, and
   native library allocations flow through the system-allocator shim
   (§3.1), including the small-object churn of interpreter temporaries.

Dispatch design (see DESIGN.md, "Threaded dispatch"): instructions are
precompiled into *threaded entries* ``(kind, arg, lineno, churn, cache,
hits)`` cached on the code object; hot opcodes dispatch on small-int kinds
inside the loop, cold opcodes through a handler table. Per-op accounting
is batched and flushed at every observation point (signal delivery, trace
events, calls, returns, slice exits), and the pending-signal check is
batched to a configurable quantum (``REPRO_EVAL_QUANTUM``) while timer
expirations are detected exactly via cached deadlines — so every signal is
still delivered at an opcode boundary, preserving the paper's semantics.

Tiering (DESIGN.md §11): the ``hits`` slot — historically absent; earlier
revisions of this docstring and the ROADMAP described entries as carrying
execution counters when they did not — is a mutable ``[hit_count, trace]``
cell attached only to loop headers (FOR_ITER) and backward jumps. The
dispatch loop bumps the count each time the back edge executes; past
``VMConfig.jit_threshold`` the region is handed to ``repro.interp.jit``,
and subsequent header executions run the compiled trace when the
observation-point entry guards hold (see that module's docstring for the
bit-identity contract). ``REPRO_JIT=0`` disables the tier entirely.
"""

from __future__ import annotations

import operator as host_operator
import os
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.errors import SimRuntimeError, VMError
from repro.interp import opcodes as op
from repro.interp.code import CodeObject, Frame, SimFunction
from repro.interp.jit import (
    DEOPT_LIMIT as _JIT_DEOPT_LIMIT,
    JIT_FAILED,
    compile_trace,
    threshold_from_env,
)
from repro.interp.objects import (
    BlockRequest,
    BoundMethod,
    HeapBacked,
    NativeFunction,
    SimDict,
    SimList,
    decref,
    incref,
    release_temp,
    sim_iter,
)
from repro.runtime import tracing

# run_slice exit statuses
PREEMPTED = "preempted"
BLOCKED = "blocked"
FINISHED = "finished"

_ITER_EXHAUSTED = object()
_CALL_PUSHED_FRAME = object()
_MISSING = object()


def _default_eval_quantum() -> int:
    """Pending-signal check batching (ops), from ``REPRO_EVAL_QUANTUM``.

    Timer expirations are detected exactly regardless of this value (via
    cached deadlines); the quantum only bounds how many opcodes an
    out-of-band ``raise_signal`` can wait before delivery.
    """
    raw = os.environ.get("REPRO_EVAL_QUANTUM", "8")
    try:
        return max(1, int(raw))
    except ValueError:
        return 8


@dataclass
class VMConfig:
    """Tunables of the simulated interpreter.

    ``op_cost`` is the virtual CPU cost of one bytecode instruction. It is
    deliberately large relative to real CPython (tens of microseconds vs.
    tens of nanoseconds) so that paper-scale virtual durations (~10 s per
    benchmark) stay tractable on the host; all profiler intervals live in
    the same virtual time base, so ratios are preserved.
    """

    op_cost: float = 50e-6
    #: Model small-object churn: each object-creating opcode allocates a
    #: small Python object through the PyMem hooks; a bounded FIFO frees
    #: old ones, so churn adds allocation volume but ~zero net footprint.
    churn_enabled: bool = True
    churn_object_bytes: int = 28
    churn_fifo_depth: int = 32
    #: Size of a frame object allocated per Python call.
    frame_object_bytes: int = 368
    #: How many opcodes may execute between pending-signal checks (timer
    #: deadlines are still honoured exactly; see DESIGN.md).
    eval_quantum: int = field(default_factory=_default_eval_quantum)
    #: Fixed cost of one Python↔native boundary crossing, in units of
    #: ``op_cost``: argument parsing, calling-convention glue, and result
    #: boxing. Charged as native time on every native-library call (not on
    #: interpreter builtins) and attributed separately from the work done
    #: inside the call, so chatty call patterns are visible as overhead.
    crossing_overhead_ops: float = 0.25
    #: Trace-JIT hotness threshold (back-edge executions before a loop
    #: region is compiled); ``None`` disables the tier. Resolved from
    #: ``REPRO_JIT`` / ``REPRO_JIT_THRESHOLD`` at construction time.
    jit_threshold: Optional[int] = field(default_factory=threshold_from_env)


_BINARY_FUNCS = {
    "+": host_operator.add,
    "-": host_operator.sub,
    "*": host_operator.mul,
    "/": host_operator.truediv,
    "//": host_operator.floordiv,
    "%": host_operator.mod,
    "**": host_operator.pow,
    "<<": host_operator.lshift,
    ">>": host_operator.rshift,
    "&": host_operator.and_,
    "|": host_operator.or_,
    "^": host_operator.xor,
}

_COMPARE_FUNCS = {
    "==": host_operator.eq,
    "!=": host_operator.ne,
    "<": host_operator.lt,
    "<=": host_operator.le,
    ">": host_operator.gt,
    ">=": host_operator.ge,
    "is": lambda a, b: a is b,
    "is not": lambda a, b: a is not b,
}

#: Operand classes whose binary-op semantics are exactly the host's and
#: which are never heap-backed (so skipping ``release_temp`` is a no-op).
_HOST_OPERANDS = frozenset({int, float, bool, str, tuple, complex})


# Small-int opcode kinds for threaded dispatch. Hot kinds are inlined in
# ``run_slice`` (ordered by measured frequency); cold kinds go through the
# ``VM._cold`` handler table.
_K_LOAD_NAME = 0
_K_LOAD_CONST = 1
_K_BINARY_OP = 2
_K_STORE_NAME = 3
_K_COMPARE_OP = 4
_K_POP_JUMP_IF_FALSE = 5
_K_JUMP = 6
_K_CALL = 7
_K_FOR_ITER = 8
_K_POP_JUMP_IF_TRUE = 9
_K_BINARY_SUBSCR = 10
_K_STORE_SUBSCR = 11
_K_LOAD_ATTR = 12
_K_RETURN_VALUE = 13
_K_POP_TOP = 14
_K_GET_ITER = 15
_K_BUILD_LIST = 16
_K_BUILD_TUPLE = 17
_K_LIST_APPEND = 18
_K_UNARY_OP = 19
_K_JUMP_IF_FALSE_OR_POP = 20
_K_JUMP_IF_TRUE_OR_POP = 21
_K_BUILD_MAP = 22
_K_BUILD_SLICE = 23
_K_UNPACK_SEQUENCE = 24
_K_MAKE_FUNCTION = 25
_K_DELETE_NAME = 26
_K_NOP = 27
_K_SETUP_EXCEPT = 28
_K_POP_BLOCK = 29
_N_KINDS = 30

_KIND = {
    op.LOAD_NAME: _K_LOAD_NAME,
    op.LOAD_CONST: _K_LOAD_CONST,
    op.BINARY_OP: _K_BINARY_OP,
    op.STORE_NAME: _K_STORE_NAME,
    op.COMPARE_OP: _K_COMPARE_OP,
    op.POP_JUMP_IF_FALSE: _K_POP_JUMP_IF_FALSE,
    op.JUMP: _K_JUMP,
    op.CALL: _K_CALL,
    op.CALL_METHOD: _K_CALL,
    op.FOR_ITER: _K_FOR_ITER,
    op.POP_JUMP_IF_TRUE: _K_POP_JUMP_IF_TRUE,
    op.BINARY_SUBSCR: _K_BINARY_SUBSCR,
    op.STORE_SUBSCR: _K_STORE_SUBSCR,
    op.LOAD_ATTR: _K_LOAD_ATTR,
    op.LOAD_METHOD: _K_LOAD_ATTR,
    op.RETURN_VALUE: _K_RETURN_VALUE,
    op.POP_TOP: _K_POP_TOP,
    op.GET_ITER: _K_GET_ITER,
    op.BUILD_LIST: _K_BUILD_LIST,
    op.BUILD_TUPLE: _K_BUILD_TUPLE,
    op.LIST_APPEND: _K_LIST_APPEND,
    op.UNARY_OP: _K_UNARY_OP,
    op.JUMP_IF_FALSE_OR_POP: _K_JUMP_IF_FALSE_OR_POP,
    op.JUMP_IF_TRUE_OR_POP: _K_JUMP_IF_TRUE_OR_POP,
    op.BUILD_MAP: _K_BUILD_MAP,
    op.BUILD_SLICE: _K_BUILD_SLICE,
    op.UNPACK_SEQUENCE: _K_UNPACK_SEQUENCE,
    op.MAKE_FUNCTION: _K_MAKE_FUNCTION,
    op.DELETE_NAME: _K_DELETE_NAME,
    op.NOP: _K_NOP,
    op.SETUP_EXCEPT: _K_SETUP_EXCEPT,
    op.POP_BLOCK: _K_POP_BLOCK,
}


def _build_entries(code: CodeObject) -> list:
    """Precompute threaded-dispatch entries for ``code``.

    One ``(kind, arg, lineno, churn, cache, hits)`` tuple per instruction:
    constants are pre-resolved (LOAD_CONST / MAKE_FUNCTION), operator
    functions pre-bound (BINARY_OP / COMPARE_OP), and mutable inline-cache
    slots attached (LOAD_NAME / LOAD_ATTR). Entries are cached on the code
    object and shared across VMs (the inline caches are validated by
    identity + version, so cross-process sharing is safe — see DESIGN.md).

    ``hits`` is the tier-1 hotness cell, ``[hit_count, trace]``, attached
    only where a loop region can be entered: FOR_ITER headers and backward
    JUMPs (except back edges of for-loops, whose FOR_ITER header owns the
    region). It is ``None`` on every other entry so the hot loop pays one
    ``is not None`` test to skip it. Rebuilding entries discards any
    compiled traces: trace closures capture these cache lists by identity.
    """
    entries = []
    consts = code.constants
    allocating = op.ALLOCATING_OPCODES
    kinds = _KIND
    instrs = code.instructions
    for idx, instr in enumerate(instrs):
        opcode = instr.opcode
        kind = kinds.get(opcode)
        if kind is None:
            raise VMError(f"unknown opcode {opcode}")
        arg = instr.arg
        cache = None
        hits = None
        if kind == _K_LOAD_CONST or kind == _K_MAKE_FUNCTION:
            arg = consts[arg]
        elif kind == _K_LOAD_NAME:
            # [globals_dict, globals_version, value]
            cache = [None, -1, None]
        elif kind == _K_LOAD_ATTR:
            # [receiver, bound method]
            cache = [None, None]
        elif kind == _K_BINARY_OP:
            cache = _BINARY_FUNCS.get(arg)
        elif kind == _K_COMPARE_OP:
            cache = _COMPARE_FUNCS.get(arg)  # None for in / not in
        if kind == _K_FOR_ITER:
            hits = [0, None]
        elif kind == _K_JUMP and arg <= idx and instrs[arg].opcode != op.FOR_ITER:
            hits = [0, None]
        entries.append((kind, arg, instr.lineno, opcode in allocating, cache, hits))
    code._threaded = entries
    code._jit_regions = None
    return entries


class NativeContext:
    """Capabilities handed to native functions (see NativeFunction).

    Native code consumes CPU time *without signal checks*, allocates
    native memory through the shim, copies bytes (copy volume), performs
    blocking IO, and launches GPU kernels.
    """

    __slots__ = ("process", "thread")

    def __init__(self, process, thread) -> None:
        self.process = process
        self.thread = thread

    # -- time ----------------------------------------------------------------

    def consume(self, seconds: float) -> None:
        """Execute natively for ``seconds`` of CPU time (signals deferred)."""
        if seconds <= 0:
            return
        process = self.process
        process.clock.advance_cpu(seconds)
        self.thread.cpu_time += seconds
        if process.ground_truth is not None:
            process.ground_truth.record_native_time(self.thread, seconds)

    # -- memory ----------------------------------------------------------------

    def alloc(self, nbytes: int, *, touch: bool = True, tag: str = "native"):
        """Allocate native memory (e.g. an array buffer)."""
        return self.process.mem.native_alloc(nbytes, self.thread, touch=touch, tag=tag)

    def free(self, alloc) -> None:
        self.process.mem.native_free(alloc, self.thread)

    def touch(self, alloc, nbytes: Optional[int] = None) -> None:
        """Write pages of a native allocation (raises its RSS share)."""
        self.process.mem.shim.touch(alloc, nbytes)

    def scratch(self, nbytes: int) -> None:
        """Transient Python-domain allocation volume (no footprint change)."""
        self.process.mem.py_scratch(nbytes, self.thread)

    def py_alloc(self, nbytes: int):
        """Persistent Python-domain allocation (e.g. boxed result objects)."""
        return self.process.mem.py_alloc(nbytes, self.thread)

    def py_free(self, handle) -> None:
        self.process.mem.py_free(handle, self.thread)

    def memcpy(self, nbytes: int, direction: str = "host") -> None:
        self.process.mem.memcpy(nbytes, self.thread, direction)

    def marshal(
        self, nbytes: int, conversion: str, direction: str = "host"
    ) -> None:
        """A boundary *conversion* copy: memcpy plus directional accounting.

        ``conversion`` is ``to_native`` (Python objects materialized into
        a native buffer, e.g. ``np.asarray``) or ``to_python`` (native
        data extracted into Python objects, e.g. ``tolist``). ``direction``
        is forwarded to memcpy so GPU-leg copies (h2d/d2h) keep their
        copy-volume semantics unchanged.
        """
        self.process.mem.memcpy(nbytes, self.thread, direction)
        frame = self.thread.frame
        if frame is not None:
            filename, lineno, _func = frame.location()
            self.process.crossings.record_bytes(filename, lineno, nbytes, conversion)

    # -- blocking ----------------------------------------------------------------

    def io_wait(self, seconds: float) -> Optional[BlockRequest]:
        """Blocking IO: wall time passes, no CPU is consumed."""
        if seconds <= 0:
            return None
        return BlockRequest(
            deadline=self.process.clock.wall + seconds,
            interruptible=True,
            is_io=True,
        )

    # -- GPU ----------------------------------------------------------------

    def gpu_launch(self, duration: float, name: str = "kernel"):
        """Launch an asynchronous kernel occupying the device for ``duration``."""
        device = self.process.gpu
        kernel = device.launch_kernel(self.process.pid, self.process.clock.wall, duration, name)
        if self.process.ground_truth is not None:
            self.process.ground_truth.record_gpu_time(self.thread, duration)
        return kernel

    def gpu_alloc(self, nbytes: int) -> int:
        return self.process.gpu.alloc(self.process.pid, nbytes)

    def gpu_free(self, address: int) -> None:
        self.process.gpu.free(address)

    def gpu_sync(self) -> Optional[BlockRequest]:
        """Wait for all of this process's kernels to finish (system time)."""
        device = self.process.gpu
        now = self.process.clock.wall
        end = max(
            (k.end for k in device._kernels if k.pid == self.process.pid),
            default=now,
        )
        if end <= now:
            return None
        return BlockRequest(deadline=end, interruptible=True, is_io=True)

    # -- misc ----------------------------------------------------------------

    @property
    def clock(self):
        return self.process.clock

    @property
    def mem(self):
        return self.process.mem


class VM:
    """Executes simulated threads one GIL slice at a time."""

    def __init__(self, process, config: Optional[VMConfig] = None) -> None:
        self.process = process
        self.config = config or VMConfig()
        self.instruction_count = 0
        #: Bumped on every store/delete into a globals namespace; validates
        #: LOAD_NAME inline caches (globals and builtins resolutions).
        self._globals_version = 0
        cold = [None] * _N_KINDS
        cold[_K_UNARY_OP] = self._h_unary
        cold[_K_JUMP_IF_FALSE_OR_POP] = self._h_jump_if_false_or_pop
        cold[_K_JUMP_IF_TRUE_OR_POP] = self._h_jump_if_true_or_pop
        cold[_K_BUILD_MAP] = self._h_build_map
        cold[_K_BUILD_SLICE] = self._h_build_slice
        cold[_K_UNPACK_SEQUENCE] = self._h_unpack_sequence
        cold[_K_MAKE_FUNCTION] = self._h_make_function
        cold[_K_DELETE_NAME] = self._h_delete_name
        cold[_K_NOP] = self._h_nop
        cold[_K_SETUP_EXCEPT] = self._h_setup_except
        cold[_K_POP_BLOCK] = self._h_pop_block
        #: Handler table for cold opcodes: ``fn(thread, frame, entry, pc) -> pc``.
        self._cold = cold

    # -- frame management ----------------------------------------------------------

    def make_frame(self, fn: SimFunction, args: tuple, thread, back: Optional[Frame]) -> Frame:
        code = fn.code
        if len(args) != len(code.params):
            raise SimRuntimeError(
                f"{fn.name}() takes {len(code.params)} arguments but {len(args)} were given"
            )
        frame = Frame(code, fn.globals, back=back)
        frame.py_handle = self.process.mem.py_alloc(self.config.frame_object_bytes, thread)
        for name, value in zip(code.params, args):
            incref(value)
            frame.locals[name] = value
        return frame

    def make_module_frame(self, code: CodeObject, globals_dict: dict, thread) -> Frame:
        frame = Frame(code, globals_dict)
        frame.locals = globals_dict  # module scope: locals IS globals
        frame.py_handle = self.process.mem.py_alloc(self.config.frame_object_bytes, thread)
        return frame

    def _teardown_frame(self, frame: Frame, retval: Any, thread) -> None:
        is_module = frame.locals is frame.globals
        if isinstance(retval, HeapBacked):
            retval.rc += 1  # protect from the locals sweep below
        if not is_module:
            for value in frame.locals.values():
                decref(value)
            frame.locals.clear()
        if frame.py_handle is not None:
            self.process.mem.py_free(frame.py_handle, thread)
            frame.py_handle = None
        if isinstance(retval, HeapBacked):
            retval.rc -= 1  # back to floating/stored state; no destroy check

    # -- churn model ----------------------------------------------------------

    def _churn(self, thread) -> None:
        mem = self.process.mem
        handle = mem.py_alloc(self.config.churn_object_bytes, thread)
        fifo = thread.churn
        fifo.append(handle)
        if len(fifo) > self.config.churn_fifo_depth:
            mem.py_free(fifo.popleft(), thread)

    def flush_churn(self, thread) -> None:
        mem = self.process.mem
        while thread.churn:
            mem.py_free(thread.churn.popleft(), thread)

    # -- native context ----------------------------------------------------------

    def _native_ctx(self, thread) -> NativeContext:
        ctx = thread.native_ctx
        if ctx is None:
            ctx = thread.native_ctx = NativeContext(self.process, thread)
        return ctx

    # -- the eval loop ----------------------------------------------------------

    def run_slice(self, thread, wall_deadline: float) -> str:
        """Run ``thread`` until preemption, blocking, or completion.

        The loop dispatches precompiled threaded entries (``_build_entries``)
        on small-int kinds with all per-instruction state hoisted into
        locals. Clock advancement takes a fast path (direct slot updates)
        when the SignalManager is the only clock observer; timer expiry is
        then detected via cached deadlines, which is semantically identical
        because timers depend only on absolute clock values. Per-op
        accounting (cpu_time, instruction_count, ground-truth Python time)
        is batched and flushed at every externally observable point.
        """
        process = self.process
        clock = process.clock
        signals = process.signals
        trace = process.trace
        config = self.config
        ground_truth = process.ground_truth
        gt_enabled = ground_truth is not None
        churn_enabled = config.churn_enabled
        op_cost = config.op_cost
        quantum = config.eval_quantum
        builtins_get = process.builtins.get
        pending = signals._pending
        is_main = thread.is_main
        cold = self._cold
        mem = process.mem
        # Churn state, hoisted so the hot loop can inline _churn().
        py_alloc = mem.py_alloc
        py_free = mem.py_free
        churn_bytes = config.churn_object_bytes
        churn_depth = config.churn_fifo_depth
        fifo = thread.churn
        # Fast clock path only when the SignalManager is the sole observer;
        # external samplers (py-spy/Austin baselines) subscribe to the clock
        # and must see every advance. A fault injector also disables it:
        # clock-jump faults are decided inside advance_cpu, which the fast
        # path bypasses.
        fast_clock = len(clock._observers) <= 1 and clock.faults is None
        # Tier-1 (trace JIT) state. Traces are only entered on the fast
        # clock path: with a fault injector or external clock observers
        # attached the VM stays on tier 0, so fault schedules and sampler
        # observations are interpreter-exact by construction.
        jit_threshold = config.jit_threshold
        JITFAIL = JIT_FAILED
        jit_deopt_limit = _JIT_DEOPT_LIMIT

        K_LOAD_NAME = _K_LOAD_NAME
        K_LOAD_CONST = _K_LOAD_CONST
        K_BINARY_OP = _K_BINARY_OP
        K_STORE_NAME = _K_STORE_NAME
        K_COMPARE_OP = _K_COMPARE_OP
        K_POP_JUMP_IF_FALSE = _K_POP_JUMP_IF_FALSE
        K_JUMP = _K_JUMP
        K_CALL = _K_CALL
        K_FOR_ITER = _K_FOR_ITER
        K_POP_JUMP_IF_TRUE = _K_POP_JUMP_IF_TRUE
        K_BINARY_SUBSCR = _K_BINARY_SUBSCR
        K_STORE_SUBSCR = _K_STORE_SUBSCR
        K_LOAD_ATTR = _K_LOAD_ATTR
        K_RETURN_VALUE = _K_RETURN_VALUE
        K_POP_TOP = _K_POP_TOP
        K_GET_ITER = _K_GET_ITER
        K_BUILD_LIST = _K_BUILD_LIST
        K_BUILD_TUPLE = _K_BUILD_TUPLE
        K_LIST_APPEND = _K_LIST_APPEND
        MISSING = _MISSING
        HOST = _HOST_OPERANDS

        # Resume from a block, if any (handles signal wake-ups and
        # retry-style blocks such as Scalene's patched join).
        if thread.block is not None:
            status = self._resume_from_block(thread)
            if status is not None:
                return status

        frame = thread.frame
        if frame is None:
            return FINISHED

        trace_active = trace.active
        next_cpu_dl, nwd = signals.next_deadlines()
        next_wall_dl = nwd if nwd < wall_deadline else wall_deadline

        ops_done = 0  # charged ops not yet flushed to thread.cpu_time
        gt_ops = 0  # charged ops not yet flushed to ground truth (this line)
        breaker = 0  # pending-signal check countdown (quantum batching)

        while True:  # per-frame loop: re-hoists frame state after call/return
            code = frame.code
            entries = code._threaded
            if entries is None:
                entries = _build_entries(code)
            n = len(entries)
            stack = frame.stack
            f_locals = frame.locals
            f_globals = frame.globals
            global_names = code.global_names
            pc = frame.pc
            cur_line = None  # force line bookkeeping on the first op
            try:
                while True:
                    # ---- quantum breaker: batched pending-signal check ----
                    breaker -= 1
                    if breaker < 0:
                        breaker = quantum
                        if pending and is_main:
                            frame.pc = pc
                            frame.lasti = pc
                            if ops_done:
                                thread.cpu_time += ops_done * op_cost
                                self.instruction_count += ops_done
                                ops_done = 0
                            if gt_ops:
                                ground_truth.record_python_time(thread, gt_ops * op_cost)
                                gt_ops = 0
                            signals.deliver_pending(thread)
                            trace_active = trace.active
                            next_cpu_dl, nwd = signals.next_deadlines()
                            next_wall_dl = nwd if nwd < wall_deadline else wall_deadline

                    if pc >= n:
                        raise VMError(f"pc out of range in {code.name}")
                    entry = entries[pc]
                    kind = entry[0]
                    lineno = entry[2]
                    pc += 1

                    # ---- line bookkeeping (on transitions only) -----------
                    if lineno != cur_line:
                        if gt_ops:
                            ground_truth.record_python_time(thread, gt_ops * op_cost)
                            gt_ops = 0
                        frame.lineno = lineno
                        cur_line = lineno
                        if trace_active and lineno != frame.last_traced_line:
                            frame.last_traced_line = lineno
                            frame.pc = pc - 1
                            frame.lasti = pc - 1
                            if ops_done:
                                thread.cpu_time += ops_done * op_cost
                                self.instruction_count += ops_done
                                ops_done = 0
                            trace.fire(thread, frame, tracing.EVENT_LINE)
                            trace_active = trace.active
                            next_cpu_dl, nwd = signals.next_deadlines()
                            next_wall_dl = nwd if nwd < wall_deadline else wall_deadline

                    # ---- charge the interpreter cost of this instruction --
                    if fast_clock:
                        cpu = clock._cpu + op_cost
                        wall = clock._wall + op_cost
                        clock._cpu = cpu
                        clock._wall = wall
                    else:
                        clock.advance_cpu(op_cost)
                        cpu = clock._cpu
                        wall = clock._wall
                    ops_done += 1
                    if gt_enabled:
                        gt_ops += 1

                    # Small-object churn for object-creating opcodes
                    # (inlined _churn).
                    if entry[3] and churn_enabled:
                        fifo.append(py_alloc(churn_bytes, thread))
                        if len(fifo) > churn_depth:
                            py_free(fifo.popleft(), thread)

                    # ---- execute ------------------------------------------
                    if kind == K_LOAD_NAME:
                        name = entry[1]
                        value = f_locals.get(name, MISSING)
                        if value is MISSING:
                            c = entry[4]
                            if c[0] is f_globals and c[1] == self._globals_version:
                                value = c[2]
                            else:
                                value = f_globals.get(name, MISSING)
                                if value is MISSING:
                                    value = builtins_get(name, MISSING)
                                    if value is MISSING:
                                        raise SimRuntimeError(
                                            f"NameError: name {name!r} is not defined"
                                        )
                                c[0] = f_globals
                                c[1] = self._globals_version
                                c[2] = value
                        stack.append(value)
                    elif kind == K_LOAD_CONST:
                        stack.append(entry[1])
                    elif kind == K_BINARY_OP:
                        right = stack.pop()
                        left = stack.pop()
                        fn = entry[4]
                        if (
                            fn is not None
                            and left.__class__ in HOST
                            and right.__class__ in HOST
                        ):
                            try:
                                stack.append(fn(left, right))
                            except (TypeError, ZeroDivisionError, ValueError) as exc:
                                raise SimRuntimeError(
                                    f"binary op {entry[1]!r} failed: {exc}"
                                ) from None
                        else:
                            stack.append(self._op_binary(thread, entry[1], left, right))
                    elif kind == K_STORE_NAME:
                        value = stack.pop()
                        name = entry[1]
                        if name in global_names:
                            namespace = f_globals
                        else:
                            namespace = f_locals
                        old = namespace.get(name)
                        if isinstance(value, HeapBacked):
                            value.rc += 1
                        namespace[name] = value
                        if namespace is f_globals:
                            self._globals_version += 1
                        if old is not None and old is not value:
                            decref(old)
                    elif kind == K_COMPARE_OP:
                        right = stack.pop()
                        left = stack.pop()
                        fn = entry[4]
                        if fn is not None:
                            try:
                                stack.append(fn(left, right))
                            except TypeError as exc:
                                raise SimRuntimeError(
                                    f"comparison {entry[1]!r} failed: {exc}"
                                ) from None
                        else:
                            stack.append(self._op_compare(entry[1], left, right))
                    elif kind == K_POP_JUMP_IF_FALSE:
                        if not stack.pop():
                            pc = entry[1]
                    elif kind == K_JUMP:
                        pc = entry[1]
                        cell = entry[5]
                        if cell is not None and jit_threshold is not None:
                            tr = cell[1]
                            if tr is None:
                                hits = cell[0] + 1
                                cell[0] = hits
                                if hits > jit_threshold:
                                    cell[1] = compile_trace(code, entries, pc)
                            elif tr is not JITFAIL and fast_clock:
                                if tr.deopts > jit_deopt_limit:
                                    cell[1] = JITFAIL
                                elif (
                                    not trace_active
                                    and not (pending and is_main)
                                    and cpu + tr.margin_ops * op_cost < next_cpu_dl
                                    and wall + tr.margin_ops * op_cost < next_wall_dl
                                ):
                                    tr.enters += 1
                                    pc, jk, gt_ops, cur_line = tr.fn(
                                        self, frame, stack, f_locals, f_globals,
                                        thread, clock, mem, fifo, ground_truth,
                                        builtins_get, op_cost, churn_enabled,
                                        churn_bytes, churn_depth, next_cpu_dl,
                                        next_wall_dl, cpu, wall, gt_ops, cur_line,
                                        mem.hooks._current is mem.hooks._default
                                        and mem.faults is None,
                                    )
                                    if jk:
                                        ops_done += jk
                                        cpu = clock._cpu
                                        wall = clock._wall
                                        breaker = (
                                            breaker - jk
                                            if jk <= breaker
                                            else quantum - ((jk - breaker - 1) % (quantum + 1))
                                        )
                    elif kind == K_CALL:
                        frame.pc = pc
                        frame.lasti = pc - 1  # parked on the call (§2.2)
                        if ops_done:
                            thread.cpu_time += ops_done * op_cost
                            self.instruction_count += ops_done
                            ops_done = 0
                        if gt_ops:
                            ground_truth.record_python_time(thread, gt_ops * op_cost)
                            gt_ops = 0
                        result = self._op_call(thread, frame, entry[1])
                        if result is _CALL_PUSHED_FRAME:
                            frame = thread.frame
                            trace_active = trace.active
                            next_cpu_dl, nwd = signals.next_deadlines()
                            next_wall_dl = nwd if nwd < wall_deadline else wall_deadline
                            break  # re-hoist the callee frame
                        if isinstance(result, BlockRequest):
                            self._enter_block(thread, result)
                            if fast_clock:
                                signals.poll()
                            return BLOCKED
                        stack.append(result)
                        # Native code may have run long, armed timers, or
                        # raised signals: refresh, deliver, maybe preempt.
                        trace_active = trace.active
                        if pending and is_main:
                            signals.deliver_pending(thread)
                            trace_active = trace.active
                        next_cpu_dl, nwd = signals.next_deadlines()
                        next_wall_dl = nwd if nwd < wall_deadline else wall_deadline
                        if clock._wall >= wall_deadline:
                            if fast_clock:
                                signals.poll()
                            return PREEMPTED
                    elif kind == K_FOR_ITER:
                        value = next(stack[-1], _ITER_EXHAUSTED)
                        if value is _ITER_EXHAUSTED:
                            stack.pop()
                            pc = entry[1]
                        else:
                            stack.append(value)
                            cell = entry[5]
                            if cell is not None and jit_threshold is not None:
                                tr = cell[1]
                                if tr is None:
                                    hits = cell[0] + 1
                                    cell[0] = hits
                                    if hits > jit_threshold:
                                        cell[1] = compile_trace(code, entries, pc - 1)
                                elif tr is not JITFAIL and fast_clock:
                                    if tr.deopts > jit_deopt_limit:
                                        cell[1] = JITFAIL
                                    elif (
                                        not trace_active
                                        and not (pending and is_main)
                                        and cpu + tr.margin_ops * op_cost < next_cpu_dl
                                        and wall + tr.margin_ops * op_cost < next_wall_dl
                                    ):
                                        tr.enters += 1
                                        pc, jk, gt_ops, cur_line = tr.fn(
                                            self, frame, stack, f_locals, f_globals,
                                            thread, clock, mem, fifo, ground_truth,
                                            builtins_get, op_cost, churn_enabled,
                                            churn_bytes, churn_depth, next_cpu_dl,
                                            next_wall_dl, cpu, wall, gt_ops, cur_line,
                                            mem.hooks._current is mem.hooks._default
                                            and mem.faults is None,
                                        )
                                        if jk:
                                            ops_done += jk
                                            cpu = clock._cpu
                                            wall = clock._wall
                                            breaker = (
                                                breaker - jk
                                                if jk <= breaker
                                                else quantum - ((jk - breaker - 1) % (quantum + 1))
                                            )
                    elif kind == K_POP_JUMP_IF_TRUE:
                        if stack.pop():
                            pc = entry[1]
                    elif kind == K_BINARY_SUBSCR:
                        index = stack.pop()
                        container = stack.pop()
                        cls = container.__class__
                        if cls is SimList or cls is SimDict:
                            stack.append(container.getitem(index))
                        else:
                            stack.append(self._op_subscr(thread, container, index))
                    elif kind == K_STORE_SUBSCR:
                        index = stack.pop()
                        container = stack.pop()
                        value = stack.pop()
                        cls = container.__class__
                        if cls is SimList or cls is SimDict:
                            container.setitem(index, value)
                        else:
                            self._op_store_subscr(thread, container, index, value)
                    elif kind == K_LOAD_ATTR:
                        obj = stack[-1]
                        c = entry[4]
                        if c[0] is obj:
                            stack[-1] = c[1]
                        else:
                            value = self._op_load_attr(obj, entry[1])
                            stack[-1] = value
                            # Cache only memoized bound methods on heap-backed
                            # receivers: those are immutable per instance, so
                            # the identity guard can never serve a stale value
                            # (computed attributes and native-module attrs are
                            # re-resolved every time).
                            if value.__class__ is BoundMethod and isinstance(obj, HeapBacked):
                                c[0] = obj
                                c[1] = value
                    elif kind == K_RETURN_VALUE:
                        retval = stack.pop()
                        frame.pc = pc
                        frame.lasti = pc - 1
                        if ops_done:
                            thread.cpu_time += ops_done * op_cost
                            self.instruction_count += ops_done
                            ops_done = 0
                        if gt_ops:
                            ground_truth.record_python_time(thread, gt_ops * op_cost)
                            gt_ops = 0
                        if trace_active:
                            trace.fire(thread, frame, tracing.EVENT_RETURN, retval)
                        self._teardown_frame(frame, retval, thread)
                        caller = frame.back
                        thread.frame = caller
                        if caller is None:
                            thread.result = retval
                            self.flush_churn(thread)
                            if fast_clock:
                                signals.poll()
                            return FINISHED
                        caller.stack.append(retval)
                        frame = caller
                        trace_active = trace.active
                        if pending and is_main:
                            signals.deliver_pending(thread)
                            trace_active = trace.active
                        next_cpu_dl, nwd = signals.next_deadlines()
                        next_wall_dl = nwd if nwd < wall_deadline else wall_deadline
                        if clock._wall >= wall_deadline:
                            if fast_clock:
                                signals.poll()
                            return PREEMPTED
                        break  # re-hoist the caller frame
                    elif kind == K_POP_TOP:
                        release_temp(stack.pop())
                    elif kind == K_GET_ITER:
                        stack.append(sim_iter(stack.pop()))
                    elif kind == K_BUILD_LIST:
                        count = entry[1]
                        items = stack[len(stack) - count :] if count else []
                        del stack[len(stack) - count :]
                        stack.append(SimList(mem, list(items), thread))
                    elif kind == K_BUILD_TUPLE:
                        count = entry[1]
                        items = tuple(stack[len(stack) - count :]) if count else ()
                        del stack[len(stack) - count :]
                        stack.append(items)
                    elif kind == K_LIST_APPEND:
                        value = stack.pop()
                        accumulator = stack[-entry[1]]
                        if not isinstance(accumulator, SimList):
                            raise VMError("LIST_APPEND target is not a list")
                        accumulator.append(value)  # append increfs heap-backed values
                    else:
                        handler = cold[kind]
                        if handler is None:  # pragma: no cover - table is complete
                            raise VMError(f"unknown opcode kind {kind}")
                        pc = handler(thread, frame, entry, pc)

                    # ---- eval breaker: timer deadlines & preemption -------
                    if cpu >= next_cpu_dl or wall >= next_wall_dl:
                        signals.poll()
                        if pending and is_main:
                            frame.pc = pc
                            frame.lasti = pc - 1
                            if ops_done:
                                thread.cpu_time += ops_done * op_cost
                                self.instruction_count += ops_done
                                ops_done = 0
                            if gt_ops:
                                ground_truth.record_python_time(thread, gt_ops * op_cost)
                                gt_ops = 0
                            signals.deliver_pending(thread)
                            trace_active = trace.active
                        next_cpu_dl, nwd = signals.next_deadlines()
                        next_wall_dl = nwd if nwd < wall_deadline else wall_deadline
                        if clock._wall >= wall_deadline:
                            frame.pc = pc
                            frame.lasti = pc - 1
                            if ops_done:
                                thread.cpu_time += ops_done * op_cost
                                self.instruction_count += ops_done
                                ops_done = 0
                            if gt_ops:
                                ground_truth.record_python_time(thread, gt_ops * op_cost)
                                gt_ops = 0
                            return PREEMPTED
            except SimRuntimeError:
                frame.pc = pc
                frame.lasti = pc - 1 if pc else 0
                thread.frame = frame
                if ops_done:
                    thread.cpu_time += ops_done * op_cost
                    self.instruction_count += ops_done
                    ops_done = 0
                if gt_ops:
                    ground_truth.record_python_time(thread, gt_ops * op_cost)
                    gt_ops = 0
                handler_frame = self._find_handler_frame(thread)
                if handler_frame is None:
                    if fast_clock:
                        signals.poll()
                    raise  # uncaught: propagate with frames intact
                self._unwind_to_handler(thread, handler_frame)
                frame = thread.frame
                trace_active = trace.active
                next_cpu_dl, nwd = signals.next_deadlines()
                next_wall_dl = nwd if nwd < wall_deadline else wall_deadline
                continue

    # -- exception unwinding ----------------------------------------------------

    def _find_handler_frame(self, thread) -> Optional[Frame]:
        """Innermost frame with an active ``try`` block (no teardown)."""
        frame = thread.frame
        while frame is not None:
            if frame.block_stack:
                return frame
            frame = frame.back
        return None

    def _unwind_to_handler(self, thread, handler_frame: Frame) -> None:
        """Tear down frames above ``handler_frame`` and enter its handler."""
        trace = self.process.trace
        frame = thread.frame
        while frame is not handler_frame:
            if trace.active:
                trace.fire(thread, frame, tracing.EVENT_RETURN, None)
            self._teardown_frame(frame, None, thread)
            frame = frame.back
            thread.frame = frame
        handler_pc, depth = handler_frame.block_stack.pop()
        stack = handler_frame.stack
        while len(stack) > depth:
            release_temp(stack.pop())
        handler_frame.pc = handler_pc
        handler_frame.lasti = handler_pc

    # -- resume / blocking ----------------------------------------------------------

    def _enter_block(self, thread, block: BlockRequest) -> None:
        block.started_at = self.process.clock.wall
        thread.block = block
        thread.block_location = (
            thread.frame.location() if thread.frame is not None else None
        )
        thread.state = "waiting"

    def _resume_from_block(self, thread) -> Optional[str]:
        """Handle a thread waking from a block; returns a status to bubble
        up (BLOCKED if it re-blocked) or None to continue executing."""
        process = self.process
        block = thread.block
        now = process.clock.wall
        waited = now - block.started_at
        if waited > 0 and process.ground_truth is not None:
            process.ground_truth.record_system_time(
                thread, waited, location=getattr(thread, "block_location", None)
            )
        if waited > 0 and thread.task_record is not None:
            # Exact per-task idle time: every await resume lands here (a
            # re-block resets started_at, so the intervals are disjoint).
            thread.task_record.wait_s += waited
        satisfied = False
        if block.wake_check is not None and block.wake_check():
            satisfied = True
        elif block.deadline is not None and now >= block.deadline - 1e-12:
            satisfied = True

        # Re-entering the interpreter loop: pending signals are delivered
        # now (this is what makes Scalene's timeout-based monkey patches
        # restore signal flow, and what interrupts sleeps).
        if thread.is_main and process.signals.has_pending:
            process.signals.deliver_pending(thread)

        if not satisfied:
            # Woken early (signal interruption): re-block for the remainder.
            block.started_at = process.clock.wall
            thread.block = block
            thread.state = "waiting"
            return BLOCKED

        thread.block = None
        if block.on_wake is not None:
            outcome = block.on_wake()
            if isinstance(outcome, BlockRequest):
                self._enter_block(thread, outcome)
                return BLOCKED
            result = outcome
        else:
            result = None
        thread.frame.stack.append(result)
        thread.state = "runnable"
        return None

    # -- cold opcode handlers ----------------------------------------------------

    def _h_unary(self, thread, frame: Frame, entry, pc: int) -> int:
        stack = frame.stack
        stack.append(self._op_unary(entry[1], stack.pop()))
        return pc

    def _h_jump_if_false_or_pop(self, thread, frame: Frame, entry, pc: int) -> int:
        stack = frame.stack
        if not stack[-1]:
            return entry[1]
        stack.pop()
        return pc

    def _h_jump_if_true_or_pop(self, thread, frame: Frame, entry, pc: int) -> int:
        stack = frame.stack
        if stack[-1]:
            return entry[1]
        stack.pop()
        return pc

    def _h_build_map(self, thread, frame: Frame, entry, pc: int) -> int:
        count = entry[1]
        stack = frame.stack
        data = {}
        if count:
            flat = stack[len(stack) - 2 * count :]
            del stack[len(stack) - 2 * count :]
            for i in range(0, 2 * count, 2):
                data[flat[i]] = flat[i + 1]
        stack.append(SimDict(self.process.mem, data, thread))
        return pc

    def _h_build_slice(self, thread, frame: Frame, entry, pc: int) -> int:
        stack = frame.stack
        if entry[1] == 3:
            step = stack.pop()
        else:
            step = None
        stop = stack.pop()
        start = stack.pop()
        stack.append(slice(start, stop, step))
        return pc

    def _h_unpack_sequence(self, thread, frame: Frame, entry, pc: int) -> int:
        stack = frame.stack
        value = stack.pop()
        items = self._sequence_items(value)
        if len(items) != entry[1]:
            raise SimRuntimeError(
                f"cannot unpack {len(items)} values into {entry[1]} targets"
            )
        for item in reversed(items):
            stack.append(item)
        return pc

    def _h_make_function(self, thread, frame: Frame, entry, pc: int) -> int:
        # entry[1] is the pre-resolved CodeObject constant.
        frame.stack.append(SimFunction(entry[1], frame.globals))
        return pc

    def _h_delete_name(self, thread, frame: Frame, entry, pc: int) -> int:
        self._op_delete_name(frame, entry[1])
        return pc

    def _h_nop(self, thread, frame: Frame, entry, pc: int) -> int:
        return pc

    def _h_setup_except(self, thread, frame: Frame, entry, pc: int) -> int:
        block_stack = frame.block_stack
        if block_stack is None:
            block_stack = frame.block_stack = []
        block_stack.append((entry[1], len(frame.stack)))
        return pc

    def _h_pop_block(self, thread, frame: Frame, entry, pc: int) -> int:
        block_stack = frame.block_stack
        if not block_stack:
            raise VMError("POP_BLOCK with no active block")
        block_stack.pop()
        return pc

    # -- opcode helpers ----------------------------------------------------------

    def _op_load_name(self, frame: Frame, name: str):
        if name in frame.locals:
            frame.stack.append(frame.locals[name])
        elif name in frame.globals:
            frame.stack.append(frame.globals[name])
        elif name in self.process.builtins:
            frame.stack.append(self.process.builtins[name])
        else:
            raise SimRuntimeError(f"NameError: name {name!r} is not defined")
        return frame

    @staticmethod
    def _target_namespace(frame: Frame, name: str) -> dict:
        if name in frame.code.global_names:
            return frame.globals
        return frame.locals

    def _op_store_name(self, frame: Frame, name: str, value: Any) -> None:
        namespace = self._target_namespace(frame, name)
        old = namespace.get(name)
        incref(value)
        namespace[name] = value
        if namespace is frame.globals:
            self._globals_version += 1
        if old is not None and old is not value:
            decref(old)

    def _op_delete_name(self, frame: Frame, name: str) -> None:
        namespace = self._target_namespace(frame, name)
        try:
            old = namespace.pop(name)
        except KeyError:
            raise SimRuntimeError(f"NameError: name {name!r} is not defined") from None
        if namespace is frame.globals:
            self._globals_version += 1
        decref(old)

    def _op_binary(self, thread, symbol: str, left: Any, right: Any):
        if hasattr(left, "sim_binop"):
            result = left.sim_binop(self._native_ctx(thread), symbol, right)
        elif hasattr(right, "sim_rbinop"):
            result = right.sim_rbinop(self._native_ctx(thread), symbol, left)
        else:
            fn = _BINARY_FUNCS.get(symbol)
            if fn is None:
                raise VMError(f"unsupported binary operator {symbol!r}")
            try:
                result = fn(left, right)
            except (TypeError, ZeroDivisionError, ValueError) as exc:
                raise SimRuntimeError(f"binary op {symbol!r} failed: {exc}") from None
        release_temp(left)
        if right is not result:
            release_temp(right)
        return result

    def _op_compare(self, symbol: str, left: Any, right: Any):
        if symbol in ("in", "not in"):
            if isinstance(right, SimDict):
                contained = right.contains(left)
            elif isinstance(right, SimList):
                contained = left in right.items
            else:
                try:
                    contained = left in right
                except TypeError as exc:
                    raise SimRuntimeError(f"'in' failed: {exc}") from None
            return contained if symbol == "in" else not contained
        fn = _COMPARE_FUNCS.get(symbol)
        if fn is None:
            raise VMError(f"unsupported comparison {symbol!r}")
        try:
            return fn(left, right)
        except TypeError as exc:
            raise SimRuntimeError(f"comparison {symbol!r} failed: {exc}") from None

    @staticmethod
    def _op_unary(symbol: str, value: Any):
        try:
            if symbol == "-":
                return -value
            if symbol == "+":
                return +value
            if symbol == "not":
                return not value
            if symbol == "~":
                return ~value
        except TypeError as exc:
            raise SimRuntimeError(f"unary {symbol!r} failed: {exc}") from None
        raise VMError(f"unsupported unary operator {symbol!r}")

    def _op_subscr(self, thread, container: Any, index: Any):
        if isinstance(container, SimList):
            return container.getitem(index)
        if isinstance(container, SimDict):
            return container.getitem(index)
        if hasattr(container, "sim_getitem"):
            return container.sim_getitem(self._native_ctx(thread), index)
        try:
            return container[index]
        except (TypeError, KeyError, IndexError) as exc:
            raise SimRuntimeError(f"subscript failed: {exc}") from None

    def _op_store_subscr(self, thread, container: Any, index: Any, value: Any) -> None:
        if isinstance(container, SimList):
            container.setitem(index, value)
        elif isinstance(container, SimDict):
            container.setitem(index, value)
        elif hasattr(container, "sim_setitem"):
            container.sim_setitem(self._native_ctx(thread), index, value)
        else:
            raise SimRuntimeError(
                f"object of type {type(container).__name__} does not support item assignment"
            )

    @staticmethod
    def _sequence_items(value: Any) -> Tuple[Any, ...]:
        if isinstance(value, SimList):
            return tuple(value.items)
        if isinstance(value, (tuple, list)):
            return tuple(value)
        raise SimRuntimeError(f"cannot unpack object of type {type(value).__name__}")

    def _op_load_attr(self, value: Any, name: str):
        if hasattr(value, "sim_getattr"):
            return value.sim_getattr(name)
        raise SimRuntimeError(
            f"object of type {type(value).__name__} has no attribute access"
        )

    # -- calls ----------------------------------------------------------

    def _op_call(self, thread, frame: Frame, call_arg) -> Any:
        """Execute CALL/CALL_METHOD. Returns the call result, a
        BlockRequest, or the _CALL_PUSHED_FRAME sentinel for Python calls."""
        npos, kwnames = call_arg
        stack = frame.stack
        if kwnames:
            nkw = len(kwnames)
            values = stack[-nkw:]
            del stack[-nkw:]
            kwargs = dict(zip(kwnames, values))
        else:
            kwargs = {}
        if npos:
            args = tuple(stack[-npos:])
            del stack[-npos:]
        else:
            args = ()
        callee = stack.pop()

        if isinstance(callee, SimFunction):
            if kwargs:
                raise SimRuntimeError(
                    "keyword arguments to simulated functions are not supported"
                )
            new_frame = self.make_frame(callee, args, thread, back=frame)
            thread.frame = new_frame
            trace = self.process.trace
            if trace.active:
                trace.fire(thread, new_frame, tracing.EVENT_CALL)
            return _CALL_PUSHED_FRAME

        trace = self.process.trace
        ctx = self._native_ctx(thread)
        if isinstance(callee, NativeFunction):
            is_crossing = callee.module is not None
        elif isinstance(callee, BoundMethod):
            # Methods on native-domain values (arrays, series, tensors)
            # cross the boundary; SimList/SimDict methods do not.
            is_crossing = getattr(callee.receiver, "native_domain", False)
        else:
            raise SimRuntimeError(
                f"object of type {type(callee).__name__} is not callable"
            )
        if trace.active:
            trace.fire(thread, frame, tracing.EVENT_C_CALL, callee.name)
        if is_crossing:
            # Fixed per-crossing cost (argument marshalling / call glue),
            # charged as native time so every clock view stays consistent,
            # then the in-call native work measured as a cpu-time delta.
            overhead_s = self.config.crossing_overhead_ops * self.config.op_cost
            ctx.consume(overhead_s)
            entered_at = thread.cpu_time
            result = callee.fn(ctx, args, kwargs)
            self.process.crossings.record_call(
                frame.code.filename,
                frame.lineno,
                overhead_s,
                thread.cpu_time - entered_at,
            )
            ground_truth = self.process.ground_truth
            if ground_truth is not None:
                ground_truth.record_native_call(thread)
        else:
            result = callee.fn(ctx, args, kwargs)

        if isinstance(result, BlockRequest):
            # Keep trace call/return events balanced: fire c_return at the
            # moment of blocking (deterministic tracers then measure the
            # CPU-side cost of the call, not the wait — as in CPython,
            # where the C function returns only after the wait, but our
            # tracers read the CPU clock, which does not advance while
            # blocked).
            if trace.active:
                trace.fire(thread, frame, tracing.EVENT_C_RETURN, callee.name)
            return result
        for arg in args:
            release_temp(arg)
        if kwargs:
            for value in kwargs.values():
                release_temp(value)
        # A floating receiver (e.g. ``make()[0:10].tolist()``) dies with
        # the call unless the result depends on it.
        if isinstance(callee, BoundMethod) and callee.receiver is not result:
            release_temp(callee.receiver)
        if trace.active:
            trace.fire(thread, frame, tracing.EVENT_C_RETURN, callee.name)
        return result
