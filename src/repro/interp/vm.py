"""The simulated interpreter's evaluation loop.

The VM executes compiled bytecode on virtual time and reproduces the four
CPython behaviours Scalene's algorithms are built on:

1. **Signals are checked at bytecode boundaries** of the **main thread**
   only; a native call runs to completion with signals pending (§2.1).
2. **The GIL**: one thread executes at a time; the scheduler preempts at
   the switch interval (§2.2).
3. **Tracing** fires call/line/return (and c_call/c_return) events with a
   real probe cost (§6.2's function bias).
4. **Every Python object allocation** flows through the PyMem hooks, and
   native library allocations flow through the system-allocator shim
   (§3.1), including the small-object churn of interpreter temporaries.
"""

from __future__ import annotations

import operator as host_operator
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.errors import VMError
from repro.interp import opcodes as op
from repro.interp.code import CodeObject, Frame, SimFunction
from repro.interp.objects import (
    BlockRequest,
    BoundMethod,
    HeapBacked,
    NativeFunction,
    SimDict,
    SimList,
    decref,
    incref,
    release_temp,
    sim_iter,
)
from repro.runtime import tracing

# run_slice exit statuses
PREEMPTED = "preempted"
BLOCKED = "blocked"
FINISHED = "finished"

_ITER_EXHAUSTED = object()


@dataclass
class VMConfig:
    """Tunables of the simulated interpreter.

    ``op_cost`` is the virtual CPU cost of one bytecode instruction. It is
    deliberately large relative to real CPython (tens of microseconds vs.
    tens of nanoseconds) so that paper-scale virtual durations (~10 s per
    benchmark) stay tractable on the host; all profiler intervals live in
    the same virtual time base, so ratios are preserved.
    """

    op_cost: float = 50e-6
    #: Model small-object churn: each object-creating opcode allocates a
    #: small Python object through the PyMem hooks; a bounded FIFO frees
    #: old ones, so churn adds allocation volume but ~zero net footprint.
    churn_enabled: bool = True
    churn_object_bytes: int = 28
    churn_fifo_depth: int = 32
    #: Size of a frame object allocated per Python call.
    frame_object_bytes: int = 368


_BINARY_FUNCS = {
    "+": host_operator.add,
    "-": host_operator.sub,
    "*": host_operator.mul,
    "/": host_operator.truediv,
    "//": host_operator.floordiv,
    "%": host_operator.mod,
    "**": host_operator.pow,
    "<<": host_operator.lshift,
    ">>": host_operator.rshift,
    "&": host_operator.and_,
    "|": host_operator.or_,
    "^": host_operator.xor,
}

_COMPARE_FUNCS = {
    "==": host_operator.eq,
    "!=": host_operator.ne,
    "<": host_operator.lt,
    "<=": host_operator.le,
    ">": host_operator.gt,
    ">=": host_operator.ge,
    "is": lambda a, b: a is b,
    "is not": lambda a, b: a is not b,
}


class NativeContext:
    """Capabilities handed to native functions (see NativeFunction).

    Native code consumes CPU time *without signal checks*, allocates
    native memory through the shim, copies bytes (copy volume), performs
    blocking IO, and launches GPU kernels.
    """

    __slots__ = ("process", "thread")

    def __init__(self, process, thread) -> None:
        self.process = process
        self.thread = thread

    # -- time ----------------------------------------------------------------

    def consume(self, seconds: float) -> None:
        """Execute natively for ``seconds`` of CPU time (signals deferred)."""
        if seconds <= 0:
            return
        process = self.process
        process.clock.advance_cpu(seconds)
        self.thread.cpu_time += seconds
        if process.ground_truth is not None:
            process.ground_truth.record_native_time(self.thread, seconds)

    # -- memory ----------------------------------------------------------------

    def alloc(self, nbytes: int, *, touch: bool = True, tag: str = "native"):
        """Allocate native memory (e.g. an array buffer)."""
        return self.process.mem.native_alloc(nbytes, self.thread, touch=touch, tag=tag)

    def free(self, alloc) -> None:
        self.process.mem.native_free(alloc, self.thread)

    def touch(self, alloc, nbytes: Optional[int] = None) -> None:
        """Write pages of a native allocation (raises its RSS share)."""
        self.process.mem.shim.touch(alloc, nbytes)

    def scratch(self, nbytes: int) -> None:
        """Transient Python-domain allocation volume (no footprint change)."""
        self.process.mem.py_scratch(nbytes, self.thread)

    def py_alloc(self, nbytes: int):
        """Persistent Python-domain allocation (e.g. boxed result objects)."""
        return self.process.mem.py_alloc(nbytes, self.thread)

    def py_free(self, handle) -> None:
        self.process.mem.py_free(handle, self.thread)

    def memcpy(self, nbytes: int, direction: str = "host") -> None:
        self.process.mem.memcpy(nbytes, self.thread, direction)

    # -- blocking ----------------------------------------------------------------

    def io_wait(self, seconds: float) -> Optional[BlockRequest]:
        """Blocking IO: wall time passes, no CPU is consumed."""
        if seconds <= 0:
            return None
        return BlockRequest(
            deadline=self.process.clock.wall + seconds,
            interruptible=True,
            is_io=True,
        )

    # -- GPU ----------------------------------------------------------------

    def gpu_launch(self, duration: float, name: str = "kernel"):
        """Launch an asynchronous kernel occupying the device for ``duration``."""
        device = self.process.gpu
        kernel = device.launch_kernel(self.process.pid, self.process.clock.wall, duration, name)
        if self.process.ground_truth is not None:
            self.process.ground_truth.record_gpu_time(self.thread, duration)
        return kernel

    def gpu_alloc(self, nbytes: int) -> int:
        return self.process.gpu.alloc(self.process.pid, nbytes)

    def gpu_free(self, address: int) -> None:
        self.process.gpu.free(address)

    def gpu_sync(self) -> Optional[BlockRequest]:
        """Wait for all of this process's kernels to finish (system time)."""
        device = self.process.gpu
        now = self.process.clock.wall
        end = max(
            (k.end for k in device._kernels if k.pid == self.process.pid),
            default=now,
        )
        if end <= now:
            return None
        return BlockRequest(deadline=end, interruptible=True, is_io=True)

    # -- misc ----------------------------------------------------------------

    @property
    def clock(self):
        return self.process.clock

    @property
    def mem(self):
        return self.process.mem


class VM:
    """Executes simulated threads one GIL slice at a time."""

    def __init__(self, process, config: Optional[VMConfig] = None) -> None:
        self.process = process
        self.config = config or VMConfig()
        self.instruction_count = 0

    # -- frame management ----------------------------------------------------------

    def make_frame(self, fn: SimFunction, args: tuple, thread, back: Optional[Frame]) -> Frame:
        code = fn.code
        if len(args) != len(code.params):
            raise VMError(
                f"{fn.name}() takes {len(code.params)} arguments but {len(args)} were given"
            )
        frame = Frame(code, fn.globals, back=back)
        frame.py_handle = self.process.mem.py_alloc(self.config.frame_object_bytes, thread)
        for name, value in zip(code.params, args):
            incref(value)
            frame.locals[name] = value
        return frame

    def make_module_frame(self, code: CodeObject, globals_dict: dict, thread) -> Frame:
        frame = Frame(code, globals_dict)
        frame.locals = globals_dict  # module scope: locals IS globals
        frame.py_handle = self.process.mem.py_alloc(self.config.frame_object_bytes, thread)
        return frame

    def _teardown_frame(self, frame: Frame, retval: Any, thread) -> None:
        is_module = frame.locals is frame.globals
        if isinstance(retval, HeapBacked):
            retval.rc += 1  # protect from the locals sweep below
        if not is_module:
            for value in frame.locals.values():
                decref(value)
            frame.locals.clear()
        if frame.py_handle is not None:
            self.process.mem.py_free(frame.py_handle, thread)
            frame.py_handle = None
        if isinstance(retval, HeapBacked):
            retval.rc -= 1  # back to floating/stored state; no destroy check

    # -- churn model ----------------------------------------------------------

    def _churn(self, thread) -> None:
        mem = self.process.mem
        handle = mem.py_alloc(self.config.churn_object_bytes, thread)
        fifo = thread.churn
        fifo.append(handle)
        if len(fifo) > self.config.churn_fifo_depth:
            mem.py_free(fifo.popleft(), thread)

    def flush_churn(self, thread) -> None:
        mem = self.process.mem
        while thread.churn:
            mem.py_free(thread.churn.popleft(), thread)

    # -- the eval loop ----------------------------------------------------------

    def run_slice(self, thread, wall_deadline: float) -> str:
        """Run ``thread`` until preemption, blocking, or completion."""
        process = self.process
        clock = process.clock
        signals = process.signals
        trace = process.trace
        config = self.config
        ground_truth = process.ground_truth
        churn_enabled = config.churn_enabled

        # Resume from a block, if any (handles signal wake-ups and
        # retry-style blocks such as Scalene's patched join).
        if thread.block is not None:
            status = self._resume_from_block(thread)
            if status is not None:
                return status

        frame = thread.frame
        if frame is None:
            return FINISHED

        while True:
            instructions = frame.code.instructions
            pc = frame.pc
            if pc >= len(instructions):
                raise VMError(f"pc out of range in {frame.code.name}")
            instr = instructions[pc]
            opcode = instr.opcode

            # Trace 'line' events when execution reaches a new line.
            if trace.active and instr.lineno != frame.last_traced_line:
                frame.lineno = instr.lineno
                frame.last_traced_line = instr.lineno
                trace.fire(thread, frame, tracing.EVENT_LINE)

            frame.lineno = instr.lineno
            frame.lasti = pc

            # Charge the interpreter cost of this instruction.
            clock.advance_cpu(config.op_cost)
            thread.cpu_time += config.op_cost
            if ground_truth is not None:
                ground_truth.record_python_time(thread, config.op_cost)

            self.instruction_count += 1
            frame.pc = pc + 1

            # Small-object churn for object-creating opcodes.
            if churn_enabled and opcode in op.ALLOCATING_OPCODES:
                self._churn(thread)

            # ---- execute ----------------------------------------------------
            stack = frame.stack
            if opcode == op.LOAD_CONST:
                stack.append(frame.code.constants[instr.arg])
            elif opcode == op.LOAD_NAME:
                frame = self._op_load_name(frame, instr.arg)
            elif opcode == op.STORE_NAME:
                self._op_store_name(frame, instr.arg, stack.pop())
            elif opcode == op.BINARY_OP:
                right = stack.pop()
                left = stack.pop()
                stack.append(self._op_binary(thread, instr.arg, left, right))
            elif opcode == op.COMPARE_OP:
                right = stack.pop()
                left = stack.pop()
                stack.append(self._op_compare(instr.arg, left, right))
            elif opcode == op.UNARY_OP:
                stack.append(self._op_unary(instr.arg, stack.pop()))
            elif opcode == op.JUMP:
                frame.pc = instr.arg
            elif opcode == op.POP_JUMP_IF_FALSE:
                if not stack.pop():
                    frame.pc = instr.arg
            elif opcode == op.POP_JUMP_IF_TRUE:
                if stack.pop():
                    frame.pc = instr.arg
            elif opcode == op.JUMP_IF_FALSE_OR_POP:
                if not stack[-1]:
                    frame.pc = instr.arg
                else:
                    stack.pop()
            elif opcode == op.JUMP_IF_TRUE_OR_POP:
                if stack[-1]:
                    frame.pc = instr.arg
                else:
                    stack.pop()
            elif opcode == op.GET_ITER:
                stack.append(sim_iter(stack.pop()))
            elif opcode == op.FOR_ITER:
                value = next(stack[-1], _ITER_EXHAUSTED)
                if value is _ITER_EXHAUSTED:
                    stack.pop()
                    frame.pc = instr.arg
                else:
                    stack.append(value)
            elif opcode in (op.CALL, op.CALL_METHOD):
                result = self._op_call(thread, frame, instr.arg)
                if result is _CALL_PUSHED_FRAME:
                    frame = thread.frame
                elif isinstance(result, BlockRequest):
                    self._enter_block(thread, result)
                    return BLOCKED
                else:
                    stack.append(result)
            elif opcode == op.RETURN_VALUE:
                retval = stack.pop()
                if trace.active:
                    trace.fire(thread, frame, tracing.EVENT_RETURN, retval)
                self._teardown_frame(frame, retval, thread)
                caller = frame.back
                thread.frame = caller
                if caller is None:
                    thread.result = retval
                    self.flush_churn(thread)
                    return FINISHED
                caller.stack.append(retval)
                frame = caller
            elif opcode == op.POP_TOP:
                release_temp(stack.pop())
            elif opcode == op.BUILD_LIST:
                count = instr.arg
                items = stack[len(stack) - count :] if count else []
                del stack[len(stack) - count :]
                stack.append(SimList(self.process.mem, list(items), thread))
            elif opcode == op.BUILD_TUPLE:
                count = instr.arg
                items = tuple(stack[len(stack) - count :]) if count else ()
                del stack[len(stack) - count :]
                stack.append(items)
            elif opcode == op.BUILD_MAP:
                count = instr.arg
                data = {}
                if count:
                    flat = stack[len(stack) - 2 * count :]
                    del stack[len(stack) - 2 * count :]
                    for i in range(0, 2 * count, 2):
                        data[flat[i]] = flat[i + 1]
                stack.append(SimDict(self.process.mem, data, thread))
            elif opcode == op.BUILD_SLICE:
                if instr.arg == 3:
                    step = stack.pop()
                else:
                    step = None
                stop = stack.pop()
                start = stack.pop()
                stack.append(slice(start, stop, step))
            elif opcode == op.BINARY_SUBSCR:
                index = stack.pop()
                container = stack.pop()
                stack.append(self._op_subscr(thread, container, index))
            elif opcode == op.STORE_SUBSCR:
                index = stack.pop()
                container = stack.pop()
                value = stack.pop()
                self._op_store_subscr(thread, container, index, value)
            elif opcode == op.LIST_APPEND:
                value = stack.pop()
                accumulator = stack[-instr.arg]
                if not isinstance(accumulator, SimList):
                    raise VMError("LIST_APPEND target is not a list")
                accumulator.append(value)  # append increfs heap-backed values
            elif opcode == op.UNPACK_SEQUENCE:
                value = stack.pop()
                items = self._sequence_items(value)
                if len(items) != instr.arg:
                    raise VMError(
                        f"cannot unpack {len(items)} values into {instr.arg} targets"
                    )
                for item in reversed(items):
                    stack.append(item)
            elif opcode == op.LOAD_ATTR:
                stack.append(self._op_load_attr(stack.pop(), instr.arg))
            elif opcode == op.LOAD_METHOD:
                stack.append(self._op_load_attr(stack.pop(), instr.arg))
            elif opcode == op.MAKE_FUNCTION:
                code = frame.code.constants[instr.arg]
                stack.append(SimFunction(code, frame.globals))
            elif opcode == op.DELETE_NAME:
                self._op_delete_name(frame, instr.arg)
            elif opcode == op.NOP:
                pass
            else:  # pragma: no cover - compiler emits only known opcodes
                raise VMError(f"unknown opcode {opcode}")

            # ---- eval breaker ----------------------------------------------
            if thread.is_main and signals.has_pending:
                signals.deliver_pending(thread)
            if clock.wall >= wall_deadline:
                return PREEMPTED

    # -- resume / blocking ----------------------------------------------------------

    def _enter_block(self, thread, block: BlockRequest) -> None:
        block.started_at = self.process.clock.wall
        thread.block = block
        thread.block_location = (
            thread.frame.location() if thread.frame is not None else None
        )
        thread.state = "waiting"

    def _resume_from_block(self, thread) -> Optional[str]:
        """Handle a thread waking from a block; returns a status to bubble
        up (BLOCKED if it re-blocked) or None to continue executing."""
        process = self.process
        block = thread.block
        now = process.clock.wall
        waited = now - block.started_at
        if waited > 0 and process.ground_truth is not None:
            process.ground_truth.record_system_time(
                thread, waited, location=getattr(thread, "block_location", None)
            )
        satisfied = False
        if block.wake_check is not None and block.wake_check():
            satisfied = True
        elif block.deadline is not None and now >= block.deadline - 1e-12:
            satisfied = True

        # Re-entering the interpreter loop: pending signals are delivered
        # now (this is what makes Scalene's timeout-based monkey patches
        # restore signal flow, and what interrupts sleeps).
        if thread.is_main and process.signals.has_pending:
            process.signals.deliver_pending(thread)

        if not satisfied:
            # Woken early (signal interruption): re-block for the remainder.
            block.started_at = process.clock.wall
            thread.block = block
            thread.state = "waiting"
            return BLOCKED

        thread.block = None
        if block.on_wake is not None:
            outcome = block.on_wake()
            if isinstance(outcome, BlockRequest):
                self._enter_block(thread, outcome)
                return BLOCKED
            result = outcome
        else:
            result = None
        thread.frame.stack.append(result)
        thread.state = "runnable"
        return None

    # -- opcode helpers ----------------------------------------------------------

    def _op_load_name(self, frame: Frame, name: str):
        if name in frame.locals:
            frame.stack.append(frame.locals[name])
        elif name in frame.globals:
            frame.stack.append(frame.globals[name])
        elif name in self.process.builtins:
            frame.stack.append(self.process.builtins[name])
        else:
            raise VMError(f"NameError: name {name!r} is not defined")
        return frame

    @staticmethod
    def _target_namespace(frame: Frame, name: str) -> dict:
        if name in frame.code.global_names:
            return frame.globals
        return frame.locals

    def _op_store_name(self, frame: Frame, name: str, value: Any) -> None:
        namespace = self._target_namespace(frame, name)
        old = namespace.get(name)
        incref(value)
        namespace[name] = value
        if old is not None and old is not value:
            decref(old)

    def _op_delete_name(self, frame: Frame, name: str) -> None:
        namespace = self._target_namespace(frame, name)
        try:
            old = namespace.pop(name)
        except KeyError:
            raise VMError(f"NameError: name {name!r} is not defined") from None
        decref(old)

    def _op_binary(self, thread, symbol: str, left: Any, right: Any):
        if hasattr(left, "sim_binop"):
            result = left.sim_binop(NativeContext(self.process, thread), symbol, right)
        elif hasattr(right, "sim_rbinop"):
            result = right.sim_rbinop(NativeContext(self.process, thread), symbol, left)
        else:
            fn = _BINARY_FUNCS.get(symbol)
            if fn is None:
                raise VMError(f"unsupported binary operator {symbol!r}")
            try:
                result = fn(left, right)
            except (TypeError, ZeroDivisionError, ValueError) as exc:
                raise VMError(f"binary op {symbol!r} failed: {exc}") from None
        release_temp(left)
        if right is not result:
            release_temp(right)
        return result

    def _op_compare(self, symbol: str, left: Any, right: Any):
        if symbol in ("in", "not in"):
            if isinstance(right, SimDict):
                contained = right.contains(left)
            elif isinstance(right, SimList):
                contained = left in right.items
            else:
                try:
                    contained = left in right
                except TypeError as exc:
                    raise VMError(f"'in' failed: {exc}") from None
            return contained if symbol == "in" else not contained
        fn = _COMPARE_FUNCS.get(symbol)
        if fn is None:
            raise VMError(f"unsupported comparison {symbol!r}")
        try:
            return fn(left, right)
        except TypeError as exc:
            raise VMError(f"comparison {symbol!r} failed: {exc}") from None

    @staticmethod
    def _op_unary(symbol: str, value: Any):
        try:
            if symbol == "-":
                return -value
            if symbol == "+":
                return +value
            if symbol == "not":
                return not value
            if symbol == "~":
                return ~value
        except TypeError as exc:
            raise VMError(f"unary {symbol!r} failed: {exc}") from None
        raise VMError(f"unsupported unary operator {symbol!r}")

    def _op_subscr(self, thread, container: Any, index: Any):
        if isinstance(container, SimList):
            return container.getitem(index)
        if isinstance(container, SimDict):
            return container.getitem(index)
        if hasattr(container, "sim_getitem"):
            return container.sim_getitem(NativeContext(self.process, thread), index)
        try:
            return container[index]
        except (TypeError, KeyError, IndexError) as exc:
            raise VMError(f"subscript failed: {exc}") from None

    def _op_store_subscr(self, thread, container: Any, index: Any, value: Any) -> None:
        if isinstance(container, SimList):
            container.setitem(index, value)
        elif isinstance(container, SimDict):
            container.setitem(index, value)
        elif hasattr(container, "sim_setitem"):
            container.sim_setitem(NativeContext(self.process, thread), index, value)
        else:
            raise VMError(
                f"object of type {type(container).__name__} does not support item assignment"
            )

    @staticmethod
    def _sequence_items(value: Any) -> Tuple[Any, ...]:
        if isinstance(value, SimList):
            return tuple(value.items)
        if isinstance(value, (tuple, list)):
            return tuple(value)
        raise VMError(f"cannot unpack object of type {type(value).__name__}")

    def _op_load_attr(self, value: Any, name: str):
        if hasattr(value, "sim_getattr"):
            return value.sim_getattr(name)
        raise VMError(
            f"object of type {type(value).__name__} has no attribute access"
        )

    # -- calls ----------------------------------------------------------

    def _op_call(self, thread, frame: Frame, call_arg) -> Any:
        """Execute CALL/CALL_METHOD. Returns the call result, a
        BlockRequest, or the _CALL_PUSHED_FRAME sentinel for Python calls."""
        npos, kwnames = call_arg
        stack = frame.stack
        kwargs = {}
        if kwnames:
            values = stack[len(stack) - len(kwnames) :]
            del stack[len(stack) - len(kwnames) :]
            kwargs = dict(zip(kwnames, values))
        args = tuple(stack[len(stack) - npos :]) if npos else ()
        if npos:
            del stack[len(stack) - npos :]
        callee = stack.pop()

        if isinstance(callee, SimFunction):
            if kwargs:
                raise VMError(
                    f"keyword arguments to simulated functions are not supported"
                )
            new_frame = self.make_frame(callee, args, thread, back=frame)
            thread.frame = new_frame
            if self.process.trace.active:
                self.process.trace.fire(thread, new_frame, tracing.EVENT_CALL)
            return _CALL_PUSHED_FRAME

        trace = self.process.trace
        ctx = NativeContext(self.process, thread)
        if isinstance(callee, BoundMethod):
            if trace.active:
                trace.fire(thread, frame, tracing.EVENT_C_CALL, callee.name)
            result = callee.fn(ctx, args, kwargs)
        elif isinstance(callee, NativeFunction):
            if trace.active:
                trace.fire(thread, frame, tracing.EVENT_C_CALL, callee.name)
            result = callee.fn(ctx, args, kwargs)
        else:
            raise VMError(f"object of type {type(callee).__name__} is not callable")

        if isinstance(result, BlockRequest):
            # Keep trace call/return events balanced: fire c_return at the
            # moment of blocking (deterministic tracers then measure the
            # CPU-side cost of the call, not the wait — as in CPython,
            # where the C function returns only after the wait, but our
            # tracers read the CPU clock, which does not advance while
            # blocked).
            if trace.active:
                trace.fire(
                    thread,
                    frame,
                    tracing.EVENT_C_RETURN,
                    callee.name if hasattr(callee, "name") else "?",
                )
            return result
        for arg in args:
            release_temp(arg)
        for value in kwargs.values():
            release_temp(value)
        # A floating receiver (e.g. ``make()[0:10].tolist()``) dies with
        # the call unless the result depends on it.
        if isinstance(callee, BoundMethod) and callee.receiver is not result:
            release_temp(callee.receiver)
        if trace.active:
            trace.fire(
                thread,
                frame,
                tracing.EVENT_C_RETURN,
                callee.name if hasattr(callee, "name") else "?",
            )
        return result


_CALL_PUSHED_FRAME = object()
