"""Base plumbing for simulated native libraries.

A :class:`NativeModule` is the analog of an imported C-extension module: a
namespace of :class:`~repro.interp.objects.NativeFunction` values exposed
to workloads as a global (``process.install_library("np", simnp.make())``).
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict

from repro.errors import VMError
from repro.interp.objects import NativeFunction


class NativeModule:
    """A namespace of native functions (C-extension module analog)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._attrs: Dict[str, object] = {}

    def register(self, name: str, fn: Callable, doc: str = "") -> None:
        """Expose ``fn(ctx, args, kwargs)`` as ``module.name`` in workloads."""
        self._attrs[name] = NativeFunction(
            f"{self.name}.{name}", fn, doc, module=self.name
        )

    def register_value(self, name: str, value: object) -> None:
        self._attrs[name] = value

    def sim_getattr(self, name: str):
        try:
            return self._attrs[name]
        except KeyError:
            available = sorted(self._attrs)
            message = f"module {self.name!r} has no attribute {name!r}"
            close = difflib.get_close_matches(name, available, n=1)
            if close:
                message += f"; did you mean {close[0]!r}?"
            if available:
                message += f" (available: {', '.join(available)})"
            raise VMError(message) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NativeModule {self.name}>"
