"""A ``dis``-module analog for the simulated bytecode.

Scalene builds "a map of all such [call] bytecodes at startup" (§2.2) via
bytecode disassembly; :func:`build_call_opcode_map` is that map for our
instruction set: for each code object, the set of instruction indices
holding a call opcode. The thread-attribution algorithm consults it to
decide whether a thread parked on an instruction is executing native code.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from repro.interp.code import CodeObject
from repro.interp.opcodes import is_call_opcode


def disassemble(
    code: CodeObject, *, show_blocks: bool = False, show_tier: bool = False
) -> str:
    """Human-readable listing of a code object (dis.dis analog).

    With ``show_blocks`` the listing is annotated with the basic-block
    boundaries of the control-flow graph: each block's index, its
    predecessors/successors, and whether it heads a natural loop — the
    view ``python -m repro dis`` prints.

    With ``show_tier`` the listing reflects the trace-JIT tier state
    (meaningful only after the code has executed, since both the hit
    cells and the region memo are built at run time): instructions
    covered by a compiled trace get a ``T`` marker column, hot-site
    entries (loop headers / backward jumps carrying a hit cell) are
    annotated with their hit count, and region heads show the compiled
    trace's span, enter/deopt counters, or the ``<region not
    compilable>`` verdict.
    """
    block_headers = {}
    if show_blocks:
        # Local import: staticcheck builds on interp, not the reverse.
        from repro.staticcheck.cfg import build_cfg

        cfg = build_cfg(code)
        loop_headers = {loop.header for loop in cfg.natural_loops()}
        for block in cfg.blocks:
            preds = ",".join(f"B{p}" for p in block.predecessors) or "-"
            succs = ",".join(f"B{s}" for s in block.successors) or "-"
            tag = "  <loop header>" if block.index in loop_headers else ""
            block_headers[block.start] = (
                f"  -- B{block.index} (preds: {preds}; succs: {succs}){tag}"
            )
    tier_notes: Dict[int, str] = {}
    traced = set()
    if show_tier:
        # Local import: jit builds on code/vm, keep disassembly importable
        # without pulling the compiler in for plain listings.
        from repro.interp.jit import CompiledTrace, iter_hit_cells

        for pc, cell in iter_hit_cells(code):
            note = f"hits={cell[0]}"
            if isinstance(cell[1], CompiledTrace):
                trace = cell[1]
                note += (
                    f"  trace {trace.name} [{trace.start}..{trace.end})"
                    f" enters={trace.enters} deopts={trace.deopts}"
                )
            elif cell[1] is not None:
                note += "  <region not compilable>"
            tier_notes[pc] = note
        for trace in (code._jit_regions or {}).values():
            if isinstance(trace, CompiledTrace):
                traced.update(range(trace.start, trace.end))
    lines: List[str] = [f"Disassembly of {code.name} ({code.filename}):"]
    last_lineno = None
    for index, instr in enumerate(code.instructions):
        header = block_headers.get(index)
        if header is not None:
            lines.append(header)
        line_field = f"{instr.lineno:>4}" if instr.lineno != last_lineno else "    "
        last_lineno = instr.lineno
        arg = "" if instr.arg is None else repr(instr.arg)
        text = f"{line_field}  {index:>5}  {instr.opcode:<22} {arg}"
        if show_tier:
            marker = "T" if index in traced else " "
            text = f"{marker} {text}"
            note = tier_notes.get(index)
            if note is not None:
                text = f"{text:<58}; {note}"
        lines.append(text)
    return "\n".join(lines)


def iter_code_objects(code: CodeObject) -> Iterable[CodeObject]:
    """Yield ``code`` and every nested code object in its constant pool."""
    yield code
    for const in code.constants:
        if isinstance(const, CodeObject):
            yield from iter_code_objects(const)


def build_call_opcode_map(code: CodeObject) -> Dict[int, FrozenSet[int]]:
    """Map ``id(code_object) -> frozen set of call-instruction indices``.

    Covers the given code object and all nested function bodies, exactly
    like Scalene's startup scan over loaded code objects.
    """
    call_map: Dict[int, FrozenSet[int]] = {}
    for code_object in iter_code_objects(code):
        indices: Set[int] = {
            index
            for index, instr in enumerate(code_object.instructions)
            if is_call_opcode(instr.opcode)
        }
        call_map[id(code_object)] = frozenset(indices)
    return call_map
