"""``simmp`` — a multiprocessing library (the Figure 1 column).

``mp.run_workers(fn, n)`` forks ``n`` child processes, each re-importing
the parent's module (the semantics of multiprocessing's *spawn* start
method: the module body runs again in the child) and then executing
``fn(worker_id)``. Children run on independent clocks — there is no GIL
between processes — and the parent blocks until the slowest child
finishes, so the parent's wall time advances by ``max(child wall times)``.

Profilers with multiprocessing support (Scalene, py-spy, Austin) attach to
each child through ``SimProcess.child_observers``; profilers without it
simply never see the children's work — reproducing exactly what the
paper's Figure 1 "Multiprocessing" column encodes.

Caveat (as with real ``spawn``): the parent module's top level re-executes
in every child, so workloads using ``mp`` should keep module-level work
idempotent and cheap (definitions only), as real multiprocessing programs
guard with ``if __name__ == "__main__"``.
"""

from __future__ import annotations

from repro.errors import VMError
from repro.interp.code import SimFunction
from repro.interp.nativelib import NativeModule

#: Hard cap on forked children (a runaway-workload backstop).
MAX_WORKERS = 64


def make_simmp() -> NativeModule:
    """Build the ``mp`` module."""
    module = NativeModule("mp")

    def _run_workers(ctx, args, kwargs):
        if len(args) < 2:
            raise VMError("mp.run_workers(fn, nworkers) requires two arguments")
        fn, nworkers = args[0], int(args[1])
        if not isinstance(fn, SimFunction):
            raise VMError("mp.run_workers requires a simulated Python function")
        if not 0 < nworkers <= MAX_WORKERS:
            raise VMError(f"worker count must be in 1..{MAX_WORKERS}, got {nworkers}")
        if len(fn.code.params) != 1:
            raise VMError("the worker function must take exactly one argument (worker id)")

        parent = ctx.process
        if parent.source is None:
            raise VMError("mp.run_workers requires a source-loaded process")

        ctx.consume(20 * parent.vm.config.op_cost * nworkers)  # fork cost
        walls = []
        for worker_id in range(nworkers):
            child_source = (
                parent.source + f"\n_mp_result = {fn.name}({worker_id})\n"
            )
            child = parent.spawn_child(child_source)
            child.run()
            walls.append(child.clock.wall)

        # The children ran in parallel with each other; the parent waits
        # for the slowest one.
        return ctx.io_wait(max(walls))

    module.register(
        "run_workers",
        _run_workers,
        "Fork n children each running fn(worker_id); wait for all",
    )
    return module
