"""``simio`` — blocking IO primitives.

IO waits advance wall time without consuming CPU — the "system time"
Scalene reports separately (and most profilers cannot see at all). Used by
the ``async_tree_io`` workload family of Table 1.
"""

from __future__ import annotations

from repro.errors import VMError
from repro.interp.nativelib import NativeModule

#: Modeled throughput of the simulated storage/network, bytes per second.
IO_BYTES_PER_SECOND = 200 * 1024 * 1024


def make_simio() -> NativeModule:
    """Build the ``simio`` module."""
    module = NativeModule("io")

    def _wait(ctx, args, kwargs):
        """Block for the given number of seconds (e.g. network latency)."""
        seconds = float(args[0])
        if seconds < 0:
            raise VMError(f"negative IO wait {seconds}")
        return ctx.io_wait(seconds)

    module.register("wait", _wait)

    def _read(ctx, args, kwargs):
        """Read ``nbytes`` from storage: latency plus a native copy into a
        fresh native buffer that is immediately handed to Python (churn)."""
        nbytes = int(args[0])
        if nbytes < 0:
            raise VMError(f"negative read size {nbytes}")
        ctx.scratch(nbytes)
        ctx.memcpy(nbytes)
        return ctx.io_wait(nbytes / IO_BYTES_PER_SECOND)

    module.register("read", _read)

    def _write(ctx, args, kwargs):
        nbytes = int(args[0])
        if nbytes < 0:
            raise VMError(f"negative write size {nbytes}")
        ctx.memcpy(nbytes)
        return ctx.io_wait(nbytes / IO_BYTES_PER_SECOND)

    module.register("write", _write)

    return module
