"""``simtorch`` — a PyTorch-like GPU tensor library.

Tensors live in device memory; operations launch kernels on the simulated
GPU. Host<->device transfers are memcpys with a direction tag (the GPU leg
of copy volume, §3.5). Utilization and device memory are what Scalene's
GPU profiler samples (§4).
"""

from __future__ import annotations

from repro.errors import VMError
from repro.interp.nativelib import NativeModule
from repro.interp.objects import HeapBacked

ITEM_BYTES = 4  # float32, as ML workloads typically use

#: Kernel seconds per element for a generic elementwise op.
KERNEL_ELEM_SECONDS = 2e-9
#: Native (CPU-side) launch overhead per kernel, in opcode units.
LAUNCH_COST_OPS = 4


def _op_cost(ctx) -> float:
    return ctx.process.vm.config.op_cost


class SimTensor(HeapBacked):
    """A tensor resident in simulated GPU memory."""

    __slots__ = ("length", "_device_addr", "_process")

    native_domain = True

    def __init__(self, ctx, length: int) -> None:
        super().__init__(ctx.process.mem, ctx.thread)
        if length < 0:
            raise VMError(f"negative tensor size {length}")
        self.length = length
        self._process = ctx.process  # for the device free at destroy time
        self._device_addr = ctx.gpu_alloc(length * ITEM_BYTES)

    @property
    def nbytes(self) -> int:
        return self.length * ITEM_BYTES

    def _destroy_storage(self) -> None:
        self._process.gpu.free(self._device_addr)

    def sim_binop(self, ctx, symbol: str, other) -> "SimTensor":
        if symbol not in ("+", "-", "*", "/"):
            raise VMError(f"tensors do not support operator {symbol!r}")
        _launch(ctx, self.length, f"elementwise{symbol}")
        return SimTensor(ctx, self.length)

    def sim_rbinop(self, ctx, symbol: str, other) -> "SimTensor":
        return self.sim_binop(ctx, symbol, other)

    def sim_getattr(self, name: str):
        if name == "nbytes":
            return self.nbytes
        return super().sim_getattr(name)

    def _method_table(self):
        return {
            "to_host": lambda ctx, a, k: self._to_host(ctx),
            "item": lambda ctx, a, k: self._item(ctx),
        }

    def _to_host(self, ctx) -> None:
        """Device->host copy (synchronizes first)."""
        ctx.marshal(self.nbytes, "to_python", direction="d2h")
        return ctx.gpu_sync()

    def _item(self, ctx):
        ctx.marshal(ITEM_BYTES, "to_python", direction="d2h")
        return ctx.gpu_sync()  # .item() forces a synchronization

    def __len__(self) -> int:
        return self.length


def _launch(ctx, elements: int, name: str, scale: float = 1.0) -> None:
    ctx.consume(LAUNCH_COST_OPS * _op_cost(ctx))
    duration = max(elements, 1) * KERNEL_ELEM_SECONDS * scale
    # Scale kernel time up so GPU activity is visible at virtual-time
    # resolution (same scaling philosophy as the interpreter op cost).
    duration *= _op_cost(ctx) / 50e-9
    ctx.gpu_launch(duration, name)


def make_simtorch() -> NativeModule:
    """Build the ``simtorch`` module."""
    module = NativeModule("torch")

    def _tensor(ctx, args, kwargs):
        """Create a device tensor from host data: an h2d copy."""
        n = int(args[0])
        tensor = SimTensor(ctx, n)
        ctx.marshal(tensor.nbytes, "to_native", direction="h2d")
        ctx.consume(2 * _op_cost(ctx))
        return tensor

    module.register("tensor", _tensor)

    def _empty(ctx, args, kwargs):
        """Device allocation without a host copy."""
        return SimTensor(ctx, int(args[0]))

    module.register("empty", _empty)

    def _matmul(ctx, args, kwargs):
        a, b = args
        if not (isinstance(a, SimTensor) and isinstance(b, SimTensor)):
            raise VMError("torch.matmul expects tensors")
        n = int(round(a.length ** 0.5))
        _launch(ctx, n * n * n, "matmul", scale=0.05)
        return SimTensor(ctx, a.length)

    module.register("matmul", _matmul)

    def _forward(ctx, args, kwargs):
        """One forward pass over a batch: a few chained kernels."""
        batch = args[0]
        if not isinstance(batch, SimTensor):
            raise VMError("torch.forward expects a tensor")
        for layer in ("conv1", "conv2", "fc"):
            _launch(ctx, batch.length, layer, scale=4.0)
        return SimTensor(ctx, max(batch.length // 10, 1))

    module.register("forward", _forward)

    def _backward(ctx, args, kwargs):
        loss = args[0]
        if not isinstance(loss, SimTensor):
            raise VMError("torch.backward expects a tensor")
        _launch(ctx, loss.length * 10, "backward", scale=8.0)
        return None

    module.register("backward", _backward)

    def _synchronize(ctx, args, kwargs):
        return ctx.gpu_sync()

    module.register("synchronize", _synchronize)

    return module
