"""``simasyncio`` — the asyncio-style cooperative event loop library.

``aio.run(main_fn, *args)`` creates an :class:`~repro.runtime.scheduler.
EventLoop`, spawns ``main_fn`` as its root task, and blocks the calling
thread (interruptibly — signals keep flowing, as CPython's selector loop
delivers them between iterations) until every task of the loop finishes.
Inside a task, ``aio.spawn`` creates sibling tasks and ``aio.sleep`` /
``aio.io`` / ``aio.wait`` / ``aio.gather_all`` are the awaits: the only
points where a task yields the loop. A task that never awaits starves its
siblings — the classic asyncio hazard the profiler must make visible.

Every await routes through ``async_runtime.task_block_impl`` (and the
loop wait through ``loop_wait_impl``) so a profiler can observe task
switches — the simulation's analog of Scalene's ``replacement_asyncio``
marking tasks sleeping while they await.
"""

from __future__ import annotations

from repro.errors import VMError
from repro.interp.code import SimFunction
from repro.interp.nativelib import NativeModule
from repro.interp.objects import BlockRequest
from repro.runtime.scheduler import TaskRecord
from repro.runtime.threads import SimThread

#: Hard cap on tasks per loop (a runaway-workload backstop).
MAX_TASKS = 512

#: Modeled throughput of the simulated network, bytes per second.
AIO_BYTES_PER_SECOND = 100 * 1024 * 1024


def _current_task(ctx) -> TaskRecord:
    record = ctx.thread.task_record
    if record is None:
        raise VMError("this aio call is only valid inside a task (use aio.run)")
    return record


def _spawn_task(ctx, loop, fn, args) -> TaskRecord:
    if not isinstance(fn, SimFunction):
        raise VMError("aio tasks require a simulated Python function")
    if len(fn.code.params) != len(args):
        raise VMError(
            f"aio task {fn.name}() takes {len(fn.code.params)} argument(s), "
            f"got {len(args)}"
        )
    if len(loop.tasks) >= MAX_TASKS:
        raise VMError(f"event loop exceeded {MAX_TASKS} tasks")
    process = ctx.process
    thread = SimThread(f"{fn.name}-{len(loop.tasks)}")
    spawn_location = (
        ctx.thread.frame.location() if ctx.thread.frame is not None else None
    )
    record = TaskRecord(thread.name, thread, spawn_location)
    thread.task_record = record
    thread.event_loop = loop
    loop.add_task(record)
    process.start_thread(thread, fn, tuple(args))
    record.started_at = process.clock.wall
    return record


def _await(ctx, request: BlockRequest):
    """Route a task's await through the profiler-patchable surface."""
    record = _current_task(ctx)
    if ctx.thread.frame is not None:
        record.await_location = ctx.thread.frame.location()
    return ctx.process.async_runtime.task_block_impl(ctx, request)


def make_simasyncio() -> NativeModule:
    """Build the ``aio`` module."""
    module = NativeModule("aio")

    def _run(ctx, args, kwargs):
        if not args:
            raise VMError("aio.run(fn, *args) needs a function argument")
        if ctx.thread.task_record is not None:
            raise VMError("aio.run() cannot be nested inside a task")
        runtime = ctx.process.async_runtime
        loop = runtime.new_loop()
        ctx.consume(20 * ctx.process.vm.config.op_cost)  # loop setup
        _spawn_task(ctx, loop, args[0], tuple(args[1:]))
        request = BlockRequest(
            wake_check=lambda: loop.done,
            interruptible=True,
        )
        return runtime.loop_wait_impl(ctx, request)

    module.register(
        "run", _run, "Run fn(*args) as the root task; wait for the loop to drain"
    )

    def _spawn(ctx, args, kwargs):
        if not args:
            raise VMError("aio.spawn(fn, *args) needs a function argument")
        _current_task(ctx)  # spawning is only valid inside a task (not an await)
        loop = ctx.thread.event_loop
        ctx.consume(10 * ctx.process.vm.config.op_cost)  # task object setup
        return _spawn_task(ctx, loop, args[0], tuple(args[1:]))

    module.register(
        "spawn", _spawn, "Create a sibling task in the current loop; returns it"
    )

    def _sleep(ctx, args, kwargs):
        seconds = float(args[0]) if args else 0.0
        if seconds < 0:
            raise VMError(f"negative sleep {seconds}")
        if seconds == 0:
            # await asyncio.sleep(0): yield the loop without waiting.
            return _await(ctx, BlockRequest(deadline=ctx.process.clock.wall))
        return _await(
            ctx,
            BlockRequest(deadline=ctx.process.clock.wall + seconds),
        )

    module.register("sleep", _sleep, "Cooperative sleep (an await point)")

    def _io(ctx, args, kwargs):
        """Await network IO: latency scales with the byte count, and the
        payload is marshalled across the boundary (copy volume)."""
        nbytes = int(args[0]) if args else 0
        if nbytes < 0:
            raise VMError(f"negative IO size {nbytes}")
        _current_task(ctx)
        ctx.memcpy(nbytes)
        request = ctx.io_wait(nbytes / AIO_BYTES_PER_SECOND)
        if request is None:
            return None
        return _await(ctx, request)

    module.register("io", _io, "Await a network read/write of nbytes")

    def _wait(ctx, args, kwargs):
        if not args or not isinstance(args[0], TaskRecord):
            raise VMError("aio.wait(task) needs a task handle from aio.spawn")
        target = args[0]
        _current_task(ctx)
        if target.done:
            return None
        return _await(ctx, BlockRequest(wake_check=lambda: target.done))

    module.register("wait", _wait, "Await one task's completion")

    def _gather_all(ctx, args, kwargs):
        record = _current_task(ctx)
        loop = ctx.thread.event_loop
        others = lambda: all(t.done for t in loop.tasks if t is not record)
        if others():
            return None
        return _await(ctx, BlockRequest(wake_check=others))

    module.register(
        "gather_all", _gather_all, "Await every sibling task of the loop"
    )

    return module
