"""Simulated native libraries: NumPy-, pandas-, torch- and IO-like modules.

Each library performs its work as *native* execution (signals deferred),
allocates through the system-allocator shim (native domain), and produces
the memcpy/GPU traffic that Scalene's copy-volume and GPU profilers
observe. Workloads receive them via ``SimProcess.install_library``.
"""

from repro.interp.libs.simnp import make_simnp
from repro.interp.libs.simdf import make_simdf
from repro.interp.libs.simtorch import make_simtorch
from repro.interp.libs.simio import make_simio
from repro.interp.libs.simmp import make_simmp
from repro.interp.libs.simasyncio import make_simasyncio


def install_standard_libraries(process) -> None:
    """Install the full library suite under conventional names."""
    process.install_library("np", make_simnp())
    process.install_library("pd", make_simdf())
    process.install_library("torch", make_simtorch())
    process.install_library("io", make_simio())
    process.install_library("mp", make_simmp())
    process.install_library("aio", make_simasyncio())


__all__ = [
    "make_simnp",
    "make_simdf",
    "make_simtorch",
    "make_simio",
    "make_simmp",
    "make_simasyncio",
    "install_standard_libraries",
]
