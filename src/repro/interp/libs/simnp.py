"""``simnp`` — a NumPy-like native array library.

Arrays are heap-backed objects whose buffers live in *native* memory
(allocated via the shim, invisible to the Python allocator), exactly the
split Scalene's memory profiler is designed to expose. Vectorized
operations run as native code: fast per element, signals deferred.

Cost model: one native vectorized element costs ``ELEM_COST_OPS`` opcode
equivalents (default 0.08), versus ~10 opcodes for a hand-written Python
loop body — roughly the two-orders-of-magnitude gap the paper cites, and
the lever behind the 125x NumPy-vectorization case study (§7).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import VMError
from repro.interp.nativelib import NativeModule
from repro.interp.objects import HeapBacked, SimList

#: Native cost of one vectorized element, in interpreter-opcode units.
ELEM_COST_OPS = 0.08
ITEM_BYTES = 8


def _op_cost(ctx) -> float:
    return ctx.process.vm.config.op_cost


def _elem_cost(ctx, n: int) -> float:
    return max(n, 1) * ELEM_COST_OPS * _op_cost(ctx)


class SimArray(HeapBacked):
    """A 1-D float64 array with a native backing buffer."""

    __slots__ = ("length", "_backing", "_view_of")

    native_domain = True

    def __init__(self, ctx, length: int, *, touch: bool = True, view_of: Optional["SimArray"] = None) -> None:
        super().__init__(ctx.process.mem, ctx.thread)
        self.length = length
        self._view_of = view_of
        if view_of is None:
            self._backing = ctx.alloc(length * ITEM_BYTES, touch=touch, tag="simnp")
            view_of = None
        else:
            self._backing = None  # views share the parent's buffer
            view_of.incref()

    @property
    def nbytes(self) -> int:
        return self.length * ITEM_BYTES

    @property
    def is_view(self) -> bool:
        return self._view_of is not None

    def _destroy_storage(self) -> None:
        if self._backing is not None:
            self._mem.native_free(self._backing, self._thread)
        if self._view_of is not None:
            self._view_of.decref()

    def touch_fraction(self, ctx, fraction: float) -> None:
        """Write the first ``fraction`` of the buffer (page residency)."""
        target = self if self._view_of is None else self._view_of
        nbytes = int(target.nbytes * fraction)
        ctx.consume(_elem_cost(ctx, int(self.length * fraction)))
        if target._backing is not None:
            ctx.touch(target._backing, nbytes)

    # -- elementwise arithmetic (native) ------------------------------------

    def sim_binop(self, ctx, symbol: str, other) -> "SimArray":
        if symbol not in ("+", "-", "*", "/"):
            raise VMError(f"simnp arrays do not support operator {symbol!r}")
        if isinstance(other, SimArray) and other.length != self.length:
            raise VMError(
                f"array length mismatch: {self.length} vs {other.length}"
            )
        ctx.consume(_elem_cost(ctx, self.length))
        return SimArray(ctx, self.length)

    def sim_rbinop(self, ctx, symbol: str, other) -> "SimArray":
        return self.sim_binop(ctx, symbol, other)

    # -- indexing ------------------------------------

    def sim_getitem(self, ctx, index):
        ctx.consume(0.5 * _op_cost(ctx))
        if isinstance(index, slice):
            start, stop, step = index.indices(self.length)
            if step != 1:
                raise VMError("simnp slices must have step 1")
            # NumPy basic slicing returns a *view*: no copy, no allocation.
            view = SimArray(ctx, max(stop - start, 0), view_of=self._root())
            return view
        if not isinstance(index, int):
            raise VMError(f"invalid simnp index: {index!r}")
        if not (-self.length <= index < self.length):
            raise VMError(f"simnp index {index} out of range for length {self.length}")
        return 0.0  # element values are not modelled, only costs

    def sim_setitem(self, ctx, index, value) -> None:
        ctx.consume(0.5 * _op_cost(ctx))

    def _root(self) -> "SimArray":
        return self._view_of if self._view_of is not None else self

    def sim_getattr(self, name: str):
        if name == "nbytes":
            return self.nbytes
        if name == "size":
            return self.length
        return super().sim_getattr(name)

    def _method_table(self):
        return {
            "sum": self._m_sum,
            "copy": self._m_copy,
            "fill": self._m_fill,
            "tolist": self._m_tolist,
        }

    def _m_sum(self, ctx, args, kwargs) -> float:
        ctx.consume(_elem_cost(ctx, self.length))
        return float(self.length)

    def _m_copy(self, ctx, args, kwargs) -> "SimArray":
        result = SimArray(ctx, self.length)
        ctx.memcpy(self.nbytes)
        ctx.consume(_elem_cost(ctx, self.length) * 0.25)
        return result

    def _m_fill(self, ctx, args, kwargs) -> None:
        self.touch_fraction(ctx, 1.0)

    def _m_tolist(self, ctx, args, kwargs) -> SimList:
        # Crossing the native->Python divide: every element is boxed into a
        # Python object (allocation churn) and the buffer is copied.
        ctx.marshal(self.nbytes, "to_python")
        ctx.consume(_elem_cost(ctx, self.length) * 4)
        ctx.scratch(self.length * 28)
        return SimList(ctx.process.mem, [0.0] * self.length, ctx.thread)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "view" if self.is_view else "array"
        return f"SimArray({kind}, n={self.length})"


def make_simnp() -> NativeModule:
    """Build the ``simnp`` module."""
    module = NativeModule("np")

    def _new_array(ctx, args, kwargs, *, touch: bool):
        n = int(args[0])
        if n < 0:
            raise VMError(f"negative array size {n}")
        array = SimArray(ctx, n, touch=touch)
        ctx.consume(_elem_cost(ctx, n if touch else 1) * 0.5)
        return array

    module.register("zeros", lambda ctx, a, k: _new_array(ctx, a, k, touch=True),
                    "Allocate an n-element array, touched (calloc-like)")
    module.register("empty", lambda ctx, a, k: _new_array(ctx, a, k, touch=False),
                    "Allocate an n-element array without touching pages")
    module.register("ones", lambda ctx, a, k: _new_array(ctx, a, k, touch=True))
    module.register("arange", lambda ctx, a, k: _new_array(ctx, a, k, touch=True))

    def _touch(ctx, args, kwargs):
        array, fraction = args[0], float(args[1])
        if not isinstance(array, SimArray):
            raise VMError("np.touch expects an array")
        array.touch_fraction(ctx, fraction)
        return None

    module.register("touch", _touch, "Write the first fraction of an array's pages")

    def _dot(ctx, args, kwargs):
        a, b = args
        if not (isinstance(a, SimArray) and isinstance(b, SimArray)):
            raise VMError("np.dot expects two arrays")
        ctx.consume(_elem_cost(ctx, a.length) * 2)
        return float(a.length)

    module.register("dot", _dot)

    def _matmul(ctx, args, kwargs):
        # Square matmul of n x n matrices flattened into length-n*n arrays.
        a = args[0]
        n = int(round(a.length ** 0.5)) if isinstance(a, SimArray) else int(args[0])
        ctx.consume(_elem_cost(ctx, n * n * n) * 0.02)  # BLAS-grade constant
        return SimArray(ctx, n * n) if isinstance(a, SimArray) else None

    module.register("matmul", _matmul)

    def _copy(ctx, args, kwargs):
        array = args[0]
        if not isinstance(array, SimArray):
            raise VMError("np.copy expects an array")
        return array._m_copy(ctx, (), {})

    module.register("copy", _copy)

    def _frombuffer(ctx, args, kwargs):
        """Convert Python data to a native array: copies across the divide."""
        n = int(args[0])
        ctx.marshal(n * ITEM_BYTES, "to_native")
        ctx.consume(_elem_cost(ctx, n) * 2)
        return SimArray(ctx, n)

    module.register("frombuffer", _frombuffer)

    def _asarray(ctx, args, kwargs):
        """Materialize a Python sequence as a native array (boxed → buffer)."""
        value = args[0]
        if isinstance(value, SimArray):
            return value  # already native: no conversion, no copy
        if isinstance(value, SimList):
            n = len(value.items)
        else:
            n = int(value)
        ctx.marshal(n * ITEM_BYTES, "to_native")
        ctx.consume(_elem_cost(ctx, n) * 2)
        return SimArray(ctx, n)

    module.register("asarray", _asarray,
                    "Convert a Python list to a native array (copies)")

    def _get(ctx, args, kwargs):
        """Read one element: a whole boundary crossing for 8 bytes."""
        array, index = args[0], int(args[1])
        if not isinstance(array, SimArray):
            raise VMError("np.get expects an array")
        if not (-array.length <= index < array.length):
            raise VMError(
                f"simnp index {index} out of range for length {array.length}"
            )
        ctx.consume(0.5 * _op_cost(ctx))
        return 0.0

    module.register("get", _get, "Read array[i] as a Python float")

    def _put(ctx, args, kwargs):
        """Write one element through the boundary."""
        array, index = args[0], int(args[1])
        if not isinstance(array, SimArray):
            raise VMError("np.put expects an array")
        if not (-array.length <= index < array.length):
            raise VMError(
                f"simnp index {index} out of range for length {array.length}"
            )
        ctx.consume(0.5 * _op_cost(ctx))
        return None

    module.register("put", _put, "Write array[i] = value")

    def _add(ctx, args, kwargs):
        """Vectorized elementwise add; the batched cousin of get/put loops."""
        a, b = args
        if isinstance(a, SimArray):
            length = a.length
            if isinstance(b, SimArray) and b.length != length:
                raise VMError(
                    f"array length mismatch: {length} vs {b.length}"
                )
        elif isinstance(b, SimArray):
            length = b.length
        else:
            ctx.consume(0.5 * _op_cost(ctx))
            return float(a) + float(b)
        ctx.consume(_elem_cost(ctx, length))
        return SimArray(ctx, length)

    module.register("add", _add, "Elementwise a + b (vectorized)")

    return module
