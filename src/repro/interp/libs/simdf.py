"""``simdf`` — a pandas-like DataFrame library.

Reproduces the three pandas behaviours behind the paper's case studies
(§7): **chained indexing** (``df[col][i]`` copies the column on every
outer index), **concat** (copies all data by default), and **groupby**
(copies the groups). Each copy is real native allocation plus memcpy
traffic — visible as copy volume in Scalene.
"""

from __future__ import annotations

from repro.errors import VMError
from repro.interp.nativelib import NativeModule
from repro.interp.objects import HeapBacked

ITEM_BYTES = 8
#: Native cost per element processed, in opcode units.
ELEM_COST_OPS = 0.12


def _op_cost(ctx) -> float:
    return ctx.process.vm.config.op_cost


def _elem_cost(ctx, n: int) -> float:
    return max(n, 1) * ELEM_COST_OPS * _op_cost(ctx)


class SimSeries(HeapBacked):
    """One column of a DataFrame (may own a copied buffer)."""

    __slots__ = ("length", "_backing")

    native_domain = True

    def __init__(self, ctx, length: int) -> None:
        super().__init__(ctx.process.mem, ctx.thread)
        self.length = length
        self._backing = ctx.alloc(length * ITEM_BYTES, tag="simdf-series")

    @property
    def nbytes(self) -> int:
        return self.length * ITEM_BYTES

    def _destroy_storage(self) -> None:
        self._mem.native_free(self._backing, self._thread)

    def sim_getitem(self, ctx, index):
        ctx.consume(0.5 * _op_cost(ctx))
        if isinstance(index, int):
            return 0.0
        raise VMError(f"invalid series index {index!r}")

    def sim_getattr(self, name: str):
        if name == "nbytes":
            return self.nbytes
        return super().sim_getattr(name)

    def _method_table(self):
        return {"sum": lambda ctx, a, k: self._sum(ctx)}

    def _sum(self, ctx) -> float:
        ctx.consume(_elem_cost(ctx, self.length))
        return float(self.length)

    def __len__(self) -> int:
        return self.length


class SimDataFrame(HeapBacked):
    """A columnar frame of ``ncols`` float64 columns of ``nrows`` rows."""

    __slots__ = ("nrows", "columns", "_backing")

    native_domain = True

    def __init__(self, ctx, nrows: int, columns) -> None:
        super().__init__(ctx.process.mem, ctx.thread)
        if nrows < 0:
            raise VMError(f"negative row count {nrows}")
        self.nrows = nrows
        self.columns = list(columns)
        self._backing = ctx.alloc(self.nbytes, tag="simdf-frame")

    @property
    def ncols(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        return self.nrows * self.ncols * ITEM_BYTES

    def _destroy_storage(self) -> None:
        self._mem.native_free(self._backing, self._thread)

    # Chained indexing: df[col] returns a fresh *copy* of the column (the
    # pandas returning-a-view-versus-a-copy pitfall), so df[col][i] in a
    # loop copies nrows*8 bytes per iteration.
    def sim_getitem(self, ctx, key):
        if key not in self.columns:
            raise VMError(f"no such column: {key!r}")
        series = SimSeries(ctx, self.nrows)
        ctx.memcpy(series.nbytes)
        ctx.consume(_elem_cost(ctx, self.nrows) * 0.5)
        return series

    def sim_getattr(self, name: str):
        if name == "nbytes":
            return self.nbytes
        if name == "nrows":
            return self.nrows
        return super().sim_getattr(name)

    def _method_table(self):
        return {"column_view": lambda ctx, a, k: self._column_view(ctx, a[0])}

    def _column_view(self, ctx, key) -> SimSeries:
        """The hoisted, copy-free access path (what the fix uses).

        Models ``df.loc[:, col]`` producing a view: a small series header
        with no buffer copy. We still allocate a tiny header object.
        """
        if key not in self.columns:
            raise VMError(f"no such column: {key!r}")
        series = SimSeries(ctx, 0)
        series.length = self.nrows  # shares the frame's buffer; no copy
        ctx.consume(2 * _op_cost(ctx))
        return series

    def __len__(self) -> int:
        return self.nrows


def make_simdf() -> NativeModule:
    """Build the ``simdf`` module."""
    module = NativeModule("pd")

    def _frame(ctx, args, kwargs):
        nrows = int(args[0])
        ncols = int(args[1]) if len(args) > 1 else 4
        columns = [f"c{i}" for i in range(ncols)]
        frame = SimDataFrame(ctx, nrows, columns)
        ctx.consume(_elem_cost(ctx, nrows * ncols) * 0.2)
        return frame

    module.register("frame", _frame, "frame(nrows[, ncols]): build a DataFrame")

    def _concat(ctx, args, kwargs):
        """pandas.concat: copies *all* the data by default (§7)."""
        frames = args[0].items if hasattr(args[0], "items") else list(args)
        total_rows = 0
        total_bytes = 0
        ncols = None
        for frame in frames:
            if not isinstance(frame, SimDataFrame):
                raise VMError("pd.concat expects DataFrames")
            total_rows += frame.nrows
            total_bytes += frame.nbytes
            ncols = frame.ncols if ncols is None else ncols
        result = SimDataFrame(ctx, total_rows, [f"c{i}" for i in range(ncols or 0)])
        ctx.memcpy(total_bytes)
        ctx.consume(_elem_cost(ctx, total_rows * (ncols or 1)) * 0.3)
        return result

    module.register("concat", _concat)

    def _groupby_sum(ctx, args, kwargs):
        """groupby + aggregate: copies the group data (pandas #37139)."""
        frame = args[0]
        ngroups = int(args[1]) if len(args) > 1 else 16
        if not isinstance(frame, SimDataFrame):
            raise VMError("pd.groupby_sum expects a DataFrame")
        # The copy of all groups, then the reduction.
        ctx.memcpy(frame.nbytes)
        scratch = ctx.alloc(frame.nbytes, tag="simdf-groups")
        ctx.consume(_elem_cost(ctx, frame.nrows * frame.ncols))
        ctx.free(scratch)
        return SimDataFrame(ctx, ngroups, frame.columns)

    module.register("groupby_sum", _groupby_sum)

    def _groupby_sum_restructured(ctx, args, kwargs):
        """The fixed formulation: aggregates in place, no group copies."""
        frame = args[0]
        ngroups = int(args[1]) if len(args) > 1 else 16
        ctx.consume(_elem_cost(ctx, frame.nrows * frame.ncols))
        return SimDataFrame(ctx, ngroups, frame.columns)

    module.register("groupby_sum_restructured", _groupby_sum_restructured)

    return module
